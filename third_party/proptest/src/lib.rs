//! Offline shim for `proptest` (see `third_party/README.md`).
//!
//! Implements the subset of the proptest 1.x API the workspace's property
//! tests use: the `proptest!` macro (with optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]`), `prop_assert*`,
//! `prop_assume!`, `any::<T>()`, numeric range strategies, tuple
//! strategies, `prop::collection::vec`, and `Strategy::prop_map`.
//!
//! Cases are generated from a deterministic per-test seed (hash of the
//! test name), so failures are reproducible by re-running the test. There
//! is **no shrinking**: a failing case reports the panic from the assert
//! macros directly.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// `use proptest::prelude::*;` — everything the tests touch by name.
pub mod prelude {
    pub use crate as prop;
    pub use crate::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

pub use strategy::{any, Any, Just, Map, RangeStrategy, Strategy};

/// The body of each generated case runs inside a closure returning this:
/// `Err(Rejected)` means `prop_assume!` rejected the case (it is skipped,
/// not failed).
#[doc(hidden)]
pub struct Rejected;

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// Skips the current case (without failing) when the assumption does not
/// hold. Only valid inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::Rejected);
        }
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// expands to a zero-argument test that runs `config.cases` deterministic
/// cases. Attributes written on the fn (including `#[test]`) are
/// preserved.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng =
                $crate::test_runner::TestRng::from_name(stringify!($name));
            for _case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::sample(
                        &($strategy),
                        &mut rng,
                    );
                )+
                let outcome: ::core::result::Result<(), $crate::Rejected> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err($crate::Rejected) = outcome {
                    // Case rejected by prop_assume!: skipped, not a failure.
                }
            }
        }
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
}
