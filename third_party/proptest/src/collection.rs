//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec`s with length drawn from `size` and elements from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_respects_size_range() {
        let strategy = vec(any::<u32>(), 2..7);
        let mut rng = TestRng::from_name("vec-sizes");
        for _ in 0..200 {
            let v = strategy.sample(&mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }
}
