//! Value-generation strategies for the `proptest!` shim.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: `sample`
/// draws one value directly from the deterministic test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            inner: self,
            map: f,
        }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.sample(rng))
    }
}

/// Strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

/// Generates any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i32, i64);

/// Marker alias: numeric ranges are themselves strategies.
pub type RangeStrategy<T> = Range<T>;

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-tests")
    }

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = rng();
        for _ in 0..1_000 {
            let x = (3u32..9).sample(&mut rng);
            assert!((3..9).contains(&x));
            let y = (0usize..=4).sample(&mut rng);
            assert!(y <= 4);
            let f = (0.0f64..1.2).sample(&mut rng);
            assert!((0.0..1.2).contains(&f));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let strategy = (0u32..10, 0u64..5).prop_map(|(a, b)| a as u64 + b);
        let mut rng = rng();
        for _ in 0..100 {
            assert!(strategy.sample(&mut rng) < 15);
        }
    }

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = rng();
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[usize::from(any::<bool>().sample(&mut rng))] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
