//! Deterministic case generation for the `proptest!` shim.

/// How many cases each property runs (default 64; override per block with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// SplitMix64 generator seeded from the test name: every test gets its own
/// reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an FNV-1a hash of the test name.
    pub fn from_name(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, span)` via multiply-shift; `span` must be
    /// nonzero.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_streams_are_stable_and_distinct() {
        let mut a = TestRng::from_name("alpha");
        let mut b = TestRng::from_name("alpha");
        let mut c = TestRng::from_name("beta");
        let draws_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let draws_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let draws_c: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(draws_a, draws_b);
        assert_ne!(draws_a, draws_c);
    }

    #[test]
    fn below_stays_below() {
        let mut rng = TestRng::from_name("below");
        for _ in 0..10_000 {
            assert!(rng.below(17) < 17);
        }
    }
}
