//! Offline shim for `criterion` (see `third_party/README.md`).
//!
//! A minimal but functional timing harness with criterion 0.5's API shape:
//! benchmark groups, `bench_function` / `bench_with_input`, throughput
//! annotation, and the `criterion_group!` / `criterion_main!` macros. Each
//! benchmark runs a short warmup, then `sample_size` timed samples, and
//! prints the median per-iteration time (plus throughput when annotated).
//! There is no statistical analysis, baseline storage, or HTML reporting.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level handle, one per benchmark binary.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted for `criterion_group!` compatibility; CLI arguments are
    /// ignored by the shim.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, 20, None, f);
        self
    }
}

/// Throughput annotation: per-iteration work, used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// A named collection of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Annotates per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; times the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine`, recording one sample per invocation batch.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }
}

fn run_benchmark<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size + 1),
        iters_per_sample: 1,
    };
    // Warmup sample; discarded.
    f(&mut bencher);
    bencher.samples.clear();
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("  {label}: no samples (closure never called iter)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let rate = throughput.map(|t| {
        let per_sec = |n: u64| n as f64 / median.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => format!(" ({:.3e} elem/s)", per_sec(n)),
            Throughput::Bytes(n) => format!(" ({:.3e} B/s)", per_sec(n)),
        }
    });
    println!(
        "  {label}: median {median:?} over {} samples{}",
        samples.len(),
        rate.unwrap_or_default()
    );
}

/// Opaque value sink preventing the optimizer from deleting the measured
/// computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // warmup + 3 samples, one iteration each
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(21u64), &21u64, |b, &x| {
            b.iter(|| assert_eq!(x * 2, 42))
        });
        group.finish();
    }
}
