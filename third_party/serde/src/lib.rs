//! Offline shim for `serde` (see `third_party/README.md`).
//!
//! Provides the `Serialize`/`Deserialize` traits and re-exports the no-op
//! derive macros. The workspace uses the derives purely as
//! documentation-of-intent on metric/report structs; nothing serializes
//! through serde at runtime, so the traits carry no methods.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
