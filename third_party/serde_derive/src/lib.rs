//! Offline shim for `serde_derive` (see `third_party/README.md`).
//!
//! The derives expand to nothing: the workspace decorates structs with
//! `#[derive(Serialize)]` as documentation-of-intent but never routes data
//! through serde, so an empty expansion keeps every use site compiling
//! without pulling in syn/quote.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
