//! MPMC channels over `std::sync::{Mutex, Condvar}`.
//!
//! Disconnect semantics (matching crossbeam): a send fails once every
//! receiver is gone; a receive drains buffered messages first and only
//! reports disconnection once the queue is empty *and* every sender is
//! gone. Bounded capacity zero (rendezvous) is not supported — the
//! workspace always uses capacity >= 1.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Inner<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Creates a channel holding at most `cap` in-flight messages.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(
        cap > 0,
        "rendezvous (zero-capacity) channels are not supported by the shim"
    );
    with_capacity(Some(cap))
}

/// Creates a channel with unlimited buffering.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender(Arc::clone(&shared)), Receiver(shared))
}

/// Sending half; clonable (MPMC).
pub struct Sender<T>(Arc<Shared<T>>);

/// Receiving half; clonable (MPMC).
pub struct Receiver<T>(Arc<Shared<T>>);

/// Error returned by [`Sender::send`]: every receiver disconnected.
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`]: channel empty and every sender
/// disconnected.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// Nothing buffered right now; senders still connected.
    Empty,
    /// Nothing buffered and every sender disconnected.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with nothing buffered.
    Timeout,
    /// Nothing buffered and every sender disconnected.
    Disconnected,
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> Sender<T> {
    /// Blocks until the message is buffered (bounded channels block while
    /// full). Fails only if every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.0.inner.lock().unwrap();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
            if !full {
                inner.queue.push_back(value);
                drop(inner);
                self.0.not_empty.notify_one();
                return Ok(());
            }
            inner = self.0.not_full.wait(inner).unwrap();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or every sender disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.0.inner.lock().unwrap();
        loop {
            if let Some(value) = inner.queue.pop_front() {
                drop(inner);
                self.0.not_full.notify_one();
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.0.not_empty.wait(inner).unwrap();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.0.inner.lock().unwrap();
        if let Some(value) = inner.queue.pop_front() {
            drop(inner);
            self.0.not_full.notify_one();
            return Ok(value);
        }
        if inner.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks for at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.0.inner.lock().unwrap();
        loop {
            if let Some(value) = inner.queue.pop_front() {
                drop(inner);
                self.0.not_full.notify_one();
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .0
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap();
            inner = guard;
        }
    }

    /// Blocking iterator: yields until the channel is empty and every
    /// sender has disconnected.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

/// Iterator over received messages (see [`Receiver::iter`]).
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.0.inner.lock().unwrap().senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.0.inner.lock().unwrap().receivers += 1;
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.0.inner.lock().unwrap();
        inner.senders -= 1;
        if inner.senders == 0 {
            drop(inner);
            // Wake blocked receivers so they observe the disconnect.
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.0.inner.lock().unwrap();
        inner.receivers -= 1;
        if inner.receivers == 0 {
            drop(inner);
            // Wake blocked senders so they observe the disconnect.
            self.0.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_blocks_at_capacity_and_drains() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let blocked = std::thread::spawn(move || tx.send(3).map_err(|_| ()));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(blocked.join().unwrap(), Ok(()));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_drains_after_sender_drop() {
        let (tx, rx) = unbounded();
        tx.send("a").unwrap();
        tx.send("b").unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok("a"));
        assert_eq!(rx.iter().collect::<Vec<_>>(), vec!["b"]);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert!(tx.send(7u8).is_err());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = bounded::<u8>(1);
        let err = rx.recv_timeout(Duration::from_millis(5)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
    }
}
