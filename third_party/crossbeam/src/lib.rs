//! Offline shim for `crossbeam` (see `third_party/README.md`).
//!
//! Provides the two surfaces the workspace uses — `channel` (MPMC bounded
//! and unbounded channels with disconnect semantics) and `thread::scope`
//! (scoped spawning) — as thin, fully functional layers over the standard
//! library. Semantics match crossbeam for everything the ring protocol
//! relies on: blocking send honors bounded capacity (credit-based flow
//! control), receivers drain remaining messages after all senders drop,
//! and scope propagates worker panics as `Err`.

pub mod channel;
pub mod thread;
