//! Scoped threads mirroring `crossbeam::thread::scope` over
//! `std::thread::scope`.
//!
//! Differences from std that the shim papers over: crossbeam's spawn
//! closures receive the scope as an argument (enabling nested spawns), and
//! `scope` itself returns `Err` instead of panicking when a spawned thread
//! panics un-joined.

use std::any::Any;

/// Result of a scope or a join: `Err` carries the panic payload.
pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

/// A scope handle; passed to `scope`'s closure and to every spawned
/// closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a spawned scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish; `Err` carries its panic payload.
    pub fn join(self) -> Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope again so it
    /// can spawn siblings (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Runs `f` with a scope in which borrowing, non-`'static` threads can be
/// spawned; all are joined before `scope` returns. Returns `Err` with the
/// panic payload if the closure or any un-joined spawned thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total = scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let out = scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 41).join().unwrap() + 1)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }

    #[test]
    fn panic_surfaces_as_err() {
        let result = scope(|s| {
            s.spawn::<_, ()>(|_| panic!("worker down"));
        });
        assert!(result.is_err());
    }
}
