//! Offline shim for `rand` (see `third_party/README.md`).
//!
//! Implements the subset of the rand 0.8 API the workspace uses:
//! `rngs::StdRng` seeded through `SeedableRng::seed_from_u64`, and the
//! blanket [`Rng`] extension with `gen`, `gen_bool` and `gen_range` over
//! integer and float ranges. The generator is xoshiro256++ seeded by
//! SplitMix64 — deterministic and statistically sound, but the streams are
//! **not** bit-compatible with upstream rand's ChaCha-based `StdRng`.
//! Every test in this workspace compares distributed results against a
//! locally computed reference over the *same* generated data, so nothing
//! depends on a particular stream.

use std::ops::{Range, RangeInclusive};

/// Core of every generator: a source of raw 64-bit words.
pub trait RngCore {
    /// Returns the next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next raw 32-bit word (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, deterministic across runs and platforms.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`] (including unsized `dyn` receivers, as in rand 0.8).
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution
    /// (`u32`/`u64`/`usize`/`f64` uniform, `bool` fair coin).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_uniform(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift mapping of a raw word into `[0, span)` — unbiased enough
/// for test workloads (bias < 2^-64 per draw).
fn word_in_span(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + word_in_span(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + word_in_span(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}

impl_int_ranges!(u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_uniform<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// seed expansion. Deterministic; not a reproduction of upstream
    /// rand's ChaCha12 `StdRng` stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u64 = rng.gen_range(1..=3);
            assert!((1..=3).contains(&y));
            let z: usize = rng.gen_range(0..7);
            assert!(z < 7);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn float_gen_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        // Mean of 10k uniform draws should be close to 0.5.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn works_through_unsized_receivers() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(5..=6)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        assert!(x == 5 || x == 6);
    }
}
