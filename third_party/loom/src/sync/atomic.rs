//! Model-aware atomics.
//!
//! Every operation is a scheduling point executed with `SeqCst` on the
//! backing std atomic, regardless of the ordering the caller asked for:
//! the shim explores interleavings, not weak-memory reorderings (a sound
//! under-approximation — see the crate docs).

pub use std::sync::atomic::Ordering;

use crate::rt;

fn point() {
    if let Some((exec, me)) = rt::current() {
        exec.yield_point(me);
    }
}

macro_rules! atomic {
    ($name:ident, $std:ty, $ty:ty) => {
        #[derive(Debug, Default)]
        pub struct $name {
            inner: $std,
        }

        impl $name {
            pub fn new(v: $ty) -> Self {
                $name {
                    inner: <$std>::new(v),
                }
            }

            pub fn load(&self, _order: Ordering) -> $ty {
                point();
                self.inner.load(Ordering::SeqCst)
            }

            pub fn store(&self, v: $ty, _order: Ordering) {
                point();
                self.inner.store(v, Ordering::SeqCst)
            }

            pub fn swap(&self, v: $ty, _order: Ordering) -> $ty {
                point();
                self.inner.swap(v, Ordering::SeqCst)
            }

            pub fn compare_exchange(
                &self,
                current: $ty,
                new: $ty,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$ty, $ty> {
                point();
                self.inner
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }

            pub fn into_inner(self) -> $ty {
                self.inner.into_inner()
            }
        }
    };
}

macro_rules! atomic_int {
    ($name:ident, $std:ty, $ty:ty) => {
        atomic!($name, $std, $ty);

        impl $name {
            pub fn fetch_add(&self, v: $ty, _order: Ordering) -> $ty {
                point();
                self.inner.fetch_add(v, Ordering::SeqCst)
            }

            pub fn fetch_sub(&self, v: $ty, _order: Ordering) -> $ty {
                point();
                self.inner.fetch_sub(v, Ordering::SeqCst)
            }

            pub fn fetch_or(&self, v: $ty, _order: Ordering) -> $ty {
                point();
                self.inner.fetch_or(v, Ordering::SeqCst)
            }

            pub fn fetch_and(&self, v: $ty, _order: Ordering) -> $ty {
                point();
                self.inner.fetch_and(v, Ordering::SeqCst)
            }

            pub fn fetch_max(&self, v: $ty, _order: Ordering) -> $ty {
                point();
                self.inner.fetch_max(v, Ordering::SeqCst)
            }
        }
    };
}

atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
atomic_int!(AtomicU32, std::sync::atomic::AtomicU32, u32);
atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

impl AtomicBool {
    pub fn fetch_or(&self, v: bool, _order: Ordering) -> bool {
        point();
        self.inner.fetch_or(v, Ordering::SeqCst)
    }

    pub fn fetch_and(&self, v: bool, _order: Ordering) -> bool {
        point();
        self.inner.fetch_and(v, Ordering::SeqCst)
    }
}
