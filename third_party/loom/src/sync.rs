//! Model-aware `sync` primitives mirroring `std::sync`.
//!
//! Ownership is tracked at the model level, keyed by the primitive's
//! address: the backing std mutex is only ever locked by the model-level
//! owner, so it never blocks an OS thread outside the scheduler's
//! control. Outside [`crate::model`] everything degrades to plain std
//! behavior.

use std::ops::{Deref, DerefMut};
use std::sync::Arc as StdArc;

pub use std::sync::{Arc, LockResult};

use crate::rt;

pub mod atomic;

/// A mutual-exclusion primitive mirroring [`std::sync::Mutex`].
///
/// Poisoning is absorbed: `lock` always returns `Ok`, matching loom's
/// behavior (a panic inside a critical section already fails the whole
/// model, so poison adds nothing).
pub struct Mutex<T: ?Sized> {
    data: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(t: T) -> Self {
        Mutex {
            data: std::sync::Mutex::new(t),
        }
    }

    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.data.into_inner().unwrap_or_else(|p| p.into_inner()))
    }
}

impl<T: ?Sized> Mutex<T> {
    fn addr(&self) -> usize {
        self as *const Mutex<T> as *const u8 as usize
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let model = rt::current();
        if let Some((exec, me)) = &model {
            exec.mutex_lock(*me, self.addr());
        }
        // Uncontended by construction inside the model; genuinely
        // contended (and blocking) outside it.
        let guard = self.data.lock().unwrap_or_else(|p| p.into_inner());
        Ok(MutexGuard {
            lock: self,
            guard: Some(guard),
            model,
        })
    }

    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self.data.get_mut().unwrap_or_else(|p| p.into_inner()))
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.data.fmt(f)
    }
}

/// RAII guard for [`Mutex`]; releases model-level ownership on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    guard: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(StdArc<rt::Execution>, usize)>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard
            .as_deref()
            .expect("loom MutexGuard used after release")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard
            .as_deref_mut()
            .expect("loom MutexGuard used after release")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // The std guard must be released before model ownership moves,
        // so the next model-level owner finds the data mutex free.
        self.guard.take();
        if let Some((exec, me)) = self.model.take() {
            exec.mutex_unlock(me, self.lock.addr());
        }
    }
}

/// Result of a timed condvar wait. std's equivalent has no public
/// constructor, so the shim defines its own.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable mirroring [`std::sync::Condvar`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    fn addr(&self) -> usize {
        self as *const Condvar as usize
    }

    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        match guard.model.take() {
            Some((exec, me)) => {
                // Disarm the guard: release the std mutex here, then do
                // the model-level release-block-reacquire atomically with
                // respect to the token.
                guard.guard.take();
                drop(guard);
                exec.condvar_wait(me, self.addr(), lock.addr());
                let inner = lock.data.lock().unwrap_or_else(|p| p.into_inner());
                Ok(MutexGuard {
                    lock,
                    guard: Some(inner),
                    model: Some((exec, me)),
                })
            }
            None => {
                let std_guard = guard
                    .guard
                    .take()
                    .expect("loom MutexGuard missing std guard");
                drop(guard);
                let inner = self
                    .inner
                    .wait(std_guard)
                    .unwrap_or_else(|p| p.into_inner());
                Ok(MutexGuard {
                    lock,
                    guard: Some(inner),
                    model: None,
                })
            }
        }
    }

    /// Inside the model, time does not exist: a timed wait is an ordinary
    /// wait that never reports a timeout. Callers with real deadlines
    /// must not rely on timeouts for model-checked liveness (the deadlock
    /// detector is what catches lost wakeups).
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        if guard.model.is_some() {
            let g = self.wait(guard).unwrap_or_else(|p| p.into_inner());
            return Ok((g, WaitTimeoutResult(false)));
        }
        let lock = guard.lock;
        let mut guard = guard;
        let std_guard = guard
            .guard
            .take()
            .expect("loom MutexGuard missing std guard");
        drop(guard);
        let (inner, timeout) = self
            .inner
            .wait_timeout(std_guard, dur)
            .unwrap_or_else(|p| p.into_inner());
        Ok((
            MutexGuard {
                lock,
                guard: Some(inner),
                model: None,
            },
            WaitTimeoutResult(timeout.timed_out()),
        ))
    }

    /// Modeled as `notify_all` inside the model (waiters re-check their
    /// predicates, so waking extra threads only adds explored schedules).
    pub fn notify_one(&self) {
        match rt::current() {
            Some((exec, me)) => exec.condvar_notify(me, self.addr()),
            None => self.inner.notify_one(),
        }
    }

    pub fn notify_all(&self) {
        match rt::current() {
            Some((exec, me)) => exec.condvar_notify(me, self.addr()),
            None => self.inner.notify_all(),
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}
