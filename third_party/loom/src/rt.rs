//! The execution engine: token-passing scheduler + DFS schedule search.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

const DEFAULT_MAX_PREEMPTIONS: usize = 2;
const DEFAULT_MAX_SCHEDULES: usize = 250_000;
/// Per-execution cap on scheduling points: a loom test that trips this is
/// spinning, not converging, and should fail loudly instead of hanging.
const MAX_STEPS: usize = 100_000;

/// Panic payload used to tear worker threads down when the model aborts
/// (failure found, deadlock, budget exceeded). Never observable to user
/// code: it is caught by the per-thread harness in [`run_thread`].
pub(crate) struct AbortMarker;

pub(crate) fn panic_abort() -> ! {
    panic::panic_any(AbortMarker)
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    Runnable,
    BlockedMutex(usize),
    BlockedCondvar(usize),
    BlockedJoin(usize),
    Finished,
}

/// One recorded scheduling decision: which of `candidates` runnable
/// threads was given the token. Only multi-candidate points are recorded;
/// forced moves (single candidate) are not branch points.
#[derive(Clone, Copy, Debug)]
struct Choice {
    chosen: usize,
    candidates: usize,
}

struct ExecInner {
    threads: Vec<Run>,
    active: Option<usize>,
    /// Model-level mutex ownership, keyed by the mutex's address. The
    /// backing std mutex is only ever taken by the model-level owner, so
    /// it never contends.
    mutex_owner: HashMap<usize, usize>,
    log: Vec<Choice>,
    replay: Vec<usize>,
    preemptions: usize,
    max_preemptions: usize,
    steps: usize,
    aborted: bool,
    failure: Option<String>,
}

pub(crate) struct Execution {
    inner: Mutex<ExecInner>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The execution this OS thread belongs to, if it is a model thread.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(v: Option<(Arc<Execution>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

impl Execution {
    fn new(replay: Vec<usize>, max_preemptions: usize) -> Self {
        Execution {
            inner: Mutex::new(ExecInner {
                threads: Vec::new(),
                active: None,
                mutex_owner: HashMap::new(),
                log: Vec::new(),
                replay,
                preemptions: 0,
                max_preemptions,
                steps: 0,
                aborted: false,
                failure: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Locks the state, recovering from poison: threads unwound by
    /// [`AbortMarker`] drop guards on the way out, and bookkeeping must
    /// keep working while that happens.
    fn lock(&self) -> MutexGuard<'_, ExecInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn abort_locked(&self, inner: &mut ExecInner, msg: String) {
        if !inner.aborted {
            inner.aborted = true;
            inner.failure.get_or_insert(msg);
        }
        inner.active = None;
        self.cv.notify_all();
    }

    pub(crate) fn record_failure(&self, msg: String) {
        let mut inner = self.lock();
        self.abort_locked(&mut inner, msg);
    }

    /// Picks the next thread to hold the token. `me_runnable` says whether
    /// the calling thread could keep running (false when it just blocked
    /// or finished — such forced switches are not preemptions).
    fn pick_next(&self, inner: &mut ExecInner, me: usize, me_runnable: bool) {
        if inner.aborted {
            return;
        }
        inner.steps += 1;
        if inner.steps > MAX_STEPS {
            self.abort_locked(
                inner,
                format!("exceeded {MAX_STEPS} scheduling points in one execution (livelock?)"),
            );
            return;
        }
        let mut cands: Vec<usize> = (0..inner.threads.len())
            .filter(|&t| inner.threads[t] == Run::Runnable)
            .collect();
        if me_runnable {
            // Prefer staying on the current thread: candidate 0 is "no
            // preemption", so the DFS default path is the sequential one.
            cands.retain(|&t| t != me);
            cands.insert(0, me);
            if inner.preemptions >= inner.max_preemptions {
                cands.truncate(1);
            }
        }
        if cands.is_empty() {
            if inner.threads.iter().all(|t| *t == Run::Finished) {
                inner.active = None;
                self.cv.notify_all();
            } else {
                let table: Vec<String> = inner
                    .threads
                    .iter()
                    .enumerate()
                    .map(|(t, s)| format!("thread {t}: {s:?}"))
                    .collect();
                self.abort_locked(
                    inner,
                    format!("deadlock: no runnable thread [{}]", table.join(", ")),
                );
            }
            return;
        }
        let idx = if cands.len() > 1 {
            let pos = inner.log.len();
            let idx = if pos < inner.replay.len() {
                inner.replay[pos]
            } else {
                0
            };
            if idx >= cands.len() {
                self.abort_locked(
                    inner,
                    format!(
                        "replay divergence at decision {pos}: index {idx} of {} candidates",
                        cands.len()
                    ),
                );
                return;
            }
            inner.log.push(Choice {
                chosen: idx,
                candidates: cands.len(),
            });
            idx
        } else {
            0
        };
        let chosen = cands[idx];
        if me_runnable && chosen != me {
            inner.preemptions += 1;
        }
        inner.active = Some(chosen);
        self.cv.notify_all();
    }

    fn wait_for_token<'a>(
        &'a self,
        mut inner: MutexGuard<'a, ExecInner>,
        me: usize,
    ) -> MutexGuard<'a, ExecInner> {
        while !inner.aborted && inner.active != Some(me) {
            inner = self.cv.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
        inner
    }

    /// A plain scheduling point: the token may move to any runnable
    /// thread (bounded by the preemption budget).
    pub(crate) fn yield_point(&self, me: usize) {
        let mut inner = self.lock();
        if inner.aborted {
            drop(inner);
            panic_abort();
        }
        self.pick_next(&mut inner, me, true);
        let inner = self.wait_for_token(inner, me);
        if inner.aborted {
            drop(inner);
            panic_abort();
        }
    }

    pub(crate) fn mutex_lock(&self, me: usize, addr: usize) {
        loop {
            self.yield_point(me);
            let mut inner = self.lock();
            if inner.aborted {
                drop(inner);
                panic_abort();
            }
            if let std::collections::hash_map::Entry::Vacant(e) = inner.mutex_owner.entry(addr) {
                e.insert(me);
                return;
            }
            inner.threads[me] = Run::BlockedMutex(addr);
            self.pick_next(&mut inner, me, false);
            let inner = self.wait_for_token(inner, me);
            if inner.aborted {
                drop(inner);
                panic_abort();
            }
            // Woken by an unlock; loop and race for the mutex again
            // (barging is allowed, exactly like std).
        }
    }

    /// Releases a model mutex and wakes its waiters. Must never panic:
    /// it runs from guard `Drop`, possibly mid-unwind.
    pub(crate) fn mutex_unlock(&self, _me: usize, addr: usize) {
        let mut inner = self.lock();
        inner.mutex_owner.remove(&addr);
        let mut woke = false;
        for t in inner.threads.iter_mut() {
            if *t == Run::BlockedMutex(addr) {
                *t = Run::Runnable;
                woke = true;
            }
        }
        if woke {
            self.cv.notify_all();
        }
    }

    /// Condvar wait: atomically (in model terms — the token never moves
    /// in between) release the mutex and block on the condvar, then
    /// re-acquire after being notified. The caller has already dropped
    /// the std-level guard.
    pub(crate) fn condvar_wait(&self, me: usize, cv_addr: usize, mutex_addr: usize) {
        self.mutex_unlock(me, mutex_addr);
        let mut inner = self.lock();
        if inner.aborted {
            drop(inner);
            panic_abort();
        }
        inner.threads[me] = Run::BlockedCondvar(cv_addr);
        self.pick_next(&mut inner, me, false);
        let inner = self.wait_for_token(inner, me);
        if inner.aborted {
            drop(inner);
            panic_abort();
        }
        drop(inner);
        self.mutex_lock(me, mutex_addr);
    }

    /// `notify_one` is modeled as `notify_all`: waiters re-check their
    /// predicate under the mutex anyway, and waking more threads only
    /// adds schedules (a sound over-approximation).
    pub(crate) fn condvar_notify(&self, me: usize, cv_addr: usize) {
        self.yield_point(me);
        let mut inner = self.lock();
        let mut woke = false;
        for t in inner.threads.iter_mut() {
            if *t == Run::BlockedCondvar(cv_addr) {
                *t = Run::Runnable;
                woke = true;
            }
        }
        if woke {
            self.cv.notify_all();
        }
    }

    /// Registers a new model thread and returns its id. The OS thread for
    /// it must then enter via [`run_thread`].
    pub(crate) fn spawn_thread(&self, me: usize) -> usize {
        self.yield_point(me);
        let mut inner = self.lock();
        if inner.aborted {
            drop(inner);
            panic_abort();
        }
        inner.threads.push(Run::Runnable);
        inner.threads.len() - 1
    }

    fn start_thread(&self, tid: usize) {
        let inner = self.lock();
        let inner = self.wait_for_token(inner, tid);
        if inner.aborted {
            drop(inner);
            panic_abort();
        }
    }

    /// Marks a thread finished and hands the token on. Must never panic:
    /// it runs on every exit path, including abort unwinds.
    fn finish_thread(&self, tid: usize) {
        let mut inner = self.lock();
        if let Some(t) = inner.threads.get_mut(tid) {
            *t = Run::Finished;
        }
        for t in inner.threads.iter_mut() {
            if *t == Run::BlockedJoin(tid) {
                *t = Run::Runnable;
            }
        }
        if inner.aborted {
            self.cv.notify_all();
        } else {
            self.pick_next(&mut inner, tid, false);
        }
    }

    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        self.yield_point(me);
        let mut inner = self.lock();
        if inner.aborted {
            drop(inner);
            panic_abort();
        }
        if inner.threads.get(target) == Some(&Run::Finished) {
            return;
        }
        inner.threads[me] = Run::BlockedJoin(target);
        self.pick_next(&mut inner, me, false);
        let inner = self.wait_for_token(inner, me);
        if inner.aborted {
            drop(inner);
            panic_abort();
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Per-thread harness: waits for the token, runs the body, records any
/// failure, and always marks the thread finished.
pub(crate) fn run_thread<T>(exec: Arc<Execution>, tid: usize, f: impl FnOnce() -> T) -> Option<T> {
    set_current(Some((exec.clone(), tid)));
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        exec.start_thread(tid);
        f()
    }));
    let out = match result {
        Ok(v) => Some(v),
        Err(payload) => {
            if !payload.is::<AbortMarker>() {
                // `as_ref` matters: `&payload` would coerce the Box
                // itself into `&dyn Any` and every downcast would miss.
                exec.record_failure(format!(
                    "thread {tid} panicked: {}",
                    panic_message(payload.as_ref())
                ));
            }
            None
        }
    };
    exec.finish_thread(tid);
    set_current(None);
    out
}

/// The deepest decision with an untried sibling, bumped; `None` when the
/// whole schedule space has been explored.
fn next_replay(log: &[Choice]) -> Option<Vec<usize>> {
    let mut prefix: Vec<usize> = log.iter().map(|c| c.chosen).collect();
    while let Some(last) = prefix.pop() {
        let candidates = log[prefix.len()].candidates;
        if last + 1 < candidates {
            prefix.push(last + 1);
            return Some(prefix);
        }
    }
    None
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Configuration for a model run, mirroring `loom::model::Builder`.
///
/// `preemption_bound` trades exhaustiveness for tractability: larger
/// models (the full threaded ring) explode at bound 2 but stay
/// exhaustive-within-bound at 1 — which still covers every schedule the
/// blocking structure alone can produce, plus one forced preemption
/// anywhere.
#[derive(Debug, Clone, Default)]
pub struct Builder {
    /// Maximum forced preemptions per execution; `None` uses
    /// `LOOM_MAX_PREEMPTIONS` (default 2).
    pub preemption_bound: Option<usize>,
    /// Cap on explored schedules; `None` uses `LOOM_MAX_BRANCHES`
    /// (default 250 000).
    pub max_branches: Option<usize>,
}

impl Builder {
    pub fn new() -> Self {
        Builder::default()
    }

    /// Runs `f` under the model checker with this configuration. See
    /// [`model`].
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let max_preemptions = self
            .preemption_bound
            .unwrap_or_else(|| env_usize("LOOM_MAX_PREEMPTIONS", DEFAULT_MAX_PREEMPTIONS));
        let max_schedules = self
            .max_branches
            .unwrap_or_else(|| env_usize("LOOM_MAX_BRANCHES", DEFAULT_MAX_SCHEDULES));
        run_model(f, max_preemptions, max_schedules);
    }
}

/// Runs `f` under the model checker, exploring every interleaving of its
/// threads' synchronization operations (up to the preemption bound).
/// Panics — with the failing schedule — if any exploration panics,
/// deadlocks, or blows the step budget.
///
/// Environment knobs (mirroring real loom): `LOOM_MAX_PREEMPTIONS`
/// (default 2) and `LOOM_MAX_BRANCHES` (default 250 000, the cap on
/// explored schedules).
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f);
}

fn run_model<F>(f: F, max_preemptions: usize, max_schedules: usize)
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut replay: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    loop {
        schedules += 1;
        let exec = Arc::new(Execution::new(std::mem::take(&mut replay), max_preemptions));
        {
            let mut inner = exec.lock();
            inner.threads.push(Run::Runnable);
            inner.active = Some(0);
        }
        let texec = Arc::clone(&exec);
        let tf = Arc::clone(&f);
        let handle = std::thread::Builder::new()
            .name("loom-main".into())
            .spawn(move || {
                run_thread(texec, 0, move || tf());
            })
            .expect("failed to spawn loom root thread");
        {
            let mut inner = exec.lock();
            while !inner.threads.iter().all(|t| *t == Run::Finished) {
                inner = exec.cv.wait(inner).unwrap_or_else(|p| p.into_inner());
            }
        }
        let _ = handle.join();
        let inner = exec.lock();
        if let Some(msg) = &inner.failure {
            let decisions: Vec<usize> = inner.log.iter().map(|c| c.chosen).collect();
            panic!(
                "loom: model failed on schedule {schedules}: {msg}\n  \
                 decisions: {decisions:?} (set LOOM_MAX_PREEMPTIONS/LOOM_MAX_BRANCHES to tune)"
            );
        }
        match next_replay(&inner.log) {
            Some(next) => replay = next,
            None => break,
        }
        if schedules >= max_schedules {
            panic!("loom: exceeded {max_schedules} schedules without exhausting the space");
        }
    }
}
