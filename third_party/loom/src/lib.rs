//! A miniature, offline re-implementation of the parts of
//! [`loom`](https://docs.rs/loom) this workspace model-checks with.
//!
//! The real loom instruments every synchronization operation and
//! exhaustively enumerates thread interleavings. This shim does the same
//! thing with a deliberately simple design:
//!
//! * **Token-passing scheduler.** Threads inside [`model`] are real OS
//!   threads, but only the one holding the scheduler token runs; every
//!   instrumented operation (mutex lock/unlock, condvar wait/notify,
//!   atomic access, spawn, join, yield) is a *scheduling point* where the
//!   token may move. Execution is therefore fully serialized and every
//!   context switch is a recorded decision.
//! * **DFS over schedules.** Each execution logs its decisions as
//!   `(chosen, #candidates)` pairs. After an execution finishes, the last
//!   decision with an untried alternative is bumped and the prefix is
//!   replayed, exactly like loom's depth-first path exploration.
//! * **Preemption bounding.** Switching away from a thread that could
//!   have kept running counts as a preemption; schedules are limited to
//!   `LOOM_MAX_PREEMPTIONS` of them (default 2). This is the standard
//!   CHESS-style bound: almost all real concurrency bugs need only a
//!   couple of forced preemptions, and the bound keeps the schedule space
//!   tractable.
//! * **Sequential consistency only.** Atomics map to `SeqCst` std atomics
//!   plus a scheduling point; weak-memory reorderings are *not* explored.
//!   That is strictly fewer behaviors than the real loom checks, which is
//!   the safe direction for a shim (no false alarms, still exhaustive
//!   over interleavings).
//! * **Deadlock + livelock detection.** A state where no thread is
//!   runnable but some are blocked fails the model with the blocked-state
//!   table; executions are also capped at a step budget so accidental
//!   spin loops fail fast instead of hanging the suite.
//!
//! Outside [`model`] every primitive falls back to its `std` counterpart,
//! so code written against `loom::sync` keeps working in ordinary unit
//! tests and doctests.

mod rt;
pub mod sync;
pub mod thread;

pub use rt::model;

/// Builder-style entry point, mirroring upstream `loom::model::Builder`
/// (a module and a function may share the name `model`; upstream does
/// exactly this).
pub mod model {
    pub use crate::rt::Builder;
}
