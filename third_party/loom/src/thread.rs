//! Model-aware `thread::spawn` / `JoinHandle` / `yield_now`.

use std::sync::Arc;

use crate::rt;

enum Inner<T> {
    /// A thread registered with the active model execution.
    Model {
        exec: Arc<rt::Execution>,
        tid: usize,
        handle: std::thread::JoinHandle<Option<T>>,
    },
    /// Fallback outside `model()`: a plain std thread.
    Std(std::thread::JoinHandle<Option<T>>),
}

/// Owned permission to join on a thread, mirroring
/// [`std::thread::JoinHandle`].
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. Inside the
    /// model this is a blocking scheduling point; a deadlocked join fails
    /// the model rather than hanging.
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            Inner::Model { exec, tid, handle } => {
                let me = match rt::current() {
                    Some((_, me)) => me,
                    None => panic!("loom: JoinHandle::join called outside the owning model"),
                };
                exec.join_thread(me, tid);
                match handle.join() {
                    Ok(Some(v)) => Ok(v),
                    // The target unwound because the model is aborting;
                    // propagate the teardown.
                    Ok(None) => rt::panic_abort(),
                    Err(e) => Err(e),
                }
            }
            Inner::Std(handle) => match handle.join() {
                Ok(Some(v)) => Ok(v),
                Ok(None) => unreachable!("std-mode loom thread cannot abort"),
                Err(e) => Err(e),
            },
        }
    }
}

/// Spawns a thread. Inside [`crate::model`] the new thread is registered
/// with the execution and scheduled by the token passer; outside, it is
/// an ordinary std thread.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match rt::current() {
        Some((exec, me)) => {
            let tid = exec.spawn_thread(me);
            let texec = Arc::clone(&exec);
            let handle = std::thread::Builder::new()
                .name(format!("loom-{tid}"))
                .spawn(move || rt::run_thread(texec, tid, f))
                .expect("failed to spawn loom worker thread");
            JoinHandle {
                inner: Inner::Model { exec, tid, handle },
            }
        }
        None => JoinHandle {
            inner: Inner::Std(std::thread::spawn(move || Some(f()))),
        },
    }
}

/// A pure scheduling point: lets the checker move the token to any other
/// runnable thread here.
pub fn yield_now() {
    match rt::current() {
        Some((exec, me)) => exec.yield_point(me),
        None => std::thread::yield_now(),
    }
}

/// Scoped threads mirroring [`std::thread::scope`] — an extension over
/// upstream loom (which only has `'static` spawn) so model-checked code
/// can borrow from the enclosing frame exactly like production code does.
///
/// The scope is passed *by value* (it is `Copy`); join every handle
/// before the closure returns — the implicit join on scope exit happens
/// outside the scheduler's control and would wedge the model if a thread
/// were still running.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(Scope<'scope, 'env>) -> T,
{
    std::thread::scope(|s| f(Scope { inner: s }))
}

/// Spawning surface handed to the [`scope`] closure.
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        match rt::current() {
            Some((exec, me)) => {
                let tid = exec.spawn_thread(me);
                let texec = Arc::clone(&exec);
                let handle = self.inner.spawn(move || rt::run_thread(texec, tid, f));
                ScopedJoinHandle {
                    inner: ScopedInner::Model { exec, tid, handle },
                }
            }
            None => ScopedJoinHandle {
                inner: ScopedInner::Std(self.inner.spawn(move || Some(f()))),
            },
        }
    }
}

enum ScopedInner<'scope, T> {
    Model {
        exec: Arc<rt::Execution>,
        tid: usize,
        handle: std::thread::ScopedJoinHandle<'scope, Option<T>>,
    },
    Std(std::thread::ScopedJoinHandle<'scope, Option<T>>),
}

/// Owned permission to join on a scoped thread, mirroring
/// [`std::thread::ScopedJoinHandle`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: ScopedInner<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// See [`JoinHandle::join`].
    pub fn join(self) -> std::thread::Result<T> {
        match self.inner {
            ScopedInner::Model { exec, tid, handle } => {
                let me = match rt::current() {
                    Some((_, me)) => me,
                    None => panic!("loom: ScopedJoinHandle::join called outside the owning model"),
                };
                exec.join_thread(me, tid);
                match handle.join() {
                    Ok(Some(v)) => Ok(v),
                    Ok(None) => rt::panic_abort(),
                    Err(e) => Err(e),
                }
            }
            ScopedInner::Std(handle) => match handle.join() {
                Ok(Some(v)) => Ok(v),
                Ok(None) => unreachable!("std-mode loom thread cannot abort"),
                Err(e) => Err(e),
            },
        }
    }
}
