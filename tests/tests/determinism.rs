//! Determinism and transport-independence of the simulated backend.

use cyclo_join::{CycloJoin, RingConfig};
use relation::GenSpec;
use simnet::transport::TransportModel;

#[test]
fn identical_inputs_produce_identical_virtual_metrics() {
    let run = || {
        let r = GenSpec::uniform(3_000, 400).generate();
        let s = GenSpec::uniform(3_000, 401).generate();
        let report = CycloJoin::new(r, s)
            .hosts(5)
            .run()
            .expect("plan should run");
        (report.ring.clone(), report.match_count(), report.checksum())
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "virtual-time metrics must be bit-identical");
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

#[test]
fn transport_choice_changes_timing_not_results() {
    let mut results = Vec::new();
    for transport in [
        TransportModel::rdma(),
        TransportModel::toe(),
        TransportModel::kernel_tcp(),
    ] {
        let r = GenSpec::uniform(50_000, 410).generate();
        let s = GenSpec::uniform(50_000, 411).generate();
        let report = CycloJoin::new(r, s)
            .ring(RingConfig::paper(4).with_transport(transport))
            .run()
            .expect("plan should run");
        results.push((
            report.match_count(),
            report.checksum(),
            report.join_window_seconds(),
        ));
    }
    assert_eq!(results[0].0, results[1].0);
    assert_eq!(results[0].1, results[1].1);
    assert_eq!(results[0].0, results[2].0);
    assert_eq!(results[0].1, results[2].1);
    // ... while TCP's join phase must actually be slower than RDMA's.
    assert!(
        results[2].2 > results[0].2,
        "TCP should cost virtual join-phase time: tcp {} vs rdma {}",
        results[2].2,
        results[0].2
    );
}

#[test]
fn different_seeds_produce_different_data_and_results() {
    let run = |seed: u64| {
        let r = GenSpec::uniform(2_000, seed).generate();
        let s = GenSpec::uniform(2_000, seed + 1).generate();
        CycloJoin::new(r, s)
            .hosts(3)
            .run()
            .expect("plan should run")
            .checksum()
    };
    assert_ne!(run(420), run(520));
}
