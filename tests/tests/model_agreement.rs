//! The analytic cost model must agree with the simulator it abstracts:
//! closed-form phase predictions land within a small factor of the
//! simulated (modeled-compute) execution across configurations.

use cyclo_join::{predict, Algorithm, CostModel, CycloJoin, RingConfig, RotateSide, Workload};
use relation::GenSpec;

fn assert_close(label: &str, predicted: f64, simulated: f64, factor: f64) {
    if simulated < 1e-6 && predicted < 1e-6 {
        return; // both negligible
    }
    let ratio = predicted / simulated.max(1e-9);
    assert!(
        (1.0 / factor..factor).contains(&ratio),
        "{label}: predicted {predicted:.6}s vs simulated {simulated:.6}s (ratio {ratio:.2})"
    );
}

#[test]
fn predictions_track_the_simulator_for_hash_joins() {
    let model = CostModel::paper_xeon();
    for hosts in [1usize, 3, 6] {
        let tuples = 120_000;
        let r = GenSpec::uniform(tuples, 1200).generate();
        let s = GenSpec::uniform(tuples, 1201).generate();
        let workload = Workload::from_data(&r, &s, 4);
        let config = RingConfig::paper(hosts);
        let predicted = predict(&model, &config, &Algorithm::partitioned_hash(), &workload);
        let report = CycloJoin::new(r, s)
            .algorithm(Algorithm::partitioned_hash())
            .ring(config)
            .rotate(RotateSide::R)
            .run()
            .expect("plan should run");
        assert_close(
            &format!("hash setup, {hosts} hosts"),
            predicted.setup.as_secs_f64(),
            report.setup_seconds(),
            2.0,
        );
        assert_close(
            &format!("hash join, {hosts} hosts"),
            predicted.join.as_secs_f64(),
            report.join_seconds(),
            2.0,
        );
    }
}

#[test]
fn predictions_track_the_simulator_for_sort_merge() {
    let model = CostModel::paper_xeon();
    let tuples = 120_000;
    let r = GenSpec::uniform(tuples, 1210).generate();
    let s = GenSpec::uniform(tuples, 1211).generate();
    let workload = Workload::from_data(&r, &s, 4);
    let config = RingConfig::paper(6);
    let predicted = predict(&model, &config, &Algorithm::SortMerge, &workload);
    let report = CycloJoin::new(r, s)
        .algorithm(Algorithm::SortMerge)
        .ring(config)
        .rotate(RotateSide::R)
        .run()
        .expect("plan should run");
    assert_close(
        "smj setup",
        predicted.setup.as_secs_f64(),
        report.setup_seconds(),
        2.0,
    );
    assert_close(
        "smj join",
        predicted.join.as_secs_f64(),
        report.join_seconds(),
        2.0,
    );
}

#[test]
fn prediction_ranks_algorithms_like_the_simulator() {
    // Whatever the absolute error, the model must order hash vs sort-merge
    // the same way the simulator does on small rings (hash wins, §V-E).
    let model = CostModel::paper_xeon();
    let tuples = 100_000;
    let r = GenSpec::uniform(tuples, 1220).generate();
    let s = GenSpec::uniform(tuples, 1221).generate();
    let workload = Workload::from_data(&r, &s, 4);
    let config = RingConfig::paper(6);

    let pred_hash = predict(&model, &config, &Algorithm::partitioned_hash(), &workload);
    let pred_smj = predict(&model, &config, &Algorithm::SortMerge, &workload);

    let run = |alg: Algorithm| {
        let report = CycloJoin::new(r.clone(), s.clone())
            .algorithm(alg)
            .ring(config)
            .rotate(RotateSide::R)
            .run()
            .expect("plan should run");
        report.setup_seconds() + report.join_window_seconds()
    };
    let sim_hash = run(Algorithm::partitioned_hash());
    let sim_smj = run(Algorithm::SortMerge);

    assert_eq!(
        pred_hash.total() < pred_smj.total(),
        sim_hash < sim_smj,
        "model and simulator disagree on the winner"
    );
}
