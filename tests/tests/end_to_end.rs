//! End-to-end correctness: every cyclo-join configuration must produce
//! exactly the multiset of matches a trusted single-host join produces.

use cyclo_join::{
    reference_join, Algorithm, ComputeMode, CycloJoin, JoinPredicate, OutputMode, RotateSide,
};
use relation::{GenSpec, Relation};

fn uniform_pair(n: usize, seed: u64) -> (Relation, Relation) {
    (
        GenSpec::uniform(n, seed).generate(),
        GenSpec::uniform(n, seed + 1).generate(),
    )
}

#[test]
fn all_algorithms_all_ring_sizes_match_reference() {
    let (r, s) = uniform_pair(3_000, 200);
    for (alg, pred) in [
        (Algorithm::partitioned_hash(), JoinPredicate::Equi),
        (Algorithm::SortMerge, JoinPredicate::Equi),
        (Algorithm::NestedLoops, JoinPredicate::Equi),
        (Algorithm::SortMerge, JoinPredicate::band(2)),
        (Algorithm::NestedLoops, JoinPredicate::band(2)),
    ] {
        let reference = reference_join(&r, &s, &pred);
        for hosts in [1usize, 2, 3, 6] {
            let report = CycloJoin::new(r.clone(), s.clone())
                .algorithm(alg)
                .predicate(pred.clone())
                .hosts(hosts)
                .run()
                .expect("plan should run");
            assert_eq!(
                report.match_count(),
                reference.count,
                "{alg} {pred} hosts={hosts}: count"
            );
            assert_eq!(
                report.checksum(),
                reference.checksum,
                "{alg} {pred} hosts={hosts}: checksum"
            );
        }
    }
}

#[test]
fn fragment_count_does_not_change_the_result() {
    let (r, s) = uniform_pair(2_400, 210);
    let reference = reference_join(&r, &s, &JoinPredicate::Equi);
    for fragments in [1usize, 2, 5, 16, 64] {
        let report = CycloJoin::new(r.clone(), s.clone())
            .hosts(4)
            .fragments_per_host(fragments)
            .run()
            .expect("plan should run");
        assert_eq!(
            report.match_count(),
            reference.count,
            "fragments={fragments}"
        );
        assert_eq!(
            report.checksum(),
            reference.checksum,
            "fragments={fragments}"
        );
    }
}

#[test]
fn skewed_inputs_match_reference() {
    for z in [0.5, 0.9] {
        let r = GenSpec::zipf(1_500, z, 220).generate();
        let s = GenSpec::zipf(1_500, z, 221).generate();
        let reference = reference_join(&r, &s, &JoinPredicate::Equi);
        let report = CycloJoin::new(r, s)
            .hosts(6)
            .run()
            .expect("plan should run");
        assert_eq!(report.match_count(), reference.count, "z={z}");
        assert_eq!(report.checksum(), reference.checksum, "z={z}");
    }
}

#[test]
fn rotation_side_does_not_change_the_result() {
    let r = GenSpec::uniform(2_000, 230).generate();
    let s = GenSpec::uniform(500, 231).generate();
    let reference = reference_join(&r, &s, &JoinPredicate::Equi);
    for rotate in [RotateSide::R, RotateSide::S, RotateSide::Auto] {
        let report = CycloJoin::new(r.clone(), s.clone())
            .hosts(3)
            .rotate(rotate)
            .run()
            .expect("plan should run");
        assert_eq!(report.match_count(), reference.count, "{rotate:?}");
        assert_eq!(report.checksum(), reference.checksum, "{rotate:?}");
    }
}

#[test]
fn swapped_materialized_matches_are_in_canonical_orientation() {
    let r = GenSpec::uniform(400, 240).generate();
    let s = GenSpec::uniform(100, 241).generate();
    // Force S to rotate: matches are produced sides-swapped internally.
    let report = CycloJoin::new(r.clone(), s.clone())
        .hosts(2)
        .rotate(RotateSide::S)
        .output(OutputMode::Materialize)
        .run()
        .expect("plan should run");
    assert!(report.swapped);
    for m in report.result.matches() {
        // The R side of every stored match must come from the logical R.
        assert!(
            r.iter().any(|t| t.key == m.key && t.payload == m.r_payload),
            "match {m:?} has a non-R left side"
        );
        assert!(
            s.iter()
                .any(|t| t.key == m.s_key && t.payload == m.s_payload),
            "match {m:?} has a non-S right side"
        );
    }
}

#[test]
fn measured_compute_mode_matches_reference() {
    let (r, s) = uniform_pair(2_000, 250);
    let reference = reference_join(&r, &s, &JoinPredicate::Equi);
    let report = CycloJoin::new(r, s)
        .hosts(3)
        .compute(ComputeMode::Measured)
        .run()
        .expect("plan should run");
    assert_eq!(report.match_count(), reference.count);
    assert_eq!(report.checksum(), reference.checksum);
    assert!(report.total_seconds() > 0.0);
}

#[test]
fn theta_predicates_run_via_nested_loops() {
    let (r, s) = uniform_pair(300, 260);
    let pred = JoinPredicate::theta(|a, b| a > b && (a - b) % 3 == 0);
    let reference = reference_join(&r, &s, &pred);
    let report = CycloJoin::new(r, s)
        .predicate(pred)
        .hosts(3)
        .run()
        .expect("plan should run");
    assert_eq!(report.algorithm, "nested-loops");
    assert_eq!(report.match_count(), reference.count);
    assert_eq!(report.checksum(), reference.checksum);
}

#[test]
fn empty_and_disjoint_inputs() {
    // Empty R.
    let empty = Relation::new();
    let s = GenSpec::uniform(500, 270).generate();
    let report = CycloJoin::new(empty.clone(), s.clone())
        .hosts(3)
        .run()
        .expect("plan should run");
    assert_eq!(report.match_count(), 0);

    // Disjoint key ranges: no matches.
    let low = Relation::from_pairs((0..500u32).map(|k| (k, k as u64)));
    let high = Relation::from_pairs((10_000..10_500u32).map(|k| (k, k as u64)));
    let report = CycloJoin::new(low, high)
        .hosts(4)
        .run()
        .expect("plan should run");
    assert_eq!(report.match_count(), 0);
}

#[test]
fn tiny_inputs_on_large_rings() {
    // Fewer tuples than hosts × fragments: many empty fragments.
    let (r, s) = uniform_pair(7, 280);
    let reference = reference_join(&r, &s, &JoinPredicate::Equi);
    let report = CycloJoin::new(r, s)
        .hosts(6)
        .fragments_per_host(4)
        .run()
        .expect("plan should run");
    assert_eq!(report.match_count(), reference.count);
}
