//! Integration scenarios for the continuous Data Cyclotron mode.

use cyclo_join::cyclotron::{DataCyclotron, QueryArrival};
use cyclo_join::{reference_join, Algorithm, JoinPredicate};
use data_roundabout::HostId;
use relation::GenSpec;
use simnet::time::SimDuration;

#[test]
fn mixed_algorithm_queries_on_one_rotation() {
    let hot = GenSpec::uniform(4_000, 1300).generate();
    let s_hash = GenSpec::uniform(1_000, 1301).generate();
    let s_band = GenSpec::uniform(1_000, 1302).generate();
    let band = JoinPredicate::band(2);
    let report = DataCyclotron::new(hot.clone())
        .hosts(4)
        .submit(QueryArrival::equi(
            SimDuration::ZERO,
            HostId(0),
            s_hash.clone(),
        ))
        .submit(QueryArrival {
            at: SimDuration::from_millis(2),
            home: HostId(3),
            stationary: s_band.clone(),
            predicate: band.clone(),
            algorithm: Algorithm::SortMerge,
        })
        .run()
        .expect("cyclotron should run");
    let ref_hash = reference_join(&hot, &s_hash, &JoinPredicate::Equi);
    let ref_band = reference_join(&hot, &s_band, &band);
    assert_eq!(report.queries[0].count, ref_hash.count);
    assert_eq!(report.queries[0].checksum, ref_hash.checksum);
    assert_eq!(report.queries[1].count, ref_band.count);
    assert_eq!(report.queries[1].checksum, ref_band.checksum);
}

#[test]
fn skewed_hot_set_queries_verify() {
    let hot = GenSpec::zipf(3_000, 0.9, 1310).generate();
    let s = GenSpec::zipf(1_000, 0.9, 1311).generate();
    let reference = reference_join(&hot, &s, &JoinPredicate::Equi);
    let report = DataCyclotron::new(hot)
        .hosts(3)
        .submit(QueryArrival::equi(SimDuration::ZERO, HostId(1), s))
        .run()
        .expect("cyclotron should run");
    assert_eq!(report.queries[0].count, reference.count);
    assert_eq!(report.queries[0].checksum, reference.checksum);
}

#[test]
fn cyclotron_runs_are_deterministic() {
    let run = || {
        let hot = GenSpec::uniform(2_000, 1320).generate();
        let s = GenSpec::uniform(800, 1321).generate();
        let report = DataCyclotron::new(hot)
            .hosts(3)
            .submit(QueryArrival::equi(
                SimDuration::from_millis(1),
                HostId(2),
                s,
            ))
            .run()
            .expect("cyclotron should run");
        (
            report.queries[0].completed,
            report.queries[0].count,
            report.queries[0].checksum,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn later_arrivals_never_complete_before_earlier_identical_ones() {
    let hot = GenSpec::uniform(3_000, 1330).generate();
    let s = GenSpec::uniform(800, 1331).generate();
    let report = DataCyclotron::new(hot)
        .hosts(4)
        .submit(QueryArrival::equi(SimDuration::ZERO, HostId(0), s.clone()))
        .submit(QueryArrival::equi(
            SimDuration::from_millis(30),
            HostId(0),
            s,
        ))
        .run()
        .expect("cyclotron should run");
    assert!(report.queries[1].completed >= report.queries[0].completed);
    assert_eq!(report.queries[0].count, report.queries[1].count);
}
