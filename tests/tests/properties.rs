//! Property-based tests: randomized workloads and configurations must
//! always satisfy the cyclo-join invariants.

use cyclo_join::{reference_join, Algorithm, CycloJoin, JoinPredicate, RingConfig, RotateSide};
use proptest::prelude::*;
use relation::{GenSpec, KeyDistribution, Relation};

/// Strategy: a small relation with an arbitrary mix of key distributions.
fn relation_strategy() -> impl Strategy<Value = Relation> {
    (0usize..600, 0u64..1_000, 0usize..3).prop_map(|(tuples, seed, dist)| {
        let spec = match dist {
            0 => GenSpec::uniform(tuples, seed),
            1 => GenSpec::zipf(tuples, 0.9, seed),
            _ => GenSpec {
                tuples,
                distribution: KeyDistribution::Uniform {
                    domain: 16, // tiny domain: many duplicates
                },
                seed,
            },
        };
        spec.generate()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The distributed result always equals the reference, whatever the
    /// data, ring size, fragmentation, or rotation side.
    #[test]
    fn cyclo_join_equals_reference(
        r in relation_strategy(),
        s in relation_strategy(),
        hosts in 1usize..7,
        fragments in 1usize..6,
        rotate_s in any::<bool>(),
    ) {
        let reference = reference_join(&r, &s, &JoinPredicate::Equi);
        let report = CycloJoin::new(r, s)
            .hosts(hosts)
            .fragments_per_host(fragments)
            .rotate(if rotate_s { RotateSide::S } else { RotateSide::R })
            .run()
            .expect("plan should run");
        prop_assert_eq!(report.match_count(), reference.count);
        prop_assert_eq!(report.checksum(), reference.checksum);
    }

    /// Hash join and sort-merge join agree on every equi-join.
    #[test]
    fn algorithms_agree(
        r in relation_strategy(),
        s in relation_strategy(),
        hosts in 1usize..5,
    ) {
        let hash = CycloJoin::new(r.clone(), s.clone())
            .algorithm(Algorithm::partitioned_hash())
            .hosts(hosts)
            .run()
            .expect("hash plan");
        let smj = CycloJoin::new(r, s)
            .algorithm(Algorithm::SortMerge)
            .hosts(hosts)
            .run()
            .expect("smj plan");
        prop_assert_eq!(hash.match_count(), smj.match_count());
        prop_assert_eq!(hash.checksum(), smj.checksum());
    }

    /// Every host processes every fragment exactly once, and all fragments
    /// complete their revolution.
    #[test]
    fn conservation_of_fragments(
        r in relation_strategy(),
        s in relation_strategy(),
        hosts in 1usize..7,
        fragments in 1usize..5,
        buffers in 1usize..4,
    ) {
        let report = CycloJoin::new(r, s)
            .ring(RingConfig::paper(hosts).with_buffers(buffers))
            .fragments_per_host(fragments)
            .run()
            .expect("plan should run");
        let total_fragments = hosts * fragments;
        prop_assert_eq!(report.ring.fragments_completed, total_fragments);
        for h in &report.ring.hosts {
            prop_assert_eq!(h.fragments_processed, total_fragments);
        }
    }

    /// Band joins widen monotonically: a larger delta can only add matches.
    #[test]
    fn band_join_is_monotone_in_delta(
        r in relation_strategy(),
        s in relation_strategy(),
        delta in 0u32..8,
    ) {
        let run = |d: u32| {
            CycloJoin::new(r.clone(), s.clone())
                .predicate(JoinPredicate::band(d))
                .hosts(3)
                .run()
                .expect("band plan")
                .match_count()
        };
        prop_assert!(run(delta) <= run(delta + 1));
    }

    /// Virtual phase accounting is internally consistent:
    /// busy + sync ≈ join window, and nothing is negative.
    #[test]
    fn phase_accounting_is_consistent(
        r in relation_strategy(),
        s in relation_strategy(),
        hosts in 1usize..7,
    ) {
        let report = CycloJoin::new(r, s).hosts(hosts).run().expect("plan should run");
        for h in &report.ring.hosts {
            let busy_plus_sync = h.join_busy + h.sync;
            prop_assert_eq!(busy_plus_sync, h.join_window);
        }
        prop_assert!(report.total_seconds() >= report.setup_seconds());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The continuous cyclotron serves any batch of random arrivals with
    /// exact results and monotone completion for same-host duplicates.
    #[test]
    fn cyclotron_serves_random_arrivals(
        hot in relation_strategy(),
        queries in prop::collection::vec((0u64..50, 0usize..4, 0usize..400, 0u64..1000), 1..4),
    ) {
        use cyclo_join::cyclotron::{DataCyclotron, QueryArrival};
        use data_roundabout::HostId;
        use simnet::time::SimDuration;

        prop_assume!(!hot.is_empty());
        let hosts = 4;
        let mut cyclotron = DataCyclotron::new(hot.clone()).hosts(hosts);
        let mut stationaries = Vec::new();
        for &(at_ms, home, tuples, seed) in &queries {
            let s = GenSpec::uniform(tuples, seed).generate();
            stationaries.push(s.clone());
            cyclotron = cyclotron.submit(QueryArrival::equi(
                SimDuration::from_millis(at_ms),
                HostId(home % hosts),
                s,
            ));
        }
        let report = cyclotron.run().expect("cyclotron should run");
        for (q, s) in report.queries.iter().zip(&stationaries) {
            let reference = reference_join(&hot, s, &JoinPredicate::Equi);
            prop_assert_eq!(q.count, reference.count);
            prop_assert_eq!(q.checksum, reference.checksum);
            prop_assert!(q.completed >= q.arrived);
        }
    }
}
