//! Elasticity and failure handling across the stack: membership changes
//! repartition data but never change the join result (§II-C).

use cyclo_join::{absorb_host, rebalance, reference_join, CycloJoin, JoinPredicate};
use relation::{relation_checksum, GenSpec, Relation};

fn merge(parts: &[Relation]) -> Relation {
    let mut out = Relation::new();
    for p in parts {
        out.extend_from(p);
    }
    out
}

#[test]
fn join_survives_any_single_host_failure() {
    let r = GenSpec::uniform(2_400, 500).generate();
    let s = GenSpec::uniform(2_400, 501).generate();
    let reference = reference_join(&r, &s, &JoinPredicate::Equi);
    let hosts = 5;
    let parts = s.split_even(hosts);
    for failed in 0..hosts {
        let survivors = absorb_host(parts.clone(), failed).expect("failed host is in range");
        let s_again = merge(&survivors);
        assert_eq!(
            relation_checksum(&s_again),
            relation_checksum(&s),
            "absorb must not lose data (failed host {failed})"
        );
        let report = CycloJoin::new(r.clone(), s_again)
            .hosts(hosts - 1)
            .run()
            .expect("plan should run");
        assert_eq!(
            report.match_count(),
            reference.count,
            "failed host {failed}"
        );
        assert_eq!(
            report.checksum(),
            reference.checksum,
            "failed host {failed}"
        );
    }
}

#[test]
fn repeated_failures_down_to_one_host() {
    let r = GenSpec::uniform(1_200, 510).generate();
    let s = GenSpec::uniform(1_200, 511).generate();
    let reference = reference_join(&r, &s, &JoinPredicate::Equi);
    let mut parts = s.split_even(6);
    while parts.len() > 1 {
        parts = absorb_host(parts, 0).expect("more than one host remains");
        let report = CycloJoin::new(r.clone(), merge(&parts))
            .hosts(parts.len())
            .run()
            .expect("plan should run");
        assert_eq!(
            report.match_count(),
            reference.count,
            "{} hosts",
            parts.len()
        );
    }
}

#[test]
fn growing_the_ring_preserves_results_and_speeds_setup() {
    let r = GenSpec::uniform(30_000, 520).generate();
    let s = GenSpec::uniform(30_000, 521).generate();
    let reference = reference_join(&r, &s, &JoinPredicate::Equi);
    let small = CycloJoin::new(r.clone(), s.clone())
        .hosts(2)
        .run()
        .expect("plan should run");
    let parts = rebalance(&s.split_even(2), 8).expect("eight hosts is a valid ring size");
    assert_eq!(parts.len(), 8);
    let big = CycloJoin::new(r, merge(&parts))
        .hosts(8)
        .run()
        .expect("plan should run");
    assert_eq!(small.match_count(), reference.count);
    assert_eq!(big.match_count(), reference.count);
    assert!(
        big.setup_seconds() < small.setup_seconds(),
        "more hosts must shrink the setup phase"
    );
}
