//! Integration tests of the extension features: shared rotation,
//! N-way pipelines, shipping modes, and the run timeline.

use cyclo_join::concurrent::ConcurrentJoins;
use cyclo_join::pipeline::JoinPipeline;
use cyclo_join::{reference_join, Algorithm, CycloJoin, JoinPredicate, RotateSide};
use data_roundabout::render_timeline;
use relation::{GenSpec, Tuple};

#[test]
fn shipping_modes_agree_on_results() {
    for alg in [Algorithm::partitioned_hash(), Algorithm::SortMerge] {
        let r = GenSpec::uniform(2_000, 900).generate();
        let s = GenSpec::uniform(2_000, 901).generate();
        let reference = reference_join(&r, &s, &JoinPredicate::Equi);
        let shipped = CycloJoin::new(r.clone(), s.clone())
            .algorithm(alg)
            .hosts(4)
            .rotate(RotateSide::R)
            .ship_prepared(true)
            .run()
            .expect("shipped plan");
        let raw = CycloJoin::new(r, s)
            .algorithm(alg)
            .hosts(4)
            .rotate(RotateSide::R)
            .ship_prepared(false)
            .run()
            .expect("raw plan");
        assert_eq!(shipped.checksum(), reference.checksum);
        assert_eq!(raw.checksum(), reference.checksum);
        // Raw shipping must pay preparation per encounter: join phase up,
        // setup down.
        assert!(
            raw.join_seconds() > shipped.join_seconds(),
            "{alg:?}: raw join {} vs shipped {}",
            raw.join_seconds(),
            shipped.join_seconds()
        );
        assert!(raw.setup_seconds() < shipped.setup_seconds());
    }
}

#[test]
fn concurrent_batch_on_ring_sizes() {
    let hot = GenSpec::uniform(2_400, 910).generate();
    let s1 = GenSpec::uniform(1_200, 911).generate();
    let s2 = GenSpec::zipf(1_200, 0.8, 912).generate();
    let ref1 = reference_join(&hot, &s1, &JoinPredicate::Equi);
    let ref2 = reference_join(&hot, &s2, &JoinPredicate::Equi);
    for hosts in [1usize, 3, 6] {
        let report = ConcurrentJoins::new(hot.clone())
            .query(s1.clone(), JoinPredicate::Equi)
            .query(s2.clone(), JoinPredicate::Equi)
            .hosts(hosts)
            .run()
            .expect("batch should run");
        assert_eq!(report.queries[0].count, ref1.count, "hosts={hosts}");
        assert_eq!(report.queries[0].checksum, ref1.checksum, "hosts={hosts}");
        assert_eq!(report.queries[1].count, ref2.count, "hosts={hosts}");
        assert_eq!(report.queries[1].checksum, ref2.checksum, "hosts={hosts}");
    }
}

#[test]
fn pipeline_then_concurrent_compose() {
    // A pipeline stage feeding a concurrent batch: exercises both
    // extensions' interop through the public API.
    let base = GenSpec::uniform(900, 920).generate();
    let s1 = GenSpec::uniform(900, 921).generate();
    let pipeline = JoinPipeline::new(base)
        .join(s1, JoinPredicate::Equi, |m| Tuple::new(m.key, m.r_payload))
        .hosts(3)
        .run()
        .expect("pipeline should run");
    assert_eq!(pipeline.stages.len(), 1);
    assert!(pipeline.match_count() > 0);
}

#[test]
fn timeline_renders_a_real_run() {
    let r = GenSpec::uniform(5_000, 930).generate();
    let s = GenSpec::uniform(5_000, 931).generate();
    let report = CycloJoin::new(r, s)
        .hosts(4)
        .run()
        .expect("plan should run");
    let rendered = render_timeline(&report.ring, 60);
    assert_eq!(rendered.lines().count(), 5, "4 host lanes + legend");
    for i in 0..4 {
        assert!(rendered.contains(&format!("H{i}")));
    }
    assert!(rendered.contains('#'), "setup must appear");
    assert!(rendered.contains('='), "join time must appear");
}

#[test]
fn stragglers_change_timing_not_results() {
    let r = GenSpec::uniform(2_000, 940).generate();
    let s = GenSpec::uniform(2_000, 941).generate();
    let reference = reference_join(&r, &s, &JoinPredicate::Equi);
    let slow = CycloJoin::new(r.clone(), s.clone())
        .hosts(4)
        .host_speeds(vec![1.0, 0.25, 1.0, 1.0])
        .run()
        .expect("straggler plan");
    let nominal = CycloJoin::new(r, s).hosts(4).run().expect("nominal plan");
    assert_eq!(slow.checksum(), reference.checksum);
    assert_eq!(nominal.checksum(), reference.checksum);
    assert!(
        slow.join_window_seconds() > nominal.join_window_seconds(),
        "a quarter-speed host must stretch the join phase"
    );
}

#[test]
fn deeper_buffers_shield_fast_hosts_from_a_straggler() {
    let r = GenSpec::uniform(30_000, 950).generate();
    let s = GenSpec::uniform(30_000, 951).generate();
    let run = |buffers: usize| {
        let report = CycloJoin::new(r.clone(), s.clone())
            .ring(cyclo_join::RingConfig::paper(6).with_buffers(buffers))
            .rotate(RotateSide::R)
            .host_speeds(vec![1.0, 1.0, 0.5, 1.0, 1.0, 1.0])
            .run()
            .expect("plan should run");
        report
            .ring
            .hosts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 2)
            .map(|(_, h)| h.sync.as_secs_f64())
            .fold(0.0, f64::max)
    };
    let shallow = run(1);
    let deep = run(4);
    assert!(
        deep < shallow,
        "deeper ring buffers must absorb the straggler: {deep:.4} vs {shallow:.4}"
    );
}
