//! Pins the copy-elimination fixes in the join and TCP hot paths: the
//! optimized kernels (borrowed-slice radix scatter, owned hash-table
//! build, pooled right-sized envelope encoding) must leave every
//! observable result of a cyclo-join untouched, on every backend.
//!
//! The kernel-level equivalences (optimized vs pre-fix code paths on the
//! same input) live in `crates/joins/tests/proptests.rs`; this test
//! covers the full stack: one seeded plan, run on all three backends,
//! with identical join results and identical structural ring counters.

use cyclo_join::{CycloJoin, CycloJoinReport, RingConfig};
use relation::GenSpec;

/// The backend-invariant slice of the report: join result plus the ring
/// counters that are a pure function of the plan (timings and per-host
/// CPU accounting legitimately differ across backends).
fn fingerprint(report: &CycloJoinReport) -> (u64, relation::Checksum, usize, usize, usize, u64) {
    (
        report.match_count(),
        report.checksum(),
        report.ring.fragments_completed,
        report.ring.heal_events,
        report.ring.fragments_resent,
        report.ring.membership_epoch,
    )
}

#[test]
fn all_backends_agree_on_results_and_ring_counters() {
    let r = GenSpec::uniform(3_000, 71).generate();
    let s = GenSpec::uniform(3_000, 72).generate();
    let plan = CycloJoin::new(r, s)
        .ring(RingConfig::paper(4).with_join_threads(2))
        .fragments_per_host(2);

    let sim = plan.run().expect("sim run");
    let threaded = plan.run_threaded().expect("threaded run");
    let tcp = plan.run_tcp().expect("tcp run");

    let expect = fingerprint(&sim);
    assert_eq!(fingerprint(&threaded), expect, "threads backend diverged");
    assert_eq!(fingerprint(&tcp), expect, "tcp backend diverged");

    // A healthy fixed plan completes every fragment's revolution and
    // never touches the fault-handling paths.
    assert_eq!(sim.ring.fragments_completed, 4 * 2);
    assert_eq!(sim.ring.heal_events, 0);
    assert_eq!(sim.ring.fragments_resent, 0);
}

#[test]
fn tcp_backend_is_repeatable_with_buffer_pooling() {
    // The frame-buffer pool recycles encode buffers across envelopes; a
    // stale or mis-sized reuse would corrupt payloads nondeterministically,
    // so run the same plan repeatedly and require identical fingerprints.
    let mk = || {
        let r = GenSpec::zipf(1_000, 0.9, 73).generate();
        let s = GenSpec::zipf(1_000, 0.9, 74).generate();
        CycloJoin::new(r, s)
            .ring(RingConfig::paper(3).with_join_threads(1))
            .fragments_per_host(3)
            .run_tcp()
            .expect("tcp run")
    };
    let first = mk();
    assert!(first.match_count() > 0, "fixture must produce matches");
    for _ in 0..2 {
        let again = mk();
        assert_eq!(fingerprint(&again), fingerprint(&first));
    }
}
