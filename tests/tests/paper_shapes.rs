//! The paper's headline result *shapes*, asserted as integration tests so
//! a regression in any layer (cost model, transport, orchestration) fails
//! loudly. These mirror the benchmark harness binaries at test scale.

use cyclo_join::{Algorithm, CycloJoin, RingConfig, RotateSide};
use relation::{paper_skew_pair, paper_uniform_pair, GenSpec};

/// Figure 7: fixed data set, growing ring ⇒ setup ∝ 1/n, join ≈ constant.
#[test]
fn fig7_shape_setup_shrinks_join_constant() {
    let (r, s) = paper_uniform_pair(0.0005, 70);
    let run = |hosts: usize| {
        CycloJoin::new(r.clone(), s.clone())
            .algorithm(Algorithm::partitioned_hash())
            .hosts(hosts)
            .rotate(RotateSide::R)
            .run()
            .expect("plan should run")
    };
    let one = run(1);
    let six = run(6);
    let setup_speedup = one.setup_seconds() / six.setup_seconds();
    assert!(
        (4.0..8.0).contains(&setup_speedup),
        "setup speedup {setup_speedup:.2}, expected ≈6×"
    );
    let join_ratio = six.join_seconds() / one.join_seconds();
    assert!(
        (0.7..1.3).contains(&join_ratio),
        "join ratio {join_ratio:.2}, expected ≈1 (Equation ⋆)"
    );
}

/// Figure 8: constant per-host volume ⇒ setup constant, join linear.
#[test]
fn fig8_shape_scaleup() {
    let per_node = 60_000;
    let run = |hosts: usize| {
        let r = GenSpec::uniform(per_node * hosts, 80).generate();
        let s = GenSpec::uniform(per_node * hosts, 81).generate();
        CycloJoin::new(r, s)
            .algorithm(Algorithm::partitioned_hash())
            .hosts(hosts)
            .rotate(RotateSide::R)
            .run()
            .expect("plan should run")
    };
    let one = run(1);
    let six = run(6);
    let setup_ratio = six.setup_seconds() / one.setup_seconds();
    assert!(
        (0.8..1.3).contains(&setup_ratio),
        "setup ratio {setup_ratio:.2}, expected ≈1 (size-independent)"
    );
    let join_ratio = six.join_seconds() / one.join_seconds();
    assert!(
        (4.0..8.0).contains(&join_ratio),
        "join ratio {join_ratio:.2}, expected ≈6 (linear in |R|)"
    );
}

/// Figure 9: under heavy skew cyclo-join beats the local join severalfold;
/// under uniform keys it does not help.
#[test]
fn fig9_shape_skew_resilience() {
    let run = |z: f64, hosts: usize| {
        let (r, s) = paper_skew_pair(z, 0.0005, 90);
        CycloJoin::new(r, s)
            .algorithm(Algorithm::partitioned_hash())
            .hosts(hosts)
            .rotate(RotateSide::R)
            .run()
            .expect("plan should run")
            .join_seconds()
    };
    let uniform_speedup = run(0.0, 1) / run(0.0, 6);
    let skew_speedup = run(0.9, 1) / run(0.9, 6);
    assert!(
        uniform_speedup < 2.0,
        "uniform data should see little join-phase benefit, got {uniform_speedup:.2}×"
    );
    assert!(
        skew_speedup > 3.0,
        "z=0.9 should see a severalfold benefit (paper: ≈5×), got {skew_speedup:.2}×"
    );
    assert!(skew_speedup > 2.0 * uniform_speedup);
}

/// Figures 10/11: sort-merge trades a much higher setup for a faster join
/// phase, and at scale its join is too fast to hide the network (sync).
#[test]
fn fig10_11_shape_sort_merge() {
    let (r, s) = paper_uniform_pair(0.0005, 100);
    let hash = CycloJoin::new(r.clone(), s.clone())
        .algorithm(Algorithm::partitioned_hash())
        .hosts(6)
        .rotate(RotateSide::R)
        .run()
        .expect("hash plan");
    let smj = CycloJoin::new(r, s)
        .algorithm(Algorithm::SortMerge)
        .hosts(6)
        .rotate(RotateSide::R)
        .run()
        .expect("smj plan");
    assert!(
        smj.setup_seconds() > 2.0 * hash.setup_seconds(),
        "sorting must cost much more than hashing: {:.4} vs {:.4}",
        smj.setup_seconds(),
        hash.setup_seconds()
    );
    assert!(
        smj.join_seconds() < hash.join_seconds(),
        "the merge phase must beat probing: {:.4} vs {:.4}",
        smj.join_seconds(),
        hash.join_seconds()
    );
    assert!(
        smj.sync_seconds() >= hash.sync_seconds(),
        "the faster join phase cannot hide more of the network"
    );
}

/// Figure 12 / Table I: RDMA beats TCP at every thread count; the gap is
/// widest with all cores joining; RDMA reaches full CPU utilization.
#[test]
fn fig12_table1_shape_rdma_vs_tcp() {
    let tuples = 120_000;
    let run = |threads: usize, tcp: bool| {
        let r = GenSpec::uniform(tuples, 120).generate();
        let s = GenSpec::uniform(tuples, 121).generate();
        let config = if tcp {
            RingConfig::paper_tcp(6)
        } else {
            RingConfig::paper(6)
        };
        CycloJoin::new(r, s)
            .algorithm(Algorithm::partitioned_hash())
            .ring(config.with_join_threads(threads))
            .rotate(RotateSide::R)
            .run()
            .expect("plan should run")
    };
    let mut gaps = Vec::new();
    for threads in 1..=4 {
        let rdma = run(threads, false);
        let tcp = run(threads, true);
        let gap =
            (tcp.join_seconds() + tcp.sync_seconds()) / (rdma.join_seconds() + rdma.sync_seconds());
        assert!(
            gap > 1.0,
            "TCP must be slower at {threads} threads, gap {gap:.2}"
        );
        gaps.push(gap);
        if threads == 4 {
            let rdma_load = rdma.join_phase_cpu_load();
            let tcp_load = tcp.join_phase_cpu_load();
            assert!(
                rdma_load > 0.95,
                "RDMA at 4 threads ≈ 100 %, got {rdma_load:.2}"
            );
            assert!(
                tcp_load < 0.95,
                "TCP must plateau below 100 %, got {tcp_load:.2}"
            );
        }
        if threads == 1 {
            let rdma_load = rdma.join_phase_cpu_load();
            assert!(
                (0.2..0.35).contains(&rdma_load),
                "RDMA at 1 thread ≈ 25 %, got {rdma_load:.2}"
            );
        }
    }
    assert!(
        gaps[3] > gaps[0],
        "the RDMA advantage must be widest at 4 threads: {gaps:?}"
    );
}
