//! Chaos scenarios: deterministic fault injection against full joins.
//!
//! Every scenario runs a complete cyclo-join under a seeded [`FaultPlan`]
//! and holds the result to the same standard as a healthy run: the match
//! count and checksum must equal the single-host [`reference_join`], and
//! the per-host metrics must show exactly-once fragment processing. The
//! seeds make every scenario bit-for-bit reproducible.

use cyclo_join::{
    reference_join, CycloJoin, CycloJoinReport, FaultPlan, HostId, JoinPredicate, PlanError,
    RescalePlan, RingConfig,
};
use relation::{GenSpec, Relation};
use simnet::time::{SimDuration, SimTime};

fn inputs() -> (Relation, Relation) {
    (
        GenSpec::uniform(6_000, 900).generate(),
        GenSpec::uniform(6_000, 901).generate(),
    )
}

fn chaos_config(hosts: usize) -> RingConfig {
    // A short ack timeout keeps the failure-detection ladder well inside
    // the join window of these small test joins.
    RingConfig::paper(hosts).with_ack_timeout(SimDuration::from_millis(2))
}

/// Join-event totals can never exceed one per (fragment, role) pair:
/// the exactly-once ledger, read off the public metrics.
fn assert_exactly_once(report: &CycloJoinReport) {
    let role_visits: usize = report
        .ring
        .hosts
        .iter()
        .map(|h| h.fragments_processed)
        .sum();
    let ceiling = report.ring.fragments_completed * report.hosts;
    assert!(
        role_visits <= ceiling,
        "{role_visits} join events exceed the {ceiling} distinct (fragment, role) pairs"
    );
}

/// Crash one of six hosts when the rotation is `frac` of the way through
/// its revolution; the surviving five must finish the join exactly.
fn crash_at_fraction(frac: f64) {
    let (r, s) = inputs();
    let reference = reference_join(&r, &s, &JoinPredicate::Equi);

    let baseline = CycloJoin::new(r.clone(), s.clone())
        .ring(chaos_config(6))
        .run()
        .expect("baseline should run");
    let revolution = baseline.total_seconds() - baseline.setup_seconds();
    let crash_at = baseline.setup_seconds() + frac * revolution;

    let plan = FaultPlan::seeded(4242).crash_host(
        HostId(3),
        SimTime::ZERO + SimDuration::from_secs_f64(crash_at),
    );
    let report = CycloJoin::new(r, s)
        .ring(chaos_config(6))
        .fault_plan(plan)
        .run()
        .expect("the healed ring should finish the join");

    assert_eq!(report.match_count(), reference.count, "crash at {frac}");
    assert_eq!(report.checksum(), reference.checksum, "crash at {frac}");
    assert_eq!(report.heal_events(), 1, "exactly one host died");
    assert!(
        report.retransmits() > 0,
        "death detection retransmits first"
    );
    assert!(report.detection_latency_seconds() > 0.0);
    assert!(!report.fault_free());
    assert_exactly_once(&report);
}

#[test]
fn crash_at_quarter_revolution_heals() {
    crash_at_fraction(0.25);
}

#[test]
fn crash_at_half_revolution_heals() {
    crash_at_fraction(0.5);
}

#[test]
fn crash_at_three_quarter_revolution_heals() {
    crash_at_fraction(0.75);
}

/// A host dies *while draining out*: the planned departure hands its
/// stationary partitions off up front, so when the crash interrupts the
/// graceful exit mid-relay, crash healing — not the drain protocol —
/// finishes the job, and the join still matches the single-host
/// reference exactly. The drain never completes (the host died first),
/// so the epoch advance it would have contributed never happens.
#[test]
fn crash_during_drain_degrades_to_healing() {
    let (r, s) = inputs();
    let reference = reference_join(&r, &s, &JoinPredicate::Equi);

    let baseline = CycloJoin::new(r.clone(), s.clone())
        .ring(chaos_config(6))
        .run()
        .expect("baseline should run");
    let revolution = baseline.total_seconds() - baseline.setup_seconds();
    let drain_at = baseline.setup_seconds() + 0.35 * revolution;
    let crash_at = drain_at + 0.05 * revolution;

    let rescale = RescalePlan::seeded(4242).drain_host(
        HostId(1),
        SimTime::ZERO + SimDuration::from_secs_f64(drain_at),
    );
    let faults = FaultPlan::seeded(4242).crash_host(
        HostId(1),
        SimTime::ZERO + SimDuration::from_secs_f64(crash_at),
    );
    let report = CycloJoin::new(r, s)
        .ring(chaos_config(6))
        .rescale_plan(rescale)
        .fault_plan(faults)
        .run()
        .expect("healing should finish what the drain started");

    assert_eq!(report.match_count(), reference.count);
    assert_eq!(report.checksum(), reference.checksum);
    assert_eq!(report.heal_events(), 1, "the drainee died mid-drain");
    assert_eq!(
        report.rescale_drains(),
        0,
        "a drain cut short by death is not a completed drain"
    );
    assert_eq!(
        report.membership_epoch(),
        report.rescale_joins() + report.rescale_drains(),
        "the epoch only counts completed transitions"
    );
    assert!(!report.fault_free());
    assert_exactly_once(&report);
}

/// The same mid-revolution death over *real sockets*: the TCP backend
/// realizes the seeded crash as an actual connection sever (a FIN after
/// the last committed byte) and reports the death to the protocol, whose
/// role-takeover ledger completes the join exactly once — held to the
/// same reference-equality standard as the simulated scenarios above.
/// Unlike the simulated ladder, detection here is the fault injector's
/// own sever report, so a retransmit burst is possible but not
/// guaranteed — the assertions stick to what the contract promises.
#[test]
fn tcp_connection_sever_mid_revolution_heals_exactly_once() {
    let (r, s) = inputs();
    let reference = reference_join(&r, &s, &JoinPredicate::Equi);

    // Wall-clock backend: the crash instant counts from the start of the
    // revolution, and the ack timeout must be generous enough that a
    // scheduler stall never masquerades as a death on a healthy link.
    let plan =
        FaultPlan::seeded(4242).crash_host(HostId(2), SimTime::ZERO + SimDuration::from_millis(5));
    let config = RingConfig::paper(4)
        .with_ack_timeout(SimDuration::from_millis(8))
        .with_max_retransmits(3);
    let report = CycloJoin::new(r, s)
        .ring(config)
        .fault_plan(plan)
        .run_tcp()
        .expect("the healed ring should finish the join over real sockets");

    assert_eq!(report.match_count(), reference.count);
    assert_eq!(report.checksum(), reference.checksum);
    assert_eq!(report.heal_events(), 1, "exactly one socket was severed");
    assert!(report.detection_latency_seconds() > 0.0);
    assert!(!report.fault_free());
    assert_exactly_once(&report);
}

/// Crash-during-drain over real sockets. Wall-clock scheduling decides
/// whether the sever lands while the drain is still relaying (crash
/// healing takes over) or just after the host already departed (the
/// sever hits a closed socket and is a no-op) — but in *either* world
/// the host leaves the ring exactly once and the join is exact, which
/// is precisely the invariant the degradation ladder promises.
#[test]
fn tcp_crash_during_drain_departs_exactly_once() {
    let (r, s) = inputs();
    let reference = reference_join(&r, &s, &JoinPredicate::Equi);

    let rescale = RescalePlan::seeded(4242)
        .drain_host(HostId(1), SimTime::ZERO + SimDuration::from_millis(5));
    let faults =
        FaultPlan::seeded(4242).crash_host(HostId(1), SimTime::ZERO + SimDuration::from_millis(6));
    let config = RingConfig::paper(4)
        .with_ack_timeout(SimDuration::from_millis(8))
        .with_max_retransmits(3);
    let report = CycloJoin::new(r, s)
        .ring(config)
        .rescale_plan(rescale)
        .fault_plan(faults)
        .run_tcp()
        .expect("the ring should survive a crash racing a planned drain");

    assert_eq!(report.match_count(), reference.count);
    assert_eq!(report.checksum(), reference.checksum);
    assert_eq!(
        report.heal_events() as u64 + report.rescale_drains(),
        1,
        "host 1 must leave exactly once — gracefully or by being declared dead"
    );
    assert_eq!(
        report.membership_epoch(),
        report.rescale_joins() + report.rescale_drains(),
        "the epoch only counts completed transitions"
    );
    assert_exactly_once(&report);
}

/// The mid-revolution sever again, but on the reactor backend: the same
/// crash plan lands on sockets owned by a single event-loop thread, so
/// the sever surfaces as readiness (an EOF and dead writes) rather than
/// a blocked I/O thread — and the exactly-once ledger must hold to the
/// identical standard.
#[test]
fn reactor_connection_sever_mid_revolution_heals_exactly_once() {
    let (r, s) = inputs();
    let reference = reference_join(&r, &s, &JoinPredicate::Equi);

    let plan =
        FaultPlan::seeded(4242).crash_host(HostId(2), SimTime::ZERO + SimDuration::from_millis(5));
    let config = RingConfig::paper(4)
        .with_ack_timeout(SimDuration::from_millis(8))
        .with_max_retransmits(3);
    let report = CycloJoin::new(r, s)
        .ring(config)
        .fault_plan(plan)
        .run_reactor()
        .expect("the healed ring should finish the join on the event loop");

    assert_eq!(report.match_count(), reference.count);
    assert_eq!(report.checksum(), reference.checksum);
    assert_eq!(report.heal_events(), 1, "exactly one socket was severed");
    assert!(report.detection_latency_seconds() > 0.0);
    assert!(!report.fault_free());
    assert_exactly_once(&report);
}

/// Crash-during-drain on the reactor backend: as with the blocking TCP
/// driver, wall-clock scheduling picks which rung of the degradation
/// ladder resolves the race, but host 1 leaves the ring exactly once
/// either way and the join stays exact.
#[test]
fn reactor_crash_during_drain_departs_exactly_once() {
    let (r, s) = inputs();
    let reference = reference_join(&r, &s, &JoinPredicate::Equi);

    let rescale = RescalePlan::seeded(4242)
        .drain_host(HostId(1), SimTime::ZERO + SimDuration::from_millis(5));
    let faults =
        FaultPlan::seeded(4242).crash_host(HostId(1), SimTime::ZERO + SimDuration::from_millis(6));
    let config = RingConfig::paper(4)
        .with_ack_timeout(SimDuration::from_millis(8))
        .with_max_retransmits(3);
    let report = CycloJoin::new(r, s)
        .ring(config)
        .rescale_plan(rescale)
        .fault_plan(faults)
        .run_reactor()
        .expect("the reactor ring should survive a crash racing a planned drain");

    assert_eq!(report.match_count(), reference.count);
    assert_eq!(report.checksum(), reference.checksum);
    assert_eq!(
        report.heal_events() as u64 + report.rescale_drains(),
        1,
        "host 1 must leave exactly once — gracefully or by being declared dead"
    );
    assert_eq!(
        report.membership_epoch(),
        report.rescale_joins() + report.rescale_drains(),
        "the epoch only counts completed transitions"
    );
    assert_exactly_once(&report);
}

/// A fault-free run over real sockets produces the same join as the
/// simulated backend on identical inputs — the acceptance bar for the
/// TCP driver, checked end to end through the planner.
#[test]
fn tcp_backend_matches_the_simulated_join_result() {
    let (r, s) = inputs();
    let sim = CycloJoin::new(r.clone(), s.clone())
        .ring(chaos_config(4))
        .run()
        .expect("simulated run");
    let tcp = CycloJoin::new(r, s)
        .ring(RingConfig::paper(4))
        .run_tcp()
        .expect("tcp run");
    assert_eq!(tcp.match_count(), sim.match_count());
    assert_eq!(tcp.checksum(), sim.checksum());
    assert_eq!(
        tcp.ring.fragments_completed, sim.ring.fragments_completed,
        "both backends must complete the same revolution"
    );
    assert!(tcp.fault_free());
}

#[test]
fn lossy_link_retransmits_but_never_loses_a_fragment() {
    let (r, s) = inputs();
    let reference = reference_join(&r, &s, &JoinPredicate::Equi);
    let plan = FaultPlan::seeded(7).lossy_link(HostId(1), 0.25);
    let report = CycloJoin::new(r, s)
        .ring(chaos_config(4))
        .fault_plan(plan)
        .run()
        .expect("retransmissions should repair the link");
    assert_eq!(report.match_count(), reference.count);
    assert_eq!(report.checksum(), reference.checksum);
    assert!(report.retransmits() > 0, "a 25% lossy link must retransmit");
    assert_eq!(report.heal_events(), 0, "loss is not death");
    assert_exactly_once(&report);
}

#[test]
fn corrupted_envelopes_are_caught_by_checksums() {
    let (r, s) = inputs();
    let reference = reference_join(&r, &s, &JoinPredicate::Equi);
    let plan = FaultPlan::seeded(21).corrupt_link(HostId(0), 0.25);
    let report = CycloJoin::new(r, s)
        .ring(chaos_config(4))
        .fault_plan(plan)
        .run()
        .expect("corrupted hops should be retransmitted");
    assert_eq!(report.match_count(), reference.count);
    assert_eq!(report.checksum(), reference.checksum);
    assert!(
        report.checksum_mismatches() > 0,
        "the receiver must catch corruption"
    );
    assert!(report.retransmits() > 0, "a corrupted hop is retried");
    assert_eq!(report.heal_events(), 0);
    assert_exactly_once(&report);
}

#[test]
fn paused_host_resumes_without_being_declared_dead() {
    let (r, s) = inputs();
    let reference = reference_join(&r, &s, &JoinPredicate::Equi);

    let baseline = CycloJoin::new(r.clone(), s.clone())
        .ring(chaos_config(4))
        .run()
        .expect("baseline should run");
    let mid =
        baseline.setup_seconds() + 0.5 * (baseline.total_seconds() - baseline.setup_seconds());

    let plan = FaultPlan::seeded(99).pause_host(
        HostId(2),
        SimTime::ZERO + SimDuration::from_secs_f64(mid),
        SimDuration::from_millis(40),
    );
    let report = CycloJoin::new(r, s)
        .ring(chaos_config(4))
        .fault_plan(plan)
        .run()
        .expect("a paused host backpressures, it does not die");

    assert_eq!(report.match_count(), reference.count);
    assert_eq!(report.checksum(), reference.checksum);
    assert_eq!(
        report.heal_events(),
        0,
        "a pause must never be treated as a crash"
    );
    assert!(
        report.total_seconds() > baseline.total_seconds(),
        "a mid-revolution stall must show up in the wall clock"
    );
    assert_exactly_once(&report);
}

#[test]
fn disabled_faults_leave_the_baseline_untouched() {
    let (r, s) = inputs();
    let reference = reference_join(&r, &s, &JoinPredicate::Equi);

    let baseline = CycloJoin::new(r.clone(), s.clone())
        .ring(chaos_config(6))
        .run()
        .expect("baseline should run");
    let quiet = CycloJoin::new(r, s)
        .ring(chaos_config(6))
        .fault_plan(FaultPlan::seeded(123))
        .run()
        .expect("a quiet plan should run");

    for report in [&baseline, &quiet] {
        assert_eq!(report.match_count(), reference.count);
        assert_eq!(report.checksum(), reference.checksum);
        assert!(report.fault_free(), "all fault counters must be zero");
        assert_eq!(report.heal_events(), 0);
        assert_eq!(report.retransmits(), 0);
        assert_eq!(report.checksum_mismatches(), 0);
        assert_eq!(report.fragments_resent(), 0);
        assert_eq!(report.detection_latency_seconds(), 0.0);
    }
    // Dropping the plan entirely restores the classic transport: the
    // simulation is deterministic, so the timings match the baseline
    // exactly.
    let rerun = CycloJoin::new(
        GenSpec::uniform(6_000, 900).generate(),
        GenSpec::uniform(6_000, 901).generate(),
    )
    .ring(chaos_config(6))
    .run()
    .expect("rerun should run");
    assert_eq!(baseline.total_seconds(), rerun.total_seconds());
    assert_eq!(baseline.setup_seconds(), rerun.setup_seconds());
    assert_eq!(baseline.sync_seconds(), rerun.sync_seconds());
    // A quiet plan still pays for acknowledged stop-and-wait transport
    // (one in-flight envelope per hop, 64 B acks) — but nothing more.
    assert!(
        quiet.total_seconds() < 2.5 * baseline.total_seconds(),
        "ack transport premium out of bounds: {} vs {}",
        quiet.total_seconds(),
        baseline.total_seconds()
    );
}

#[test]
fn chaos_runs_are_reproducible() {
    let (r, s) = inputs();
    let run = || {
        let plan = FaultPlan::seeded(4242)
            .crash_host(HostId(3), SimTime::ZERO + SimDuration::from_millis(60));
        CycloJoin::new(r.clone(), s.clone())
            .ring(chaos_config(6))
            .fault_plan(plan)
            .run()
            .expect("chaos run should complete")
    };
    let a = run();
    let b = run();
    assert_eq!(a.match_count(), b.match_count());
    assert_eq!(a.checksum(), b.checksum());
    assert_eq!(a.total_seconds(), b.total_seconds());
    assert_eq!(a.retransmits(), b.retransmits());
    assert_eq!(a.detection_latency_seconds(), b.detection_latency_seconds());
}

#[test]
fn fault_plans_are_validated_before_running() {
    let (r, s) = inputs();
    let plan =
        FaultPlan::seeded(1).crash_host(HostId(9), SimTime::ZERO + SimDuration::from_millis(1));
    let err = CycloJoin::new(r, s)
        .ring(chaos_config(4))
        .fault_plan(plan)
        .run()
        .unwrap_err();
    assert!(matches!(err, PlanError::BadQuery(_)), "got: {err:?}");
    assert!(err.to_string().contains("targets host 9"), "got: {err}");
}

/// Multi-tenant chaos: two queries in flight on one multiplexed ring
/// when a host dies mid-revolution. Healing is ring-global — the crash
/// is detected once and the survivor absorbs the dead role's stationary
/// state for *every* tenant in one takeover — so exactly one heal event
/// appears, both queries complete, and both match their single-host
/// references exactly.
#[test]
fn multi_tenant_crash_mid_revolution_heals_once_for_all_tenants() {
    use cyclo_join::MultiTenantJoin;
    let specs: Vec<_> = (0..2u64)
        .map(|q| {
            (
                GenSpec::uniform(5_000 + 700 * q as usize, 910 + 2 * q).generate(),
                GenSpec::uniform(4_000, 911 + 2 * q).generate(),
            )
        })
        .collect();
    let batch = {
        let mut b = MultiTenantJoin::new().hosts(4).max_active(2);
        for (r, s) in &specs {
            b = b.tenant(r.clone(), s.clone(), JoinPredicate::Equi);
        }
        b
    };

    // Probe a quiet run to aim the crash at mid-revolution.
    let quiet = batch
        .clone()
        .fault_plan(FaultPlan::seeded(55))
        .run()
        .expect("probe run");
    assert_eq!(quiet.ring.heal_events, 0);
    let mid = SimTime::from_nanos(quiet.ring.wall_clock.as_nanos() / 2);

    let plan = FaultPlan::seeded(55).crash_host(HostId(2), mid);
    let report = batch.fault_plan(plan).run().expect("healed run");
    assert_eq!(report.ring.heal_events, 1, "one crash, one heal");
    assert!(report.all_completed(), "both in-flight queries complete");
    assert!(
        report.ring.total_retransmits() > 0,
        "death detection retransmits first"
    );
    for (tenant, (r, s)) in report.tenants.iter().zip(&specs) {
        let reference = reference_join(r, s, &JoinPredicate::Equi);
        assert_eq!(tenant.count, reference.count, "tenant {}", tenant.tenant);
        assert_eq!(
            tenant.checksum, reference.checksum,
            "tenant {}",
            tenant.tenant
        );
    }
}

/// Multi-tenant chaos, membership edition: three queries with an
/// admission bound of two, so the third waits in the queue — then one
/// host drains out (planned, epoch bump) while *another* host crashes.
/// The queued query must still be admitted onto the reshaped ring and
/// complete: admission is a protocol property, not a property of the
/// membership snapshot the query was submitted under.
#[test]
fn multi_tenant_crash_during_drain_still_admits_the_queued_query() {
    use cyclo_join::MultiTenantJoin;
    let specs: Vec<_> = (0..3u64)
        .map(|q| {
            (
                GenSpec::uniform(4_500, 920 + 2 * q).generate(),
                GenSpec::uniform(3_500, 921 + 2 * q).generate(),
            )
        })
        .collect();
    let batch = {
        let mut b = MultiTenantJoin::new().hosts(4).max_active(2);
        for (r, s) in &specs {
            b = b.tenant(r.clone(), s.clone(), JoinPredicate::Equi);
        }
        b
    };

    let quiet = batch
        .clone()
        .fault_plan(FaultPlan::seeded(66))
        .run()
        .expect("probe run");
    let t = quiet.ring.wall_clock.as_nanos();
    let drain_at = SimTime::from_nanos(t * 3 / 10);
    let crash_at = SimTime::from_nanos(t * 4 / 10);

    let report = batch
        .rescale_plan(RescalePlan::seeded(66).drain_host(HostId(1), drain_at))
        .fault_plan(FaultPlan::seeded(66).crash_host(HostId(3), crash_at))
        .run()
        .expect("drain + crash run");

    assert_eq!(report.ring.rescale_drains, 1, "the planned drain completes");
    assert_eq!(report.ring.membership_epoch, 1, "one epoch bump");
    assert_eq!(report.ring.heal_events, 1, "the crash heals exactly once");
    assert!(
        report.all_completed(),
        "the queued query is admitted onto the reshaped ring and completes"
    );
    assert_eq!(report.tenants.len(), 3);
    for (tenant, (r, s)) in report.tenants.iter().zip(&specs) {
        let reference = reference_join(r, s, &JoinPredicate::Equi);
        assert_eq!(tenant.count, reference.count, "tenant {}", tenant.tenant);
        assert_eq!(
            tenant.checksum, reference.checksum,
            "tenant {}",
            tenant.tenant
        );
    }
}
