//! End-to-end SQL: text → plan → revolutions → verified counts.

use cyclo_join::sql::{execute, parse, Catalog};
use cyclo_join::{reference_join, JoinPredicate};
use relation::GenSpec;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register("r", GenSpec::uniform(2_000, 1500).generate());
    c.register("s", GenSpec::zipf(2_000, 0.8, 1501).generate());
    c.register("t", GenSpec::uniform(2_000, 1502).generate());
    c
}

#[test]
fn sql_counts_agree_with_reference_joins() {
    let catalog = catalog();
    for (query, predicate) in [
        (
            "SELECT COUNT(*) FROM r JOIN s ON r.key = s.key",
            JoinPredicate::Equi,
        ),
        (
            "SELECT COUNT(*) FROM r JOIN s ON r.key = s.key WITHIN 3",
            JoinPredicate::band(3),
        ),
    ] {
        let plan = parse(query).expect("query should parse");
        let count = execute(&plan, &catalog, 4).expect("query should run");
        let reference = reference_join(
            catalog.get("r").unwrap(),
            catalog.get("s").unwrap(),
            &predicate,
        );
        assert_eq!(count, reference.count, "{query}");
    }
}

#[test]
fn sql_ring_size_does_not_change_the_count() {
    let catalog = catalog();
    let plan = parse("SELECT COUNT(*) FROM r JOIN s ON r.key = s.key").unwrap();
    let counts: Vec<u64> = [1usize, 3, 6]
        .iter()
        .map(|&hosts| execute(&plan, &catalog, hosts).expect("query should run"))
        .collect();
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
}

#[test]
fn three_way_sql_matches_a_manual_pipeline() {
    use cyclo_join::pipeline::JoinPipeline;
    use relation::Tuple;

    let catalog = catalog();
    let plan =
        parse("SELECT COUNT(*) FROM r JOIN s ON r.key = s.key JOIN t ON s.key = t.key").unwrap();
    let sql_count = execute(&plan, &catalog, 3).expect("query should run");

    let manual = JoinPipeline::new(catalog.get("r").unwrap().clone())
        .join(
            catalog.get("s").unwrap().clone(),
            JoinPredicate::Equi,
            |m| Tuple::new(m.s_key, m.s_payload),
        )
        .join(
            catalog.get("t").unwrap().clone(),
            JoinPredicate::Equi,
            |m| Tuple::new(m.s_key, m.s_payload),
        )
        .hosts(3)
        .run()
        .expect("pipeline should run");
    assert_eq!(sql_count, manual.match_count());
}
