//! End-to-end over the *wire format*: the thread-backend ring carries
//! actual serialized byte buffers (what a real RNIC would DMA), and every
//! host decodes, joins, and verifies integrity per hop.

use std::sync::Mutex;

use data_roundabout::{RingConfig, RingDriver};
use mem_joins::{Algorithm, JoinCollector, JoinPredicate};
use relation::{decode, encode, GenSpec, Relation};

#[test]
fn ring_of_serialized_buffers_produces_the_reference_join() {
    let hosts = 4;
    let r = GenSpec::uniform(2_000, 1100).generate();
    let s = GenSpec::uniform(2_000, 1101).generate();
    let reference = cyclo_join::reference_join(&r, &s, &JoinPredicate::Equi);

    // Stationary states per host, as cyclo-join would build them.
    let alg = Algorithm::partitioned_hash();
    let s_parts = s.split_even(hosts);
    let bits = alg.ring_radix_bits(s_parts.iter().map(Relation::len).max().unwrap_or(1));
    let states: Vec<_> = s_parts
        .iter()
        .map(|p| alg.setup_stationary(p, bits, 1))
        .collect();

    // The rotating fragments travel as encoded byte buffers.
    let fragments: Vec<Vec<Vec<u8>>> = r
        .split_even(hosts)
        .into_iter()
        .map(|share| share.split_even(3).iter().map(encode).collect())
        .collect();

    let collectors: Vec<Mutex<JoinCollector>> = (0..hosts)
        .map(|_| Mutex::new(JoinCollector::aggregating()))
        .collect();
    let (metrics, _) = RingDriver::new(&RingConfig::paper(hosts))
        .run(fragments, |host, bytes: &Vec<u8>| {
            // Every hop delivers a valid, uncorrupted wire buffer.
            let fragment = decode(bytes).expect("wire buffer must decode at every hop");
            let prepared = alg.prepare_fragment(&fragment, bits, 1);
            let mut collector = collectors[host.0].lock().expect("collector lock");
            alg.join(
                &states[host.0],
                &prepared,
                &JoinPredicate::Equi,
                1,
                &mut collector,
            );
        })
        .expect("ring should run");
    assert_eq!(metrics.fragments_completed, hosts * 3);

    let (count, checksum) =
        collectors
            .iter()
            .fold((0u64, relation::Checksum::new()), |(count, checksum), c| {
                let c = c.lock().expect("collector lock");
                (count + c.count(), checksum.combine(&c.checksum()))
            });
    assert_eq!(count, reference.count);
    assert_eq!(checksum, reference.checksum);
}

#[test]
fn wire_sizes_account_for_the_header() {
    let rel = GenSpec::uniform(1_000, 1110).generate();
    let bytes = encode(&rel);
    assert_eq!(bytes.len() as u64, rel.byte_volume() + 24);
}
