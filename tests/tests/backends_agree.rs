//! The simulated (virtual-time) and real-thread backends run the same
//! protocol; they must produce identical join results.

use cyclo_join::{Algorithm, CycloJoin, JoinPredicate, RingConfig};
use relation::GenSpec;

#[test]
fn backends_produce_identical_results() {
    for hosts in [1usize, 2, 4] {
        let r = GenSpec::uniform(2_000, 300).generate();
        let s = GenSpec::uniform(2_000, 301).generate();
        let plan = CycloJoin::new(r, s)
            .ring(RingConfig::paper(hosts).with_join_threads(1))
            .fragments_per_host(3);
        let sim = plan.run().expect("sim run");
        let threaded = plan.run_threaded().expect("threaded run");
        assert_eq!(sim.match_count(), threaded.match_count(), "hosts={hosts}");
        assert_eq!(sim.checksum(), threaded.checksum(), "hosts={hosts}");
    }
}

#[test]
fn backends_agree_for_sort_merge_band_joins() {
    let r = GenSpec::uniform(1_200, 310).generate();
    let s = GenSpec::uniform(1_200, 311).generate();
    let plan = CycloJoin::new(r, s)
        .algorithm(Algorithm::SortMerge)
        .predicate(JoinPredicate::band(3))
        .ring(RingConfig::paper(3).with_join_threads(2));
    let sim = plan.run().expect("sim run");
    let threaded = plan.run_threaded().expect("threaded run");
    assert_eq!(sim.match_count(), threaded.match_count());
    assert_eq!(sim.checksum(), threaded.checksum());
}

#[test]
fn threaded_backend_is_repeatable() {
    // Thread scheduling varies; the result must not.
    let mk = || {
        let r = GenSpec::zipf(800, 0.8, 320).generate();
        let s = GenSpec::zipf(800, 0.8, 321).generate();
        CycloJoin::new(r, s)
            .ring(RingConfig::paper(4).with_join_threads(1))
            .run_threaded()
            .expect("threaded run")
    };
    let first = mk();
    for _ in 0..3 {
        let again = mk();
        assert_eq!(first.match_count(), again.match_count());
        assert_eq!(first.checksum(), again.checksum());
    }
}
