//! Round trip through the observability layer: run a plan with tracing
//! enabled, export the Chrome trace-event JSON, parse it back with a
//! small hand-rolled JSON reader (the workspace vendors no JSON crate),
//! and reconcile the span totals against the run's `RingMetrics`.

use cyclo_join::{CycloJoin, CycloJoinReport, FaultPlan, HostId};
use relation::GenSpec;

/// A minimal JSON value — just enough to read a trace-event file.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Recursive-descent parser over the full input; rejects trailing junk.
fn parse_json(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at offset {pos}", byte as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, text: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(text.as_bytes()) {
        *pos += text.len();
        Ok(value)
    } else {
        Err(format!("bad literal at offset {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at offset {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = std::str::from_utf8(&bytes[*pos + 1..*pos + 5])
                            .map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the emitter writes multi-byte
                // characters raw).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("bad array separator {other:?}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            other => return Err(format!("bad object separator {other:?}")),
        }
    }
}

/// Exported `ts`/`dur` are microseconds; metrics are nanosecond-precise,
/// so sums agree to well under a microsecond per host.
const TOLERANCE_SECONDS: f64 = 1e-6;

fn close(label: &str, got_micros: f64, want_seconds: f64) {
    let got_seconds = got_micros / 1e6;
    assert!(
        (got_seconds - want_seconds).abs() < TOLERANCE_SECONDS,
        "{label}: trace says {got_seconds}s, metrics say {want_seconds}s"
    );
}

/// Parses the report's Chrome trace and reconciles every host's phase
/// totals and the run-wide counters against `report.ring`.
fn reconcile(report: &CycloJoinReport) {
    let text = report.chrome_trace();
    let root = parse_json(&text).expect("exported trace must be valid JSON");
    assert_eq!(
        root.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms"),
        "trace must carry the display unit hint"
    );
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("trace must hold a traceEvents array");
    assert!(!events.is_empty(), "a traced run must export events");

    // Sum complete-span durations per (host, category), in microseconds.
    let mut sums: std::collections::HashMap<(u64, String), f64> = std::collections::HashMap::new();
    let mut counters: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    for event in events {
        let ph = event.get("ph").and_then(Json::as_str).expect("ph");
        match ph {
            "X" => {
                let pid = event.get("pid").and_then(Json::as_f64).expect("pid") as u64;
                let cat = event.get("cat").and_then(Json::as_str).expect("cat");
                let ts = event.get("ts").and_then(Json::as_f64).expect("ts");
                let dur = event.get("dur").and_then(Json::as_f64).expect("dur");
                assert!(ts >= 0.0 && dur >= 0.0, "spans must have sane timestamps");
                *sums.entry((pid, cat.to_string())).or_default() += dur;
            }
            "C" => {
                let name = event.get("name").and_then(Json::as_str).expect("name");
                let value = event
                    .get("args")
                    .and_then(|a| a.get("value"))
                    .and_then(Json::as_f64)
                    .expect("counter value");
                counters.insert(name.to_string(), value);
            }
            "i" | "M" => {}
            other => panic!("unexpected event phase {other:?}"),
        }
    }

    let phase = |host: usize, cat: &str| -> f64 {
        sums.get(&(host as u64, cat.to_string()))
            .copied()
            .unwrap_or(0.0)
    };
    for (h, m) in report.ring.hosts.iter().enumerate() {
        close(
            &format!("host {h} setup"),
            phase(h, "setup"),
            m.setup.as_secs_f64(),
        );
        close(
            &format!("host {h} busy"),
            phase(h, "join") + phase(h, "absorb"),
            m.join_busy.as_secs_f64(),
        );
        close(
            &format!("host {h} sync"),
            phase(h, "sync"),
            m.sync.as_secs_f64(),
        );
    }

    assert_eq!(
        counters.get("fragments_retired").copied(),
        Some(report.ring.fragments_completed as f64),
        "retired-fragment counter must equal the metrics' completed count"
    );
    assert_eq!(
        counters.get("retransmits").copied(),
        Some(report.retransmits() as f64),
        "retransmit counter must equal the metrics' total"
    );
}

fn inputs(seed: u64) -> (relation::Relation, relation::Relation) {
    (
        GenSpec::uniform(3_000, seed).generate(),
        GenSpec::uniform(3_000, seed + 1).generate(),
    )
}

#[test]
fn simulated_backend_trace_reconciles_with_metrics() {
    let (r, s) = inputs(9300);
    let report = CycloJoin::new(r, s)
        .hosts(4)
        .trace(true)
        .run()
        .expect("plan should run");
    reconcile(&report);
    assert!(
        !report.revolution_summary().is_empty(),
        "a traced run must render a per-hop revolution summary"
    );
}

#[test]
fn threaded_backend_trace_reconciles_with_metrics() {
    let (r, s) = inputs(9400);
    let report = CycloJoin::new(r, s)
        .hosts(4)
        .trace(true)
        .run_threaded()
        .expect("plan should run");
    reconcile(&report);
}

#[test]
fn faulted_trace_reports_protocol_counters() {
    let (r, s) = inputs(9500);
    let report = CycloJoin::new(r, s)
        .hosts(4)
        .fault_plan(FaultPlan::seeded(7).lossy_link(HostId(1), 0.25))
        .trace(true)
        .run()
        .expect("faulted plan should still run");
    assert!(
        report.retransmits() > 0,
        "a lossy link must force retransmissions"
    );
    reconcile(&report);
}

#[test]
fn untraced_run_exports_an_empty_trace() {
    let (r, s) = inputs(9600);
    let report = CycloJoin::new(r, s)
        .hosts(3)
        .run()
        .expect("plan should run");
    let root = parse_json(&report.chrome_trace()).expect("even an empty trace is valid JSON");
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents");
    assert!(events.is_empty(), "tracing off must export no events");
}
