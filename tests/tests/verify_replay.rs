//! Replays the counterexample traces the model checker found against
//! the pre-fix protocol (pinned under `tests/fixtures/verify/`). Each
//! trace once ended in an invariant violation; since the fixes they
//! must replay to the end with every invariant holding — a regression
//! net over the exact interleavings that were broken.

use ring_verify::{configs, replay};

fn fixture(name: &str) -> String {
    let path = format!("{}/fixtures/verify/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

/// The dropped-attempt credit leak: `confirm_death` requeued a transfer
/// whose last attempt was dropped without releasing the receive slot it
/// had reserved at the live receiver.
#[test]
fn credit_leak_after_sender_death_stays_fixed() {
    let trace = fixture("credit_leak_symmetric3.trace");
    let out = replay(&configs::symmetric3(), &trace).expect("trace must stay enabled");
    assert_eq!(out.violation, None, "credit leak regressed");
}

/// The same leak through the drain-escalation path: a drain deadline
/// expiring into crash healing while the drainee's pass-through send
/// was dropped.
#[test]
fn credit_leak_after_drain_escalation_stays_fixed() {
    let trace = fixture("credit_leak_drain_escalation.trace");
    let out = replay(&configs::deep_drain(), &trace).expect("trace must stay enabled");
    assert_eq!(
        out.violation, None,
        "drain-escalation credit leak regressed"
    );
}

/// The accepted-transfer resurrection: healing treated an
/// accepted-but-unacked transfer whose spurious retransmission was
/// dropped as lost and revived the fragment into a second live copy.
#[test]
fn accepted_transfer_resurrection_stays_fixed() {
    let trace = fixture("resurrection_two_crash.trace");
    let out = replay(&configs::two_crash(), &trace).expect("trace must stay enabled");
    assert_eq!(out.violation, None, "fragment resurrection regressed");
}

/// The checker's own self-check, replayed through the public fixture
/// format: with the sabotage flag armed, the minimal trace must still
/// trip credit conservation at the first accepted delivery.
#[test]
fn sabotage_trace_still_detects_the_seeded_break() {
    let trace = "setup h0\nsetup h1\njoin h0 ! ok\ndeliver t1 f0 h1\n";
    let out = replay(&configs::sabotage(), trace).expect("trace must stay enabled");
    assert_eq!(out.violation, Some((3, "credit-conservation")));
}

/// A full clean revolution on the smoke ring replays end to end: the
/// fragment retires and both invariant sweeps stay quiet.
#[test]
fn smoke_completion_replays_clean() {
    let trace = "\
setup h0
setup h1
join h0 ! ok
deliver t1 f0 h1
ack t1 h0
join h1
";
    let out = replay(&configs::smoke(), trace).expect("trace must stay enabled");
    assert_eq!(out.violation, None);
    assert_eq!(out.world.proto.fragments_completed(), 1);
}
