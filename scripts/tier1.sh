#!/usr/bin/env bash
# Tier-1 verification: build, full test suite, a warning-free clippy
# pass over every target (benches, examples, tests included), a
# formatting check, and the repo-native lints (scripts/analyze.sh runs
# the deeper, slower static-analysis tier on top of these).
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release
cargo test -q
# Explicit gates on the sans-IO protocol core and its real-socket driver:
# direct proptests over the state machine and the TCP frame codec, the
# three-way (sim/thread/tcp) fault-counter parity test, and the chaos
# suite with its mid-revolution TCP connection sever. All are also part
# of `cargo test -q` above; named here so a failure is obvious. The TCP
# legs bind port 0 and handshake, so they never race on ports.
cargo test -q -p data-roundabout --test proptests --test parity
cargo test -q -p integration-tests --test chaos
# Elastic-membership gate: the protocol-direct join/drain/crash
# interleaving proptests, the seeded rescale schedule that must land on
# identical membership counters in all three worlds, and the
# crash-during-drain degradation ladder end to end.
cargo test -q -p data-roundabout --test proptests protocol_core_rescale
cargo test -q -p data-roundabout --test parity seeded_rescale_schedule_three_way_parity
cargo test -q -p integration-tests --test chaos crash_during_drain
cargo clippy --all-targets -- -D warnings
cargo fmt --check
cargo run -q --release -p xtask -- analyze
# Model-checker gate: exhaustive exploration of the 2-host/1-fragment/
# 1-crash bound over the sans-IO protocol core (all five invariant
# families), plus the seeded-sabotage self-check that must be *caught*
# with a minimal counterexample trace. The deep 3-host bounds run in
# scripts/analyze.sh.
cargo run -q --release -p xtask -- verify --smoke
# Bench-harness gates: the smoke suite must run clean end to end (every
# kernel/codec/e2e entry and every hot-path delta measured, JSON written
# and schema-validated), and the committed BENCH_*.json baselines must
# still parse against schema v1.
cargo run -q --release -p xtask -- bench --smoke
cargo run -q --release -p xtask -- bench --check
