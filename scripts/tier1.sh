#!/usr/bin/env bash
# Tier-1 verification: build, full test suite, a warning-free clippy
# pass over every target (benches, examples, tests included), a
# formatting check, and the repo-native lints (scripts/analyze.sh runs
# the deeper, slower static-analysis tier on top of these).
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release
cargo test -q
# Explicit gates on the sans-IO protocol core and its real-socket
# drivers: direct proptests over the state machine, the TCP frame codec
# and the timer wheel, the four-way (sim/thread/tcp/reactor)
# fault-counter parity test, and the chaos suite with its
# mid-revolution connection severs on both socket backends. All are
# also part of `cargo test -q` above; named here so a failure is
# obvious. The socket legs bind port 0 and handshake, so they never
# race on ports.
cargo test -q -p data-roundabout --test proptests --test parity
cargo test -q -p integration-tests --test chaos
# Elastic-membership gate: the protocol-direct join/drain/crash
# interleaving proptests, the seeded rescale schedule that must land on
# identical membership counters in all four worlds, and the
# crash-during-drain degradation ladder end to end.
cargo test -q -p data-roundabout --test proptests protocol_core_rescale
cargo test -q -p data-roundabout --test parity seeded_rescale_schedule_four_way_parity
cargo test -q -p integration-tests --test chaos crash_during_drain
# Reactor-driver gate: the event-loop backend's chaos legs — a
# connection sever healed mid-revolution and a crash during a planned
# drain — both of which exercise the timer wheel and the readiness
# loop's teardown paths under faults.
cargo test -q -p integration-tests --test chaos reactor_
# Multi-tenant gate: protocol-direct proptests over random interleavings
# of 2–4 concurrent queries (per-query credit partition, exactly-once
# join/delivery per (query, fragment), bounded fairness deficit), the
# seeded fault plan that must land on identical per-query
# retransmit/checksum/completion counters in all four worlds, and the
# chaos legs that crash a shared ring mid-revolution with two tenants
# aboard and during a drain while a third query waits in admission.
cargo test -q -p data-roundabout --test proptests protocol_core_multiplex
cargo test -q -p data-roundabout --test parity multi_tenant_fault_plan_four_way_parity
cargo test -q -p integration-tests --test chaos multi_tenant
cargo clippy --all-targets -- -D warnings
cargo fmt --check
cargo run -q --release -p xtask -- analyze
# Model-checker gate: exhaustive exploration of the 2-host/1-fragment/
# 1-crash bound over the sans-IO protocol core (all six invariant
# families), the 2-host/2-query multiplexed bound (per-query credit
# partition and exactly-once per (query, fragment), with the second
# query held in admission), plus the seeded-sabotage self-check that
# must be *caught* with a minimal counterexample trace. The deep 3-host
# bounds run in scripts/analyze.sh.
cargo run -q --release -p xtask -- verify --smoke
# Bench-harness gates: the smoke suite must run clean end to end (every
# kernel/codec/e2e entry and every hot-path delta measured, JSON written
# and schema-validated), and the committed BENCH_*.json baselines must
# still parse against schema v1.
cargo run -q --release -p xtask -- bench --smoke
cargo run -q --release -p xtask -- bench --check
