#!/usr/bin/env bash
# Tier-1 verification: build, full test suite, a warning-free clippy
# pass over every target (benches, examples, tests included), and a
# formatting check.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release
cargo test -q
cargo clippy --all-targets -- -D warnings
cargo fmt --check
