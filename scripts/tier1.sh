#!/usr/bin/env bash
# Tier-1 verification: build, full test suite, a warning-free clippy
# pass over every target (benches, examples, tests included), a
# formatting check, and the repo-native lints (scripts/analyze.sh runs
# the deeper, slower static-analysis tier on top of these).
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release
cargo test -q
# Explicit gates on the sans-IO protocol core: direct proptests over the
# state machine and the cross-backend fault-counter parity test (both are
# also part of `cargo test -q` above; named here so a failure is obvious).
cargo test -q -p data-roundabout --test proptests --test parity
cargo clippy --all-targets -- -D warnings
cargo fmt --check
cargo run -q --release -p xtask -- analyze
