#!/usr/bin/env bash
# Regenerates every paper exhibit (tables + figures) and the ablations.
# Output CSVs land in crates/bench/results/; stdout shows the tables.
set -euo pipefail
cd "$(dirname "$0")/.."
cargo build --release -p cyclo-bench
for bin in fig3_cpu_breakdown fig5_chunk_throughput fig7_hash_fixed \
           fig8_hash_scaleup fig9_skew fig10_smj_fixed fig11_smj_scaleup \
           fig12_rdma_vs_tcp table1_cpu_load \
           ablate_crossover ablate_setup_amortization ablate_buffer_depth \
           ablate_chunk_size ablate_rotation_choice ablate_shared_rotation ablate_disk_vs_ring ablate_radix_bits ablate_straggler \
           ablate_fault_recovery ablate_rescale ext_cyclotron \
           wide_ring_reactor multi_tenant; do
  echo
  echo "================================================================"
  echo "== $bin"
  echo "================================================================"
  "./target/release/$bin"
done

# Smoke-test the observability layer: one exhibit re-run with tracing,
# leaving a Chrome trace-event profile next to the CSVs.
echo
echo "================================================================"
echo "== traced exhibit (fig11_smj_scaleup --trace)"
echo "================================================================"
./target/release/fig11_smj_scaleup --trace crates/bench/results/fig11_trace.json
python3 - <<'EOF' 2>/dev/null || head -c 80 crates/bench/results/fig11_trace.json
import json
with open("crates/bench/results/fig11_trace.json") as f:
    trace = json.load(f)
print(f"[trace] valid JSON, {len(trace['traceEvents'])} events")
EOF
