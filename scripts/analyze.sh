#!/usr/bin/env bash
# Deep static-analysis tier: everything tier1.sh runs is assumed green;
# this script adds the slow, exhaustive checks on top.
#
#   1. repo-native lints   xtask's L1-L6 passes over the source tree
#   2. protocol verify     the explicit-state model checker's deep
#                          bounds: 3-host rings with a planned drain, a
#                          planned join, rotation symmetry, and a second
#                          crash (tier1.sh runs the 2-host smoke bound)
#   3. loom clippy         the `--cfg loom` configuration must be as
#                          warning-free as the default one
#   4. loom model checking exhaustive interleaving exploration of the
#                          ring hand-off (crates/roundabout/tests/loom_ring.rs)
#   5. miri                UB check on the byte-twiddling crates
#                          (skipped when the miri component is absent)
#   6. ThreadSanitizer     race check on the threaded backend
#                          (skipped when nightly rust-src is absent)
#
# Steps 5 and 6 are gated, not optional: they run whenever the toolchain
# can support them and only print SKIP when it cannot (e.g. an offline
# container without the rustup components). A gated step that *runs* and
# fails still fails the script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> [1/6] repo-native lints (xtask analyze)"
cargo run -q --release -p xtask -- analyze

echo "==> [2/6] protocol model checker, deep bounds (xtask verify)"
cargo run -q --release -p xtask -- verify --deep

echo "==> [3/6] clippy under --cfg loom"
# Separate target dir: --cfg loom changes what the whole dependency graph
# compiles to, and sharing ./target would thrash the incremental cache.
RUSTFLAGS="--cfg loom" CARGO_TARGET_DIR=target/loom \
    cargo clippy -p data-roundabout --tests -- -D warnings

echo "==> [4/6] loom model checking (exhaustive interleavings)"
RUSTFLAGS="--cfg loom" CARGO_TARGET_DIR=target/loom \
    cargo test -q -p data-roundabout --test loom_ring

echo "==> [5/6] miri (undefined-behavior check)"
if cargo +nightly miri --version >/dev/null 2>&1; then
    # The wire format and checksum code is where the unsafe-adjacent byte
    # manipulation lives; joins exercise the hashing and partitioning on
    # top of it. Proptest case counts are lowered because miri executes
    # roughly 100x slower than native.
    MIRIFLAGS="-Zmiri-strict-provenance" PROPTEST_CASES=8 \
        CARGO_TARGET_DIR=target/miri \
        cargo +nightly miri test -p relation -p joins
else
    echo "SKIP: miri component not installed for the nightly toolchain"
    echo "      (rustup component add --toolchain nightly miri)"
fi

echo "==> [6/6] ThreadSanitizer (data-race check)"
if rustup toolchain list 2>/dev/null | grep -q nightly \
    && rustup component list --toolchain nightly --installed 2>/dev/null | grep -q rust-src; then
    # -Zbuild-std rebuilds std with TSan instrumentation so the runtime
    # sees every synchronization edge, not just the ones in our crates.
    RUSTFLAGS="-Zsanitizer=thread" CARGO_TARGET_DIR=target/tsan \
        cargo +nightly test -Zbuild-std \
        --target x86_64-unknown-linux-gnu -p data-roundabout --lib
else
    echo "SKIP: nightly rust-src component not installed"
    echo "      (rustup component add --toolchain nightly rust-src)"
fi

echo "analyze: all checks passed (gated steps may have printed SKIP above)"
