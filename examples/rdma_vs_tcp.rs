//! RDMA vs software TCP on one workload (§V-G in miniature).
//!
//! Runs the same distributed hash join over the RDMA transport and over
//! kernel TCP, printing the join/sync breakdown and the CPU load. TCP
//! burns host CPU on payload copies and context switches, inflating the
//! join phase and preventing the transport from being hidden.
//!
//! ```text
//! cargo run --release -p cyclo-join --example rdma_vs_tcp
//! ```

use cyclo_join::{CycloJoin, PlanError, RingConfig, RotateSide};
use relation::GenSpec;

fn main() -> Result<(), PlanError> {
    let tuples = 150_000;
    println!("transport | threads | join [s] | sync [s] | cpu load");
    println!("----------+---------+----------+----------+---------");
    for threads in 1..=4 {
        for config in [
            RingConfig::paper(6).with_join_threads(threads),
            RingConfig::paper_tcp(6).with_join_threads(threads),
        ] {
            let r = GenSpec::uniform(tuples, 41).generate();
            let s = GenSpec::uniform(tuples, 42).generate();
            let report = CycloJoin::new(r, s)
                .ring(config)
                .rotate(RotateSide::R)
                .run()?;
            println!(
                "{:>9} | {threads:>7} | {:8.3} | {:8.3} | {:6.0}%",
                report.transport,
                report.join_seconds(),
                report.sync_seconds(),
                report.join_phase_cpu_load() * 100.0,
            );
        }
    }
    println!("\nRDMA keeps the join phase shorter at every thread count (Figure 12),");
    println!("and only RDMA reaches full CPU utilization at 4 threads (Table I).");
    Ok(())
}
