//! Ring elasticity: growing, shrinking and surviving host loss (§II-C).
//!
//! The Data Roundabout carries no workload-specific placement, so ring
//! membership changes are pure repartitioning. This example runs a join,
//! "fails" a host and absorbs its share into the successor, re-runs on
//! the smaller ring, then grows the ring and runs again — the result is
//! identical every time.
//!
//! ```text
//! cargo run --release -p cyclo-join --example elastic_ring
//! ```

use cyclo_join::{absorb_host, rebalance, reference_join, CycloJoin, JoinPredicate, PlanError};
use relation::{GenSpec, Relation};

fn run_on(hosts: usize, r: &Relation, s: &Relation) -> Result<(u64, f64), PlanError> {
    let report = CycloJoin::new(r.clone(), s.clone()).hosts(hosts).run()?;
    Ok((report.match_count(), report.total_seconds()))
}

fn main() -> Result<(), PlanError> {
    let r = GenSpec::uniform(120_000, 51).generate();
    let s = GenSpec::uniform(120_000, 52).generate();
    let reference = reference_join(&r, &s, &JoinPredicate::Equi);

    // 1. Normal operation on six hosts.
    let (count6, t6) = run_on(6, &r, &s)?;
    println!("6 hosts:            {count6} matches in {t6:.3}s");

    // 2. Host 3 fails: its stationary share is absorbed by its successor,
    //    and the join re-runs on the surviving five hosts.
    let parts = s.split_even(6);
    let survivors = absorb_host(parts, 3).expect("host 3 exists in a six-host ring");
    let s_after_failure: Relation = {
        let mut merged = Relation::new();
        for p in &survivors {
            merged.extend_from(p);
        }
        merged
    };
    let (count5, t5) = run_on(5, &r, &s_after_failure)?;
    println!("5 hosts (1 failed): {count5} matches in {t5:.3}s");

    // 3. Demand grows: rebalance onto nine hosts and run again.
    let rebalanced = rebalance(&survivors, 9).expect("nine hosts is a valid ring size");
    assert_eq!(rebalanced.len(), 9);
    let (count9, t9) = run_on(9, &r, &s)?;
    println!("9 hosts (grown):    {count9} matches in {t9:.3}s");

    for count in [count6, count5, count9] {
        assert_eq!(
            count, reference.count,
            "membership change altered the result"
        );
    }
    println!("\nall three ring sizes produced the identical, verified join result");
    Ok(())
}
