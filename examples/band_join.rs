//! Band join on the ring: cyclo-join beyond equality predicates.
//!
//! Cyclo-join poses no restriction on the join predicate (§IV-A); the
//! sort-merge implementation handles band joins natively. This example
//! joins sensor-style readings whose keys must match within a tolerance
//! of ±2, and checks the distributed result against a reference join.
//!
//! ```text
//! cargo run --release -p cyclo-join --example band_join
//! ```

use cyclo_join::{reference_join, Algorithm, CycloJoin, JoinPredicate, PlanError};
use relation::GenSpec;

fn main() -> Result<(), PlanError> {
    // Two streams of 80k readings over a shared key domain.
    let readings_a = GenSpec::uniform(80_000, 21).generate();
    let readings_b = GenSpec::uniform(80_000, 22).generate();
    let predicate = JoinPredicate::band(2);

    let reference = reference_join(&readings_a, &readings_b, &predicate);

    let report = CycloJoin::new(readings_a, readings_b)
        .predicate(predicate)
        .algorithm(Algorithm::SortMerge)
        .hosts(4)
        .run()?;

    println!("{}", report.render());
    assert_eq!(report.algorithm, "sort-merge");
    assert_eq!(report.match_count(), reference.count);
    assert_eq!(report.checksum(), reference.checksum);
    println!(
        "verified: band join |r.key - s.key| <= 2 found {} matching pairs",
        reference.count
    );
    Ok(())
}
