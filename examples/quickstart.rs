//! Quickstart: a distributed equi-join on a six-host RDMA ring.
//!
//! Generates two relations in the paper's 12-byte-tuple format, runs
//! cyclo-join on the simulated Data Roundabout, verifies the distributed
//! result against a single-host reference join, and prints the phase
//! breakdown.
//!
//! ```text
//! cargo run --release -p cyclo-join --example quickstart
//! ```

use cyclo_join::{reference_join, CycloJoin, JoinPredicate, PlanError};
use relation::GenSpec;

fn main() -> Result<(), PlanError> {
    // 200k tuples per side (≈ 2 × 2.4 MB), uniform 4-byte join keys.
    let r = GenSpec::uniform(200_000, 1).generate();
    let s = GenSpec::uniform(200_000, 2).generate();
    println!(
        "inputs: |R| = {} tuples ({} B), |S| = {} tuples ({} B)",
        r.len(),
        r.byte_volume(),
        s.len(),
        s.byte_volume()
    );

    // Keep copies for verification; the plan consumes its inputs.
    let reference = reference_join(&r, &s, &JoinPredicate::Equi);

    let report = CycloJoin::new(r, s).hosts(6).run()?;
    println!("\n{}", report.render());

    assert_eq!(
        report.match_count(),
        reference.count,
        "match count mismatch"
    );
    assert_eq!(report.checksum(), reference.checksum, "checksum mismatch");
    println!(
        "verified: distributed result equals the single-host reference ({} matches)",
        reference.count
    );
    Ok(())
}
