//! Shared rotation: several queries riding one revolution (Data Cyclotron).
//!
//! The broader vision behind cyclo-join (§I, §VII) keeps the hot set
//! circulating continuously while queries stay local and pick data as it
//! flows by. Here three independent joins against the same hot relation
//! run in a *single* revolution, then the same three run sequentially —
//! same verified results, one third of the network traffic.
//!
//! ```text
//! cargo run --release -p cyclo-join --example shared_rotation
//! ```

use cyclo_join::concurrent::ConcurrentJoins;
use cyclo_join::{reference_join, CycloJoin, JoinPredicate, PlanError, RotateSide};
use relation::GenSpec;

fn main() -> Result<(), PlanError> {
    let hot = GenSpec::uniform(120_000, 71).generate();
    let customers = GenSpec::uniform(40_000, 72).generate();
    let suppliers = GenSpec::uniform(40_000, 73).generate();
    let sensors = GenSpec::uniform(40_000, 74).generate();

    // One revolution, three queries (the third is a band join).
    let batch = ConcurrentJoins::new(hot.clone())
        .query(customers.clone(), JoinPredicate::Equi)
        .query(suppliers.clone(), JoinPredicate::Equi)
        .query(sensors.clone(), JoinPredicate::band(1))
        .hosts(6)
        .run()?;

    println!("shared rotation (1 revolution, 3 queries):");
    for (i, q) in batch.queries.iter().enumerate() {
        println!("  query {i}: {} matches via {}", q.count, q.algorithm);
    }
    println!(
        "  total {:.3}s, {} MB forwarded over ring links",
        batch.total_seconds(),
        batch.bytes_forwarded() >> 20
    );

    // Verify each query against its reference.
    for (q, (s, pred)) in batch.queries.iter().zip([
        (&customers, JoinPredicate::Equi),
        (&suppliers, JoinPredicate::Equi),
        (&sensors, JoinPredicate::band(1)),
    ]) {
        let reference = reference_join(&hot, s, &pred);
        assert_eq!(q.count, reference.count);
        assert_eq!(q.checksum, reference.checksum);
    }

    // The sequential alternative: three separate revolutions of the same
    // hot relation.
    let mut seq_seconds = 0.0;
    let mut seq_bytes = 0u64;
    for (s, pred) in [
        (&customers, JoinPredicate::Equi),
        (&suppliers, JoinPredicate::Equi),
        (&sensors, JoinPredicate::band(1)),
    ] {
        let report = CycloJoin::new(hot.clone(), s.clone())
            .predicate(pred)
            .hosts(6)
            .rotate(RotateSide::R)
            .run()?;
        seq_seconds += report.total_seconds();
        seq_bytes += report.ring.total_bytes_forwarded();
    }
    println!(
        "\nsequential (3 revolutions): {seq_seconds:.3}s, {} MB forwarded",
        seq_bytes >> 20
    );
    println!(
        "\nshared rotation moved {:.1}× less data over the network",
        seq_bytes as f64 / batch.bytes_forwarded() as f64
    );
    Ok(())
}
