//! SQL on the ring: the paper's "complete SQL-enabled system" goal (§VII),
//! in miniature — counting join queries parsed from SQL text and executed
//! as cyclo-join revolutions.
//!
//! ```text
//! cargo run --release -p cyclo-join --example sql_count
//! ```

use cyclo_join::sql::{execute, parse, Catalog};
use relation::GenSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut catalog = Catalog::new();
    catalog.register("orders", GenSpec::uniform(80_000, 91).generate());
    catalog.register("customers", GenSpec::uniform(80_000, 92).generate());
    catalog.register("regions", GenSpec::uniform(80_000, 93).generate());

    for query_text in [
        "SELECT COUNT(*) FROM orders JOIN customers ON orders.key = customers.key",
        "SELECT COUNT(*) FROM orders JOIN customers ON orders.key = customers.key WITHIN 1",
        "SELECT COUNT(*) FROM orders \
         JOIN customers ON orders.key = customers.key \
         JOIN regions ON customers.key = regions.key",
    ] {
        let query = parse(query_text)?;
        let count = execute(&query, &catalog, 6)?;
        println!("{query_text}\n  → {count} rows\n");
    }

    // Errors are first-class: bad grammar and unknown relations both
    // explain themselves.
    let err = parse("SELECT COUNT(*) FROM orders").unwrap_err();
    println!("as expected, a join-less query is rejected: {err}");
    Ok(())
}
