//! Skew resilience: the Figure 9 effect at example scale.
//!
//! Sweeps the Zipf factor of the join keys and compares the join-phase
//! time of a single host against a six-host cyclo-join ring. Under heavy
//! skew, hash chains degenerate locally, while distribution keeps each
//! host's partitions (and chains) cache-sized — cyclo-join degrades far
//! more gracefully.
//!
//! ```text
//! cargo run --release -p cyclo-join --example skew_resilience
//! ```

use cyclo_join::{CycloJoin, PlanError, RotateSide};
use relation::GenSpec;

fn main() -> Result<(), PlanError> {
    let tuples = 60_000;
    println!("zipf z | local join [s] | 6-host join [s] | speedup");
    println!("-------+----------------+-----------------+--------");
    for z in [0.0, 0.3, 0.5, 0.6, 0.7, 0.8, 0.9] {
        let gen = |seed| GenSpec::zipf(tuples, z, seed).generate();
        let run = |hosts: usize| -> Result<f64, PlanError> {
            Ok(CycloJoin::new(gen(10), gen(11))
                .hosts(hosts)
                .rotate(RotateSide::R)
                .run()?
                .join_seconds())
        };
        let local = run(1)?;
        let ring = run(6)?;
        println!(
            "  {z:.2} | {local:14.3} | {ring:15.3} | {:6.2}×",
            local / ring.max(1e-9)
        );
    }
    println!("\nAs in the paper's Figure 9, the advantage grows with the skew.");
    Ok(())
}
