//! Ternary join: `(R ⋈ S) ⋈ T` via two cyclo-join revolutions (§IV-A).
//!
//! The first revolution leaves `R ⋈ S` as a distributed table; a
//! projection of it becomes the rotating input of the second revolution.
//! No data leaves the ring's distributed memory in between.
//!
//! ```text
//! cargo run --release -p cyclo-join --example ternary_join
//! ```

use cyclo_join::{PlanError, TernaryJoin};
use relation::{GenSpec, Tuple};

fn main() -> Result<(), PlanError> {
    // orders ⋈ customers on customer key, then ⋈ regions on region key
    // (the region id travels in the customer payload's low bits).
    let orders = GenSpec::uniform(30_000, 31).generate();
    let customers = GenSpec::uniform(30_000, 32).generate();
    let regions = GenSpec::uniform(30_000, 33).generate();

    let report = TernaryJoin::new(orders, customers, regions)
        .hosts(4)
        // Re-key the intermediate on the customer payload's low 32 bits.
        .run(|m| Tuple::new(m.s_payload as u32 % 30_000, m.r_payload))?;

    println!("first revolution:  {}", report.first.summary());
    println!("second revolution: {}", report.second.summary());
    println!(
        "ternary result: {} matches in {:.3}s across both revolutions",
        report.match_count(),
        report.total_seconds()
    );
    Ok(())
}
