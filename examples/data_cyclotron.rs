//! The Data Cyclotron: ad-hoc queries boarding a continuously spinning
//! hot set (§I, §VII — the project the paper belongs to).
//!
//! The hot relation rotates without stopping; queries arrive over time at
//! different hosts, build their local state, join every fragment that
//! flows by, and complete after seeing the whole hot set — one revolution
//! from wherever they boarded.
//!
//! ```text
//! cargo run --release -p cyclo-join --example data_cyclotron
//! ```

use cyclo_join::cyclotron::{DataCyclotron, QueryArrival};
use cyclo_join::{reference_join, JoinPredicate, PlanError};
use data_roundabout::HostId;
use relation::GenSpec;
use simnet::time::SimDuration;

fn main() -> Result<(), PlanError> {
    let hot = GenSpec::uniform(300_000, 81).generate();
    println!(
        "hot set: {} tuples ({} MB) spinning on 6 hosts\n",
        hot.len(),
        hot.byte_volume() >> 20
    );

    // Five queries arriving over the first 40 virtual milliseconds at
    // different home hosts.
    let mut cyclotron = DataCyclotron::new(hot.clone()).hosts(6);
    let mut stationaries = Vec::new();
    for i in 0..5u64 {
        let s = GenSpec::uniform(60_000, 82 + i).generate();
        stationaries.push(s.clone());
        cyclotron = cyclotron.submit(QueryArrival::equi(
            SimDuration::from_millis(i * 10),
            HostId((i as usize) % 6),
            s,
        ));
    }

    let report = cyclotron.run()?;
    println!("query  arrived [s]  completed [s]  latency [s]  matches");
    for (i, q) in report.queries.iter().enumerate() {
        println!(
            "{i:>5}  {:>11.3}  {:>13.3}  {:>11.3}  {:>7}",
            q.arrived.as_secs_f64(),
            q.completed.as_secs_f64(),
            q.latency.as_secs_f64(),
            q.count
        );
    }
    println!(
        "\nrotation ran {:.3}s over {} fragments; mean latency {:.3}s",
        report.ring.wall_clock.as_secs_f64(),
        report.fragment_count,
        report.mean_latency()
    );

    for (q, s) in report.queries.iter().zip(&stationaries) {
        let reference = reference_join(&hot, s, &JoinPredicate::Equi);
        assert_eq!(q.count, reference.count);
        assert_eq!(q.checksum, reference.checksum);
    }
    println!("verified: every query's result equals its single-host reference join");
    Ok(())
}
