//! Property-based tests of the storage and generation substrate.

use proptest::prelude::*;
use relation::{
    hash_partition, partition_of, relation_checksum, Checksum, GenSpec, MatchPair, Relation, Tuple,
    Zipf,
};

fn relation_strategy() -> impl Strategy<Value = Relation> {
    prop::collection::vec((any::<u32>(), any::<u64>()), 0..400).prop_map(Relation::from_pairs)
}

proptest! {
    /// split_even conserves the relation: concatenation reproduces it
    /// exactly (order included), sizes differ by at most one.
    #[test]
    fn split_even_conserves(rel in relation_strategy(), parts in 1usize..12) {
        let pieces = rel.split_even(parts);
        prop_assert_eq!(pieces.len(), parts);
        let mut merged = Relation::new();
        for p in &pieces {
            merged.extend_from(p);
        }
        prop_assert_eq!(&merged, &rel);
        let max = pieces.iter().map(Relation::len).max().unwrap_or(0);
        let min = pieces.iter().map(Relation::len).min().unwrap_or(0);
        prop_assert!(max - min <= 1);
    }

    /// Hash partitioning conserves the multiset and keeps equal keys
    /// together.
    #[test]
    fn hash_partition_conserves(rel in relation_strategy(), parts in 1usize..8) {
        let pieces = hash_partition(&rel, parts);
        let total: usize = pieces.iter().map(Relation::len).sum();
        prop_assert_eq!(total, rel.len());
        let mut merged = Relation::new();
        for p in &pieces {
            merged.extend_from(p);
        }
        prop_assert_eq!(relation_checksum(&merged), relation_checksum(&rel));
        for (i, p) in pieces.iter().enumerate() {
            for &k in p.keys() {
                prop_assert_eq!(partition_of(k, parts), i);
            }
        }
    }

    /// Sorting preserves the multiset and orders keys.
    #[test]
    fn sort_preserves_multiset(rel in relation_strategy()) {
        let mut sorted = rel.clone();
        sorted.sort_by_key();
        prop_assert!(sorted.is_sorted_by_key());
        prop_assert_eq!(relation_checksum(&sorted), relation_checksum(&rel));
        prop_assert_eq!(sorted.len(), rel.len());
    }

    /// The checksum is order-independent and partition-independent.
    #[test]
    fn checksum_is_commutative(
        pairs in prop::collection::vec((any::<u32>(), any::<u64>(), any::<u64>()), 0..100),
        split in 0usize..100,
    ) {
        let matches: Vec<MatchPair> = pairs
            .iter()
            .map(|&(k, rp, sp)| MatchPair::new(Tuple::new(k, rp), Tuple::new(k, sp)))
            .collect();
        let whole: Checksum = matches.iter().copied().collect();
        let cut = split.min(matches.len());
        let left: Checksum = matches[..cut].iter().copied().collect();
        let right: Checksum = matches[cut..].iter().copied().collect();
        prop_assert_eq!(left.combine(&right), whole);
        let mut reversed = matches.clone();
        reversed.reverse();
        let rev: Checksum = reversed.into_iter().collect();
        prop_assert_eq!(rev, whole);
    }

    /// Generators are deterministic and produce the requested cardinality.
    #[test]
    fn generators_are_deterministic(tuples in 0usize..2_000, seed in any::<u64>(), z in 0.0f64..1.2) {
        let a = GenSpec::zipf(tuples, z, seed).generate();
        let b = GenSpec::zipf(tuples, z, seed).generate();
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), tuples);
        prop_assert_eq!(a.byte_volume(), tuples as u64 * 12);
    }

    /// Zipf samples always land in the domain.
    #[test]
    fn zipf_stays_in_domain(n in 1u64..100_000, z in 0.0f64..2.0, seed in any::<u64>()) {
        use rand::SeedableRng;
        let zipf = Zipf::new(n, z);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let k = zipf.sample(&mut rng);
            prop_assert!((1..=n).contains(&k));
        }
    }

    /// Wire decoding is total: arbitrary byte mutations of a valid encoded
    /// envelope (corruption, truncation, extension) either decode or
    /// return a `DecodeError` — they never panic. Runs under Miri in
    /// `scripts/analyze.sh` to also rule out UB in the byte handling.
    #[test]
    fn decode_survives_arbitrary_mutations(
        rel in relation_strategy(),
        flips in prop::collection::vec((any::<u32>(), any::<u8>()), 1..16),
        cut in any::<u32>(),
        extend in 0usize..64,
    ) {
        let mut bytes = relation::encode(&rel);
        for &(pos, xor) in &flips {
            if bytes.is_empty() {
                break;
            }
            let idx = pos as usize % bytes.len();
            bytes[idx] ^= xor;
        }
        match cut as usize % 3 {
            0 => {
                let keep = cut as usize % (bytes.len() + 1);
                bytes.truncate(keep);
            }
            1 => bytes.extend(std::iter::repeat_n(0x5A, extend)),
            _ => {}
        }
        // Any outcome is fine; panicking (or UB under Miri) is not.
        if let Ok(decoded) = relation::decode(&bytes) {
            // If it decoded, the checksum held: re-encoding must agree.
            prop_assert_eq!(relation::encode(&decoded), bytes);
        }
    }

    /// Slicing then merging reproduces any contiguous segmentation.
    #[test]
    fn slice_round_trip(rel in relation_strategy(), at in 0usize..400) {
        let cut = at.min(rel.len());
        let left = rel.slice(0, cut);
        let right = rel.slice(cut, rel.len());
        let mut merged = left.clone();
        merged.extend_from(&right);
        prop_assert_eq!(merged, rel);
    }
}
