//! Wire format: relations as flat byte buffers.
//!
//! A real Data Roundabout DMAs ring-buffer elements directly out of and
//! into registered memory, so the rotating unit must have a defined flat
//! layout. This module provides it: a fixed header (magic, version, tuple
//! count, integrity checksum) followed by the key column and the payload
//! column, all little-endian. The in-process backends move owned
//! structures for speed, but the format keeps the system honest — and
//! testable — about what would actually cross the network.
//!
//! Layout:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "CYCJ"
//! 4       4     version (1)
//! 8       8     tuple count n
//! 16      8     checksum over both columns
//! 24      4·n   keys   (u32 LE)
//! 24+4n   8·n   payloads (u64 LE)
//! ```

use crate::relation::Relation;
use crate::tuple::{Key, Payload};

/// First bytes of every encoded relation.
pub const MAGIC: [u8; 4] = *b"CYCJ";
/// Current format version.
pub const VERSION: u32 = 1;
/// Header size in bytes.
pub const HEADER_BYTES: usize = 24;

/// Errors decoding a wire buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer shorter than a header.
    TooShort,
    /// Magic bytes did not match.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// Buffer length inconsistent with the declared tuple count.
    LengthMismatch {
        /// Bytes the declared tuple count requires.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// Integrity checksum mismatch (corrupted transfer).
    ChecksumMismatch,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::TooShort => write!(f, "buffer shorter than the wire header"),
            DecodeError::BadMagic => write!(f, "bad magic bytes (not a relation buffer)"),
            DecodeError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            DecodeError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "length mismatch: header implies {expected} bytes, got {actual}"
                )
            }
            DecodeError::ChecksumMismatch => write!(f, "checksum mismatch: buffer corrupted"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encoded size of a relation with `tuples` rows.
pub const fn encoded_len(tuples: usize) -> usize {
    HEADER_BYTES + tuples * 12
}

/// Serializes `rel` into a fresh buffer.
pub fn encode(rel: &Relation) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_len(rel.len()));
    encode_into(rel, &mut out);
    out
}

/// Serializes `rel` by appending exactly [`encoded_len`]`(rel.len())`
/// bytes to `out` — the allocation-free form of [`encode`] for callers
/// that assemble a larger frame (an envelope, a tagged payload) around
/// the relation bytes.
pub fn encode_into(rel: &Relation, out: &mut Vec<u8>) {
    let n = rel.len();
    out.reserve(encoded_len(n));
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&column_checksum(rel).to_le_bytes());
    for &k in rel.keys() {
        out.extend_from_slice(&k.to_le_bytes());
    }
    for &p in rel.payloads() {
        out.extend_from_slice(&p.to_le_bytes());
    }
}

/// Deserializes a buffer produced by [`encode`].
///
/// # Errors
///
/// Returns a [`DecodeError`] for truncated, foreign, versioned-ahead or
/// corrupted buffers.
pub fn decode(bytes: &[u8]) -> Result<Relation, DecodeError> {
    if bytes.len() < HEADER_BYTES {
        return Err(DecodeError::TooShort);
    }
    if bytes.get(0..4) != Some(MAGIC.as_slice()) {
        return Err(DecodeError::BadMagic);
    }
    let version = u32::from_le_bytes(le_bytes(bytes, 4)?);
    if version != VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let declared = u64::from_le_bytes(le_bytes(bytes, 8)?);
    // The header's count is attacker/fault-controlled: validate it against
    // the buffer length in wide arithmetic *before* converting to `usize`,
    // so a corrupt count can neither overflow `encoded_len` nor drive an
    // enormous allocation.
    let expected_wide = HEADER_BYTES as u128 + declared as u128 * 12;
    if bytes.len() as u128 != expected_wide {
        return Err(DecodeError::LengthMismatch {
            expected: usize::try_from(expected_wide).unwrap_or(usize::MAX),
            actual: bytes.len(),
        });
    }
    let n = declared as usize;
    let declared_checksum = u64::from_le_bytes(le_bytes(bytes, 16)?);

    let keys_end = HEADER_BYTES.checked_add(n.checked_mul(4).ok_or(DecodeError::TooShort)?);
    let key_bytes = keys_end
        .and_then(|end| bytes.get(HEADER_BYTES..end))
        .ok_or(DecodeError::TooShort)?;
    let payload_bytes = keys_end
        .and_then(|end| bytes.get(end..))
        .ok_or(DecodeError::TooShort)?;
    let mut keys: Vec<Key> = Vec::with_capacity(n);
    for chunk in key_bytes.chunks_exact(4) {
        keys.push(u32::from_le_bytes(le_bytes(chunk, 0)?));
    }
    let mut payloads: Vec<Payload> = Vec::with_capacity(n);
    for chunk in payload_bytes.chunks_exact(8) {
        payloads.push(u64::from_le_bytes(le_bytes(chunk, 0)?));
    }
    let rel = Relation::from_columns(keys.into(), payloads.into());
    if column_checksum(&rel) != declared_checksum {
        return Err(DecodeError::ChecksumMismatch);
    }
    Ok(rel)
}

/// Reads `N` little-endian bytes at `offset` with fully checked bounds.
/// Infallible on the paths `decode` reaches after its length validation,
/// but kept checked so a future layout change cannot quietly reintroduce a
/// panic path — the lint suite (`xtask analyze`) holds this file to zero
/// panicking operations.
fn le_bytes<const N: usize>(bytes: &[u8], offset: usize) -> Result<[u8; N], DecodeError> {
    let end = offset.checked_add(N).ok_or(DecodeError::TooShort)?;
    bytes
        .get(offset..end)
        .and_then(|s| s.try_into().ok())
        .ok_or(DecodeError::TooShort)
}

/// Order-*dependent* integrity checksum over both columns (FNV-1a style);
/// unlike the order-independent result checksums, a transfer must preserve
/// tuple order exactly.
fn column_checksum(rel: &Relation) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for t in rel.iter() {
        h ^= t.key as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
        h ^= t.payload;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GenSpec;
    use crate::relation::Relation;

    #[test]
    fn round_trip_preserves_everything() {
        for tuples in [0usize, 1, 7, 1000] {
            let rel = GenSpec::uniform(tuples, 42).generate();
            let bytes = encode(&rel);
            assert_eq!(bytes.len(), encoded_len(tuples));
            let back = decode(&bytes).expect("decode should succeed");
            assert_eq!(back, rel);
        }
    }

    #[test]
    fn truncated_buffers_are_rejected() {
        let rel = GenSpec::uniform(100, 1).generate();
        let bytes = encode(&rel);
        assert_eq!(decode(&bytes[..10]), Err(DecodeError::TooShort));
        assert!(matches!(
            decode(&bytes[..bytes.len() - 4]),
            Err(DecodeError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn foreign_buffers_are_rejected() {
        let mut bytes = encode(&GenSpec::uniform(10, 2).generate());
        bytes[0] = b'X';
        assert_eq!(decode(&bytes), Err(DecodeError::BadMagic));
    }

    #[test]
    fn future_versions_are_rejected() {
        let mut bytes = encode(&GenSpec::uniform(10, 3).generate());
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(decode(&bytes), Err(DecodeError::BadVersion(99)));
    }

    #[test]
    fn corruption_is_detected() {
        let rel = GenSpec::uniform(500, 4).generate();
        let mut bytes = encode(&rel);
        // Flip one payload bit deep in the buffer.
        let idx = bytes.len() - 3;
        bytes[idx] ^= 0x01;
        assert_eq!(decode(&bytes), Err(DecodeError::ChecksumMismatch));
    }

    /// Regression: a corrupt header could declare a huge tuple count whose
    /// `encoded_len` overflowed `usize` (debug: arithmetic panic; release:
    /// wraparound defeating the length check). Decode must reject it.
    #[test]
    fn adversarial_tuple_counts_are_rejected_without_panicking() {
        let rel = GenSpec::uniform(8, 7).generate();
        let template = encode(&rel);
        for count in [
            u64::MAX,
            u64::MAX / 12,
            (usize::MAX / 12) as u64,
            (usize::MAX / 12) as u64 + 1,
            u64::MAX - HEADER_BYTES as u64,
            1u64 << 60,
        ] {
            let mut bytes = template.clone();
            bytes[8..16].copy_from_slice(&count.to_le_bytes());
            assert!(
                matches!(decode(&bytes), Err(DecodeError::LengthMismatch { .. })),
                "count {count} must be rejected as a length mismatch"
            );
        }
    }

    /// Fuzz: arbitrary header corruption must yield `Err`, never a panic.
    #[test]
    fn corrupt_headers_never_panic() {
        let rel = GenSpec::uniform(32, 9).generate();
        let template = encode(&rel);
        // Deterministic LCG so failures reproduce.
        let mut state: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..2_000 {
            let mut bytes = template.clone();
            // Corrupt 1–4 bytes anywhere in the header.
            for _ in 0..(next() % 4 + 1) {
                let pos = (next() % HEADER_BYTES as u64) as usize;
                bytes[pos] ^= (next() % 255 + 1) as u8;
            }
            // Occasionally truncate or extend the buffer too.
            match next() % 4 {
                0 => {
                    let keep = (next() % (bytes.len() as u64 + 1)) as usize;
                    bytes.truncate(keep);
                }
                1 => bytes.extend(std::iter::repeat_n(0xAB, (next() % 32) as usize)),
                _ => {}
            }
            // Must return (Ok for the rare untouched mutation, Err otherwise)
            // without panicking or aborting on allocation.
            let _ = decode(&bytes);
        }
    }

    #[test]
    fn encode_into_appends_without_clearing() {
        let rel = GenSpec::uniform(50, 6).generate();
        let mut out = vec![0xEE, 0xFF];
        encode_into(&rel, &mut out);
        assert_eq!(&out[..2], &[0xEE, 0xFF]);
        assert_eq!(&out[2..], encode(&rel).as_slice());
    }

    #[test]
    fn order_matters_for_the_wire_checksum() {
        let a = Relation::from_pairs([(1, 10), (2, 20)]);
        let b = Relation::from_pairs([(2, 20), (1, 10)]);
        assert_ne!(encode(&a), encode(&b));
    }
}
