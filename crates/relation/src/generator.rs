//! Reproducible workload generators for the paper's experiments.
//!
//! All generators are seeded and deterministic: the same [`GenSpec`]
//! produces the same relation on every run, so experiments and tests are
//! exactly repeatable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::relation::Relation;
use crate::tuple::{Key, Tuple, TUPLE_BYTES};
use crate::zipf::Zipf;

/// Distribution of join keys in a generated relation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KeyDistribution {
    /// Keys drawn uniformly from `0 .. domain`.
    Uniform {
        /// Exclusive upper bound of the key domain.
        domain: Key,
    },
    /// Keys drawn from a Zipf distribution over `domain` ranks.
    ///
    /// Rank `k` (1-based) is mapped to key `k - 1`, so the hottest key is 0.
    Zipf {
        /// Number of distinct ranks.
        domain: Key,
        /// The Zipf factor `z` (`0` = uniform, paper sweeps up to `0.9`).
        z: f64,
    },
    /// Key `i` for tuple `i` (every key unique, sorted ascending).
    Sequential,
}

/// Full specification of a generated relation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenSpec {
    /// Number of tuples to generate.
    pub tuples: usize,
    /// Join-key distribution.
    pub distribution: KeyDistribution,
    /// RNG seed.
    pub seed: u64,
}

impl GenSpec {
    /// A uniform workload in the paper's style: `tuples` rows whose 4-byte
    /// keys are uniform over a domain as large as the relation itself.
    pub fn uniform(tuples: usize, seed: u64) -> Self {
        GenSpec {
            tuples,
            distribution: KeyDistribution::Uniform {
                domain: tuples.max(1) as Key,
            },
            seed,
        }
    }

    /// A Zipf-skewed workload with factor `z` over a domain as large as the
    /// relation (Figure 9's setup).
    pub fn zipf(tuples: usize, z: f64, seed: u64) -> Self {
        GenSpec {
            tuples,
            distribution: KeyDistribution::Zipf {
                domain: tuples.max(1) as Key,
                z,
            },
            seed,
        }
    }

    /// A sequential (unique, sorted) key workload.
    pub fn sequential(tuples: usize, seed: u64) -> Self {
        GenSpec {
            tuples,
            distribution: KeyDistribution::Sequential,
            seed,
        }
    }

    /// Number of tuples whose 12-byte logical size adds up to `bytes`.
    pub fn tuples_for_volume(bytes: u64) -> usize {
        (bytes / TUPLE_BYTES) as usize
    }

    /// Generates the relation.
    pub fn generate(&self) -> Relation {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut rel = Relation::with_capacity(self.tuples);
        match self.distribution {
            KeyDistribution::Uniform { domain } => {
                let domain = domain.max(1);
                for i in 0..self.tuples {
                    let key = rng.gen_range(0..domain);
                    rel.push(Tuple::new(key, payload_for(i, key)));
                }
            }
            KeyDistribution::Zipf { domain, z } => {
                let zipf = Zipf::new(domain.max(1) as u64, z);
                for i in 0..self.tuples {
                    let key = (zipf.sample(&mut rng) - 1) as Key;
                    rel.push(Tuple::new(key, payload_for(i, key)));
                }
            }
            KeyDistribution::Sequential => {
                for i in 0..self.tuples {
                    let key = i as Key;
                    rel.push(Tuple::new(key, payload_for(i, key)));
                }
            }
        }
        rel
    }
}

/// Deterministic payload: encodes the row number and key so result
/// verification can detect any tuple loss, duplication or corruption.
fn payload_for(row: usize, key: Key) -> u64 {
    ((row as u64) << 32) | key as u64
}

/// The paper's §V-B workload at a given scale: two relations of
/// 140 million 12-byte tuples each (2 × 1.6 GB) with uniform 4-byte keys.
///
/// `scale = 1.0` reproduces the full volume; the default harness scale is
/// far smaller. R and S get different seeds derived from `seed`.
pub fn paper_uniform_pair(scale: f64, seed: u64) -> (Relation, Relation) {
    let tuples = scaled_tuples(140_000_000, scale);
    let r = GenSpec::uniform(tuples, seed).generate();
    let s = GenSpec::uniform(tuples, seed.wrapping_add(0x9e37_79b9)).generate();
    (r, s)
}

/// The paper's §V-D skew workload at a given scale: 36 million 12-byte
/// tuples (412 MB) per relation, Zipf-distributed keys with factor `z`.
pub fn paper_skew_pair(z: f64, scale: f64, seed: u64) -> (Relation, Relation) {
    let tuples = scaled_tuples(36_000_000, scale);
    let r = GenSpec::zipf(tuples, z, seed).generate();
    let s = GenSpec::zipf(tuples, z, seed.wrapping_add(0x9e37_79b9)).generate();
    (r, s)
}

fn scaled_tuples(full: usize, scale: f64) -> usize {
    assert!(
        scale.is_finite() && scale > 0.0,
        "scale must be finite and positive, got {scale}"
    );
    ((full as f64 * scale).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = GenSpec::uniform(10_000, 7);
        assert_eq!(spec.generate(), spec.generate());
        let other_seed = GenSpec::uniform(10_000, 8).generate();
        assert_ne!(spec.generate(), other_seed);
    }

    #[test]
    fn uniform_covers_domain_roughly_evenly() {
        let rel = GenSpec::uniform(100_000, 3).generate();
        let domain = 100_000u32;
        let below_half = rel.keys().iter().filter(|&&k| k < domain / 2).count();
        let frac = below_half as f64 / rel.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "half-domain fraction {frac}");
    }

    #[test]
    fn zipf_skews_toward_low_keys() {
        let skewed = GenSpec::zipf(100_000, 0.9, 3).generate();
        let hot = skewed.keys().iter().filter(|&&k| k == 0).count();
        // With z=0.9 over 100k ranks, rank 1 gets far more than 1/100000.
        assert!(hot > 500, "hottest key should dominate, got {hot} copies");
    }

    #[test]
    fn sequential_keys_are_unique_and_sorted() {
        let rel = GenSpec::sequential(1000, 0).generate();
        assert!(rel.is_sorted_by_key());
        let mut keys = rel.keys().to_vec();
        keys.dedup();
        assert_eq!(keys.len(), 1000);
    }

    #[test]
    fn payload_encodes_row_and_key() {
        let rel = GenSpec::sequential(10, 0).generate();
        let t = rel.get(4).unwrap();
        assert_eq!(t.payload >> 32, 4);
        assert_eq!(t.payload as u32, t.key);
    }

    #[test]
    fn tuples_for_volume_inverts_byte_volume() {
        let n = GenSpec::tuples_for_volume(1_200);
        assert_eq!(n, 100);
        let rel = GenSpec::uniform(n, 0).generate();
        assert_eq!(rel.byte_volume(), 1_200);
    }

    #[test]
    fn paper_pairs_scale() {
        let (r, s) = paper_uniform_pair(0.0001, 1);
        assert_eq!(r.len(), 14_000);
        assert_eq!(s.len(), 14_000);
        assert_ne!(r, s, "R and S must use different seeds");
        let (r2, _) = paper_skew_pair(0.5, 0.0001, 1);
        assert_eq!(r2.len(), 3_600);
    }

    #[test]
    #[should_panic(expected = "scale must be finite and positive")]
    fn zero_scale_rejected() {
        let _ = paper_uniform_pair(0.0, 1);
    }

    #[test]
    fn zero_tuples_is_fine() {
        let rel = GenSpec::uniform(0, 0).generate();
        assert!(rel.is_empty());
    }
}
