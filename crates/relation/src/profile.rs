//! Key-distribution profiling.
//!
//! The paper's closing future-work item is "a complete cost model for
//! cyclo-join" (§VII); a cost model is only as good as its workload
//! estimates. [`KeyProfile`] summarizes a relation's join-key
//! distribution — cardinality, distinct keys, heaviest keys, a skew
//! indicator — and [`estimate_equi_matches`] computes the *exact*
//! equi-join output cardinality of two relations in O(|R| + |S|), the
//! quantity the analytic model needs most.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::relation::Relation;
use crate::tuple::Key;

/// Summary statistics of a relation's join-key column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KeyProfile {
    /// Number of tuples.
    pub tuples: usize,
    /// Number of distinct keys.
    pub distinct: usize,
    /// The `k` most frequent keys with their counts, descending.
    pub heavy_hitters: Vec<(Key, usize)>,
    /// Fraction of all tuples carried by the single hottest key.
    pub top_fraction: f64,
}

impl KeyProfile {
    /// Profiles `rel`, keeping the `heavy` most frequent keys.
    pub fn of(rel: &Relation, heavy: usize) -> Self {
        let mut counts: HashMap<Key, usize> = HashMap::new();
        for &k in rel.keys() {
            *counts.entry(k).or_insert(0) += 1;
        }
        let distinct = counts.len();
        let mut sorted: Vec<(Key, usize)> = counts.into_iter().collect();
        sorted.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let top_fraction = if rel.is_empty() {
            0.0
        } else {
            sorted
                .first()
                .map_or(0.0, |&(_, c)| c as f64 / rel.len() as f64)
        };
        sorted.truncate(heavy);
        KeyProfile {
            tuples: rel.len(),
            distinct,
            heavy_hitters: sorted,
            top_fraction,
        }
    }

    /// Average number of duplicates per distinct key.
    pub fn mean_duplicates(&self) -> f64 {
        if self.distinct == 0 {
            0.0
        } else {
            self.tuples as f64 / self.distinct as f64
        }
    }

    /// A crude skew verdict: uniform keys have a hottest-key share close
    /// to `1 / distinct`; heavy skew concentrates a large multiple of it.
    pub fn skew_factor(&self) -> f64 {
        if self.distinct == 0 || self.top_fraction == 0.0 {
            return 1.0;
        }
        self.top_fraction * self.distinct as f64
    }

    /// True if the hottest key carries disproportionate mass (≥ 16× its
    /// uniform share and ≥ 1 % of the relation) — the regime where the
    /// paper's Figure 9 effect bites.
    pub fn is_skewed(&self) -> bool {
        self.skew_factor() >= 16.0 && self.top_fraction >= 0.01
    }
}

/// Exact equi-join output cardinality `|R ⋈ S|` in O(|R| + |S|) time:
/// `Σ_k count_R(k) · count_S(k)`.
pub fn estimate_equi_matches(r: &Relation, s: &Relation) -> u64 {
    // Count the smaller side, stream the larger.
    let (small, large) = if r.len() <= s.len() { (r, s) } else { (s, r) };
    let mut counts: HashMap<Key, u64> = HashMap::new();
    for &k in small.keys() {
        *counts.entry(k).or_insert(0) += 1;
    }
    large
        .keys()
        .iter()
        .map(|k| counts.get(k).copied().unwrap_or(0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GenSpec;
    use crate::relation::Relation;

    #[test]
    fn profile_counts_distinct_and_heavy() {
        let rel = Relation::from_pairs([(1, 0), (1, 1), (1, 2), (2, 3), (3, 4)]);
        let p = KeyProfile::of(&rel, 2);
        assert_eq!(p.tuples, 5);
        assert_eq!(p.distinct, 3);
        assert_eq!(p.heavy_hitters, vec![(1, 3), (2, 1)]);
        assert!((p.top_fraction - 0.6).abs() < 1e-9);
        assert!((p.mean_duplicates() - 5.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_keys_are_not_skewed() {
        let rel = GenSpec::uniform(50_000, 1).generate();
        let p = KeyProfile::of(&rel, 4);
        assert!(!p.is_skewed(), "uniform skew factor {}", p.skew_factor());
    }

    #[test]
    fn zipf_keys_are_skewed() {
        let rel = GenSpec::zipf(50_000, 0.9, 2).generate();
        let p = KeyProfile::of(&rel, 4);
        assert!(p.is_skewed(), "zipf skew factor {}", p.skew_factor());
        // The hottest key is rank 0 (Zipf rank 1 maps to key 0).
        assert_eq!(p.heavy_hitters[0].0, 0);
    }

    #[test]
    fn match_estimate_is_exact() {
        let r = GenSpec::uniform(1_500, 3).generate();
        let s = GenSpec::uniform(1_500, 4).generate();
        let mut brute = 0u64;
        for rt in r.iter() {
            for st in s.iter() {
                if rt.key == st.key {
                    brute += 1;
                }
            }
        }
        assert_eq!(estimate_equi_matches(&r, &s), brute);
        assert_eq!(estimate_equi_matches(&s, &r), brute);
    }

    #[test]
    fn empty_profiles() {
        let p = KeyProfile::of(&Relation::new(), 4);
        assert_eq!(p.tuples, 0);
        assert_eq!(p.distinct, 0);
        assert_eq!(p.mean_duplicates(), 0.0);
        assert!(!p.is_skewed());
        assert_eq!(estimate_equi_matches(&Relation::new(), &Relation::new()), 0);
    }
}
