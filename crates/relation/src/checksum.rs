//! Order-independent checksums for join-result verification.
//!
//! A cyclo-join result is distributed: every host holds the matches it
//! produced, and no global order is defined. To check that a distributed
//! run produced *exactly* the same multiset of matches as a single-host
//! reference join, we fold every match into a commutative checksum — the
//! sum (wrapping) of a strong per-match hash, plus a count. Equal multisets
//! give equal checksums regardless of partitioning or order, and any lost,
//! duplicated or corrupted match changes the sum with overwhelming
//! probability.

use serde::{Deserialize, Serialize};

use crate::relation::Relation;
use crate::tuple::MatchPair;

/// A commutative multiset checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Checksum {
    /// Number of items folded in.
    pub count: u64,
    /// Wrapping sum of per-item hashes.
    pub sum: u64,
}

impl Checksum {
    /// The checksum of the empty multiset.
    pub fn new() -> Self {
        Checksum::default()
    }

    /// Folds one pre-hashed item into the checksum. The count saturates:
    /// `u64::MAX` items is unreachable in practice, but a debug-mode
    /// overflow panic in verification code would mask the very result it
    /// is checking.
    pub fn fold_hash(&mut self, hash: u64) {
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.wrapping_add(hash);
    }

    /// Folds a join match into the checksum.
    pub fn fold_match(&mut self, m: &MatchPair) {
        self.fold_hash(hash_match(m));
    }

    /// Combines two checksums (multiset union). Saturating for the same
    /// reason as [`Checksum::fold_hash`].
    pub fn combine(&self, other: &Checksum) -> Checksum {
        Checksum {
            count: self.count.saturating_add(other.count),
            sum: self.sum.wrapping_add(other.sum),
        }
    }

    /// True if nothing was folded in.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

impl FromIterator<MatchPair> for Checksum {
    fn from_iter<I: IntoIterator<Item = MatchPair>>(iter: I) -> Self {
        let mut c = Checksum::new();
        for m in iter {
            c.fold_match(&m);
        }
        c
    }
}

/// Hashes one match with a splitmix64-style finalizer over all four fields.
pub fn hash_match(m: &MatchPair) -> u64 {
    let mut x = (m.key as u64) << 32 | m.s_key as u64;
    x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31);
    x ^= m.r_payload.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = x.rotate_left(29);
    x ^= m.s_payload.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x
}

/// Checksum over a relation's tuples (for verifying data distribution
/// rather than join results).
pub fn relation_checksum(rel: &Relation) -> Checksum {
    let mut c = Checksum::new();
    for t in rel.iter() {
        let m = MatchPair {
            key: t.key,
            s_key: 0,
            r_payload: t.payload,
            s_payload: 0,
        };
        c.fold_match(&m);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    fn m(key: u32, rp: u64, sp: u64) -> MatchPair {
        MatchPair::new(Tuple::new(key, rp), Tuple::new(key, sp))
    }

    #[test]
    fn order_does_not_matter() {
        let a: Checksum = [m(1, 10, 20), m(2, 30, 40), m(3, 50, 60)]
            .into_iter()
            .collect();
        let b: Checksum = [m(3, 50, 60), m(1, 10, 20), m(2, 30, 40)]
            .into_iter()
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn partitioning_does_not_matter() {
        let all: Checksum = (0..100).map(|i| m(i, i as u64, 2 * i as u64)).collect();
        let first: Checksum = (0..40).map(|i| m(i, i as u64, 2 * i as u64)).collect();
        let second: Checksum = (40..100).map(|i| m(i, i as u64, 2 * i as u64)).collect();
        assert_eq!(first.combine(&second), all);
    }

    #[test]
    fn different_multisets_differ() {
        let a: Checksum = [m(1, 10, 20)].into_iter().collect();
        let b: Checksum = [m(1, 10, 21)].into_iter().collect();
        assert_ne!(a, b);
        // A duplicated match also changes the checksum.
        let doubled: Checksum = [m(1, 10, 20), m(1, 10, 20)].into_iter().collect();
        assert_ne!(a, doubled);
        assert_eq!(doubled.count, 2);
    }

    #[test]
    fn duplicate_matches_both_count() {
        let c: Checksum = [m(5, 1, 1), m(5, 1, 1)].into_iter().collect();
        assert_eq!(c.count, 2);
        assert_eq!(c.sum, hash_match(&m(5, 1, 1)).wrapping_mul(2));
    }

    #[test]
    fn count_saturates_instead_of_overflowing() {
        let mut near = Checksum {
            count: u64::MAX,
            sum: 0,
        };
        near.fold_hash(7);
        assert_eq!(near.count, u64::MAX);
        let combined = near.combine(&Checksum { count: 5, sum: 1 });
        assert_eq!(combined.count, u64::MAX);
    }

    #[test]
    fn empty_checksum() {
        let c = Checksum::new();
        assert!(c.is_empty());
        assert_eq!(c.combine(&c), c);
    }

    #[test]
    fn hash_is_sensitive_to_every_field() {
        let base = m(1, 2, 3);
        let variants = [
            MatchPair { key: 9, ..base },
            MatchPair { s_key: 9, ..base },
            MatchPair {
                r_payload: 9,
                ..base
            },
            MatchPair {
                s_payload: 9,
                ..base
            },
        ];
        for v in variants {
            assert_ne!(
                hash_match(&base),
                hash_match(&v),
                "field change unnoticed: {v:?}"
            );
        }
    }

    #[test]
    fn relation_checksum_detects_changes() {
        let a = Relation::from_pairs([(1, 10), (2, 20)]);
        let b = Relation::from_pairs([(2, 20), (1, 10)]);
        let c = Relation::from_pairs([(1, 10), (2, 21)]);
        assert_eq!(relation_checksum(&a), relation_checksum(&b));
        assert_ne!(relation_checksum(&a), relation_checksum(&c));
    }
}
