//! Zipf-distributed key sampling.
//!
//! The paper's skew experiments (Figure 9) generate join keys from a Zipf
//! distribution with varying factor `z`: `P(k) ∝ 1 / k^z` for ranks
//! `k ∈ 1..=n`. `z = 0` is uniform; at `z = 0.9` a handful of keys receive
//! an exponentially large number of duplicates, which is what degrades the
//! hash join toward nested-loops behaviour.
//!
//! Sampling uses rejection–inversion (Hörmann & Derflinger, 1996): O(1)
//! expected time per sample with no precomputed tables, so generating
//! millions of skewed keys is cheap at any domain size.

use rand::Rng;

/// A Zipf sampler over ranks `1..=n` with exponent `z ≥ 0`.
///
/// ```
/// use rand::SeedableRng;
/// use relation::Zipf;
///
/// let zipf = Zipf::new(1_000, 0.9);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=1_000).contains(&rank));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Zipf {
    n: u64,
    z: f64,
    // Precomputed constants of the rejection-inversion scheme.
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl Zipf {
    /// Creates a sampler over `1..=n` with exponent `z`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, or `z` is negative or not finite.
    pub fn new(n: u64, z: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(
            z.is_finite() && z >= 0.0,
            "Zipf exponent must be ≥ 0, got {z}"
        );
        let mut zipf = Zipf {
            n,
            z,
            h_x1: 0.0,
            h_n: 0.0,
            s: 0.0,
        };
        zipf.h_x1 = zipf.h(1.5) - 1.0;
        zipf.h_n = zipf.h(n as f64 + 0.5);
        zipf.s = 2.0 - zipf.h_inv(zipf.h(2.5) - Self::pow_neg(2.0, z));
        zipf
    }

    /// Domain size `n`.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exponent `z`.
    pub fn z(&self) -> f64 {
        self.z
    }

    fn pow_neg(x: f64, z: f64) -> f64 {
        x.powf(-z)
    }

    /// `H(x) = ∫ x^-z dx`: `(x^(1-z) - 1)/(1-z)` with the `z = 1` limit `ln x`.
    fn h(&self, x: f64) -> f64 {
        let one_minus = 1.0 - self.z;
        if one_minus.abs() < 1e-12 {
            x.ln()
        } else {
            (x.powf(one_minus) - 1.0) / one_minus
        }
    }

    /// Inverse of [`Zipf::h`].
    fn h_inv(&self, x: f64) -> f64 {
        let one_minus = 1.0 - self.z;
        if one_minus.abs() < 1e-12 {
            x.exp()
        } else {
            (1.0 + one_minus * x).powf(1.0 / one_minus)
        }
    }

    /// Draws one rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // z = 0 is exactly uniform; skip the rejection machinery.
        if self.z == 0.0 {
            return rng.gen_range(1..=self.n);
        }
        loop {
            let u = self.h_n + rng.gen::<f64>() * (self.h_x1 - self.h_n);
            let x = self.h_inv(u);
            let k = x.round().clamp(1.0, self.n as f64);
            if (k - x).abs() <= self.s || u >= self.h(k + 0.5) - Self::pow_neg(k, self.z) {
                return k as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(z: f64, n: u64, samples: usize) -> Vec<u64> {
        let zipf = Zipf::new(n, z);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0u64; n as usize + 1];
        for _ in 0..samples {
            counts[zipf.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn samples_stay_in_domain() {
        let zipf = Zipf::new(100, 0.9);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let k = zipf.sample(&mut rng);
            assert!((1..=100).contains(&k));
        }
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let counts = histogram(0.0, 10, 100_000);
        for &c in &counts[1..] {
            let expected = 10_000.0;
            assert!(
                (c as f64 - expected).abs() / expected < 0.1,
                "uniform bucket off by >10 %: {c}"
            );
        }
    }

    #[test]
    fn frequency_ratio_matches_exponent() {
        // P(1)/P(2) should be 2^z.
        for &z in &[0.5, 0.9, 1.2] {
            let counts = histogram(z, 1000, 400_000);
            let ratio = counts[1] as f64 / counts[2] as f64;
            let expected = 2f64.powf(z);
            assert!(
                (ratio - expected).abs() / expected < 0.1,
                "z={z}: ratio {ratio} vs expected {expected}"
            );
        }
    }

    #[test]
    fn higher_skew_concentrates_mass() {
        let mild = histogram(0.3, 100, 100_000);
        let heavy = histogram(0.9, 100, 100_000);
        assert!(heavy[1] > mild[1], "z=0.9 must put more mass on rank 1");
    }

    #[test]
    fn exponent_one_special_case_works() {
        let counts = histogram(1.0, 50, 200_000);
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 2.0).abs() < 0.2, "z=1: P(1)/P(2) ≈ 2, got {ratio}");
    }

    #[test]
    fn single_element_domain() {
        let zipf = Zipf::new(1, 0.9);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_rejected() {
        let _ = Zipf::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "must be ≥ 0")]
    fn negative_exponent_rejected() {
        let _ = Zipf::new(10, -0.1);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let zipf = Zipf::new(1000, 0.7);
        let mut a = StdRng::seed_from_u64(123);
        let mut b = StdRng::seed_from_u64(123);
        for _ in 0..1000 {
            assert_eq!(zipf.sample(&mut a), zipf.sample(&mut b));
        }
    }
}
