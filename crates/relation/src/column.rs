//! Typed columns — the storage unit of a relation.
//!
//! Storage is columnar in the MonetDB BAT spirit: a relation is a pair of
//! dense, equally long columns (join key and payload) rather than an array
//! of row structs. This keeps the join key sequential in memory, which is
//! what makes radix partitioning and merging cache-friendly.

use serde::{Deserialize, Serialize};

/// A dense, typed column of `Copy` values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Column<T> {
    values: Vec<T>,
}

impl<T: Copy> Column<T> {
    /// An empty column.
    pub fn new() -> Self {
        Column { values: Vec::new() }
    }

    /// An empty column with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Column {
            values: Vec::with_capacity(capacity),
        }
    }

    /// Wraps an existing vector.
    pub fn from_vec(values: Vec<T>) -> Self {
        Column { values }
    }

    /// Appends a value.
    pub fn push(&mut self, value: T) {
        self.values.push(value);
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value at `index`, if in bounds.
    pub fn get(&self, index: usize) -> Option<T> {
        self.values.get(index).copied()
    }

    /// Dense slice view of the column.
    pub fn as_slice(&self) -> &[T] {
        &self.values
    }

    /// Iterator over the values.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.values.iter().copied()
    }

    /// Consumes the column, returning the underlying vector.
    pub fn into_vec(self) -> Vec<T> {
        self.values
    }

    /// Copies the sub-range `start..end` into a new column.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: usize, end: usize) -> Column<T> {
        Column {
            values: self.values[start..end].to_vec(),
        }
    }

    /// Appends all values of `other`.
    pub fn extend_from(&mut self, other: &Column<T>) {
        self.values.extend_from_slice(&other.values);
    }
}

impl<T: Copy> FromIterator<T> for Column<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Column {
            values: iter.into_iter().collect(),
        }
    }
}

impl<T: Copy> Extend<T> for Column<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

impl<T: Copy> From<Vec<T>> for Column<T> {
    fn from(values: Vec<T>) -> Self {
        Column::from_vec(values)
    }
}

impl<T: Copy> AsRef<[T]> for Column<T> {
    fn as_ref(&self) -> &[T] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_get() {
        let mut c = Column::new();
        c.push(10u32);
        c.push(20);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0), Some(10));
        assert_eq!(c.get(1), Some(20));
        assert_eq!(c.get(2), None);
    }

    #[test]
    fn from_iterator_and_slice() {
        let c: Column<u32> = (0..5).collect();
        assert_eq!(c.as_slice(), &[0, 1, 2, 3, 4]);
        assert_eq!(c.slice(1, 3).as_slice(), &[1, 2]);
    }

    #[test]
    fn extend_concatenates() {
        let mut a: Column<u32> = (0..3).collect();
        let b: Column<u32> = (3..5).collect();
        a.extend_from(&b);
        assert_eq!(a.as_slice(), &[0, 1, 2, 3, 4]);
        a.extend(5..7);
        assert_eq!(a.len(), 7);
    }

    #[test]
    fn empty_behaviour() {
        let c: Column<u64> = Column::new();
        assert!(c.is_empty());
        assert_eq!(c.iter().count(), 0);
    }

    #[test]
    fn into_vec_round_trips() {
        let v = vec![1u64, 2, 3];
        let c = Column::from_vec(v.clone());
        assert_eq!(c.into_vec(), v);
    }
}
