//! Distributing relations across hosts.
//!
//! Cyclo-join assumes both input relations are spread over all hosts before
//! the join starts (§IV-A): it does not care *how* R is distributed, but S
//! should be reasonably even. Two schemes are provided:
//!
//! * [`chunk_partition`] — contiguous, even-sized chunks (what "spread all
//!   data evenly" means for the rotating relation);
//! * [`hash_partition`] — partition by a hash of the join key, giving each
//!   host a disjoint key subset (what an upstream system like HadoopDB
//!   would deliver, and the natural placement for the stationary relation).

use crate::relation::Relation;
use crate::tuple::Key;

/// Splits `rel` into `parts` contiguous chunks of near-equal size.
///
/// Equivalent to [`Relation::split_even`]; provided here so both
/// partitioning schemes live side by side.
///
/// # Panics
///
/// Panics if `parts` is zero.
pub fn chunk_partition(rel: &Relation, parts: usize) -> Vec<Relation> {
    rel.split_even(parts)
}

/// Splits `rel` into `parts` relations by hashing the join key, so equal
/// keys land in the same part.
///
/// # Panics
///
/// Panics if `parts` is zero.
pub fn hash_partition(rel: &Relation, parts: usize) -> Vec<Relation> {
    assert!(parts > 0, "cannot partition into zero parts");
    let mut out = vec![Relation::with_capacity(rel.len() / parts + 1); parts];
    for t in rel.iter() {
        out[partition_of(t.key, parts)].push(t);
    }
    out
}

/// The part index `hash_partition` assigns to `key` for `parts` parts.
pub fn partition_of(key: Key, parts: usize) -> usize {
    (mix(key) % parts as u64) as usize
}

/// A cheap 32→64-bit finalizer (xorshift-multiply, as used in splitmix64's
/// output stage) to decorrelate key values from their partition.
fn mix(key: Key) -> u64 {
    let mut x = key as u64;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GenSpec;

    #[test]
    fn hash_partition_preserves_all_tuples() {
        let rel = GenSpec::uniform(10_000, 1).generate();
        let parts = hash_partition(&rel, 6);
        let total: usize = parts.iter().map(Relation::len).sum();
        assert_eq!(total, rel.len());
    }

    #[test]
    fn hash_partition_is_disjoint_on_keys() {
        let rel = GenSpec::uniform(10_000, 2).generate();
        let parts = hash_partition(&rel, 4);
        for (i, p) in parts.iter().enumerate() {
            for &k in p.keys() {
                assert_eq!(partition_of(k, 4), i, "key {k} in wrong part");
            }
        }
    }

    #[test]
    fn hash_partition_is_reasonably_even_on_uniform_keys() {
        let rel = GenSpec::uniform(60_000, 3).generate();
        let parts = hash_partition(&rel, 6);
        let expected = rel.len() as f64 / 6.0;
        for p in &parts {
            let dev = (p.len() as f64 - expected).abs() / expected;
            assert!(dev < 0.1, "partition deviates {dev:.2} from even");
        }
    }

    #[test]
    fn equal_keys_colocate() {
        let rel = Relation::from_pairs([(7, 1), (7, 2), (7, 3), (9, 4)]);
        let parts = hash_partition(&rel, 3);
        let with_sevens: Vec<usize> = parts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.keys().contains(&7))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(with_sevens.len(), 1, "all key-7 tuples in one part");
        assert_eq!(
            parts[with_sevens[0]]
                .keys()
                .iter()
                .filter(|&&k| k == 7)
                .count(),
            3
        );
    }

    #[test]
    fn chunk_partition_matches_split_even() {
        let rel = GenSpec::sequential(100, 0).generate();
        assert_eq!(chunk_partition(&rel, 7), rel.split_even(7));
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn zero_parts_rejected() {
        let rel = Relation::new();
        let _ = hash_partition(&rel, 0);
    }

    #[test]
    fn partition_of_is_stable() {
        for key in 0..1000u32 {
            assert_eq!(partition_of(key, 5), partition_of(key, 5));
            assert!(partition_of(key, 5) < 5);
        }
    }
}
