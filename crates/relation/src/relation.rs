//! Relations: named pairs of key/payload columns.

use serde::{Deserialize, Serialize};

use crate::column::Column;
use crate::tuple::{Key, Payload, Tuple, TUPLE_BYTES};

/// An in-memory relation: a key column and a payload column of equal length.
///
/// ```
/// use relation::Relation;
///
/// let r = Relation::from_pairs([(1, 10), (2, 20), (1, 30)]);
/// assert_eq!(r.len(), 3);
/// assert_eq!(r.byte_volume(), 36); // 12 bytes per tuple
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Relation {
    keys: Column<Key>,
    payloads: Column<Payload>,
}

impl Relation {
    /// An empty relation.
    pub fn new() -> Self {
        Relation::default()
    }

    /// An empty relation with capacity for `capacity` tuples.
    pub fn with_capacity(capacity: usize) -> Self {
        Relation {
            keys: Column::with_capacity(capacity),
            payloads: Column::with_capacity(capacity),
        }
    }

    /// Builds a relation from `(key, payload)` pairs.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (Key, Payload)>,
    {
        let mut rel = Relation::new();
        for (k, p) in pairs {
            rel.push(Tuple::new(k, p));
        }
        rel
    }

    /// Builds a relation from its two columns.
    ///
    /// # Panics
    ///
    /// Panics if the columns differ in length.
    pub fn from_columns(keys: Column<Key>, payloads: Column<Payload>) -> Self {
        assert_eq!(
            keys.len(),
            payloads.len(),
            "key and payload columns must have equal length"
        );
        Relation { keys, payloads }
    }

    /// Consumes the relation, returning its two columns without copying —
    /// the inverse of [`Relation::from_columns`]. This is what lets a
    /// consumer (a hash-table build, a scatter pass) take over the backing
    /// storage instead of `to_vec()`-copying both columns.
    pub fn into_columns(self) -> (Column<Key>, Column<Payload>) {
        (self.keys, self.payloads)
    }

    /// Appends a tuple.
    pub fn push(&mut self, tuple: Tuple) {
        self.keys.push(tuple.key);
        self.payloads.push(tuple.payload);
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Logical data volume in bytes (12 bytes per tuple, as in the paper).
    pub fn byte_volume(&self) -> u64 {
        self.len() as u64 * TUPLE_BYTES
    }

    /// The tuple at `index`, if in bounds.
    pub fn get(&self, index: usize) -> Option<Tuple> {
        Some(Tuple {
            key: self.keys.get(index)?,
            payload: self.payloads.get(index)?,
        })
    }

    /// The key column.
    pub fn keys(&self) -> &[Key] {
        self.keys.as_slice()
    }

    /// The payload column.
    pub fn payloads(&self) -> &[Payload] {
        self.payloads.as_slice()
    }

    /// Iterator over the tuples.
    pub fn iter(&self) -> impl Iterator<Item = Tuple> + '_ {
        self.keys
            .iter()
            .zip(self.payloads.iter())
            .map(|(key, payload)| Tuple { key, payload })
    }

    /// Copies the tuple range `start..end` into a new relation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, start: usize, end: usize) -> Relation {
        Relation {
            keys: self.keys.slice(start, end),
            payloads: self.payloads.slice(start, end),
        }
    }

    /// Appends all tuples of `other`.
    pub fn extend_from(&mut self, other: &Relation) {
        self.keys.extend_from(&other.keys);
        self.payloads.extend_from(&other.payloads);
    }

    /// Splits the relation into `parts` contiguous pieces of near-equal
    /// size (sizes differ by at most one tuple). Some pieces may be empty
    /// when `parts > len`.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero.
    pub fn split_even(&self, parts: usize) -> Vec<Relation> {
        assert!(parts > 0, "cannot split into zero parts");
        let n = self.len();
        let base = n / parts;
        let extra = n % parts;
        let mut out = Vec::with_capacity(parts);
        let mut start = 0;
        for i in 0..parts {
            let size = base + usize::from(i < extra);
            out.push(self.slice(start, start + size));
            start += size;
        }
        out
    }

    /// Sorts the relation by key (payload carried along), in place.
    pub fn sort_by_key(&mut self) {
        let mut pairs: Vec<Tuple> = self.iter().collect();
        pairs.sort_unstable();
        *self = Relation::from_pairs(pairs.into_iter().map(|t| (t.key, t.payload)));
    }

    /// True if keys are in non-decreasing order.
    pub fn is_sorted_by_key(&self) -> bool {
        self.keys().windows(2).all(|w| w[0] <= w[1])
    }
}

impl FromIterator<Tuple> for Relation {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        let mut rel = Relation::new();
        for t in iter {
            rel.push(t);
        }
        rel
    }
}

impl Extend<Tuple> for Relation {
    fn extend<I: IntoIterator<Item = Tuple>>(&mut self, iter: I) {
        for t in iter {
            self.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        Relation::from_pairs((0..10).map(|i| (i as Key, (i * 100) as Payload)))
    }

    #[test]
    fn push_get_iter_round_trip() {
        let rel = sample();
        assert_eq!(rel.len(), 10);
        assert_eq!(rel.get(3), Some(Tuple::new(3, 300)));
        assert_eq!(rel.get(10), None);
        let collected: Vec<Tuple> = rel.iter().collect();
        assert_eq!(collected.len(), 10);
        assert_eq!(collected[7], Tuple::new(7, 700));
    }

    #[test]
    fn byte_volume_uses_12_byte_tuples() {
        assert_eq!(sample().byte_volume(), 120);
        assert_eq!(Relation::new().byte_volume(), 0);
    }

    #[test]
    fn split_even_covers_everything_in_order() {
        let rel = sample();
        let parts = rel.split_even(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].len(), 4); // 10 = 4 + 3 + 3
        assert_eq!(parts[1].len(), 3);
        assert_eq!(parts[2].len(), 3);
        let mut merged = Relation::new();
        for p in &parts {
            merged.extend_from(p);
        }
        assert_eq!(merged, rel);
    }

    #[test]
    fn split_with_more_parts_than_tuples() {
        let rel = Relation::from_pairs([(1, 1), (2, 2)]);
        let parts = rel.split_even(5);
        assert_eq!(parts.len(), 5);
        let total: usize = parts.iter().map(Relation::len).sum();
        assert_eq!(total, 2);
        assert!(parts[4].is_empty());
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn split_zero_parts_panics() {
        sample().split_even(0);
    }

    #[test]
    fn sort_by_key_orders_and_preserves_payloads() {
        let mut rel = Relation::from_pairs([(3, 30), (1, 10), (2, 20), (1, 11)]);
        rel.sort_by_key();
        assert!(rel.is_sorted_by_key());
        assert_eq!(rel.len(), 4);
        assert_eq!(rel.keys(), &[1, 1, 2, 3]);
        // Both payloads for key 1 survive.
        let p: Vec<u64> = rel
            .iter()
            .filter(|t| t.key == 1)
            .map(|t| t.payload)
            .collect();
        assert_eq!(p.len(), 2);
        assert!(p.contains(&10) && p.contains(&11));
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_columns_rejected() {
        let keys = Column::from_vec(vec![1u32, 2]);
        let payloads = Column::from_vec(vec![1u64]);
        let _ = Relation::from_columns(keys, payloads);
    }

    #[test]
    fn from_iterator_of_tuples() {
        let rel: Relation = (0..5).map(|i| Tuple::new(i, i as u64)).collect();
        assert_eq!(rel.len(), 5);
    }

    #[test]
    fn into_columns_round_trips() {
        let rel = sample();
        let (keys, payloads) = rel.clone().into_columns();
        assert_eq!(Relation::from_columns(keys, payloads), rel);
    }

    #[test]
    fn slice_is_a_copy() {
        let rel = sample();
        let s = rel.slice(2, 5);
        assert_eq!(s.keys(), &[2, 3, 4]);
        assert_eq!(rel.len(), 10, "slicing must not consume the source");
    }
}
