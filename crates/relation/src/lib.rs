//! # relation — columnar storage and workload generation
//!
//! The data substrate of the cyclo-join reproduction: 12-byte tuples
//! (4-byte join key + 8-byte payload, exactly the paper's tuple layout)
//! held in MonetDB-BAT-style columnar [`Relation`]s, plus seeded,
//! reproducible generators for the paper's uniform and Zipf-skewed
//! workloads, partitioning schemes for spreading data over hosts, and
//! order-independent [`Checksum`]s for verifying distributed join results.
//!
//! ```
//! use relation::{GenSpec, Relation};
//!
//! // 10k tuples with uniform keys, deterministically from seed 42.
//! let r: Relation = GenSpec::uniform(10_000, 42).generate();
//! assert_eq!(r.byte_volume(), 120_000);
//! let parts = r.split_even(4);
//! assert_eq!(parts.iter().map(Relation::len).sum::<usize>(), 10_000);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checksum;
pub mod column;
pub mod generator;
pub mod partition;
pub mod profile;
pub mod relation;
pub mod tuple;
pub mod wire;
pub mod zipf;

pub use checksum::{relation_checksum, Checksum};
pub use column::Column;
pub use generator::{paper_skew_pair, paper_uniform_pair, GenSpec, KeyDistribution};
pub use partition::{chunk_partition, hash_partition, partition_of};
pub use profile::{estimate_equi_matches, KeyProfile};
pub use relation::Relation;
pub use tuple::{Key, MatchPair, Payload, Tuple, TUPLE_BYTES};
pub use wire::{decode, encode, DecodeError};
pub use zipf::Zipf;
