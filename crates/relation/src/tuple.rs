//! The tuple model: 12-byte tuples with a 4-byte join key.
//!
//! The paper's workloads use fixed-width 12-byte tuples — a 4-byte integer
//! join key plus 8 bytes of payload (enough to carry a row id or a packed
//! attribute). We keep exactly that layout for all volume accounting, even
//! though the in-memory representation is columnar.

use serde::{Deserialize, Serialize};

/// The join key type: a 4-byte unsigned integer, as in the paper.
pub type Key = u32;

/// The payload type: 8 opaque bytes.
pub type Payload = u64;

/// Logical width of one tuple in bytes (4-byte key + 8-byte payload).
pub const TUPLE_BYTES: u64 = 12;

/// One logical tuple of a relation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Tuple {
    /// The join key.
    pub key: Key,
    /// The payload carried alongside the key.
    pub payload: Payload,
}

impl Tuple {
    /// Creates a tuple.
    pub fn new(key: Key, payload: Payload) -> Self {
        Tuple { key, payload }
    }
}

impl From<(Key, Payload)> for Tuple {
    fn from((key, payload): (Key, Payload)) -> Self {
        Tuple { key, payload }
    }
}

impl std::fmt::Display for Tuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {:#x})", self.key, self.payload)
    }
}

/// A pair of matched tuples produced by a join: the payloads of the `R` and
/// `S` sides plus the key they matched on.
///
/// For equi-joins both sides share `key`; for band joins `key` is the `R`
/// side's key (the probe key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MatchPair {
    /// Join key of the `R`-side tuple.
    pub key: Key,
    /// Join key of the `S`-side tuple (equal to `key` for equi-joins).
    pub s_key: Key,
    /// Payload of the `R`-side tuple.
    pub r_payload: Payload,
    /// Payload of the `S`-side tuple.
    pub s_payload: Payload,
}

impl MatchPair {
    /// Creates a match pair from the two joined tuples.
    pub fn new(r: Tuple, s: Tuple) -> Self {
        MatchPair {
            key: r.key,
            s_key: s.key,
            r_payload: r.payload,
            s_payload: s.payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_width_is_paper_width() {
        assert_eq!(TUPLE_BYTES, 12);
    }

    #[test]
    fn tuple_ordering_is_key_major() {
        let a = Tuple::new(1, 999);
        let b = Tuple::new(2, 0);
        assert!(a < b);
    }

    #[test]
    fn match_pair_captures_both_sides() {
        let m = MatchPair::new(Tuple::new(5, 0xaa), Tuple::new(5, 0xbb));
        assert_eq!(m.key, 5);
        assert_eq!(m.s_key, 5);
        assert_eq!(m.r_payload, 0xaa);
        assert_eq!(m.s_payload, 0xbb);
    }

    #[test]
    fn conversion_from_pair() {
        let t: Tuple = (3u32, 4u64).into();
        assert_eq!(t, Tuple::new(3, 4));
    }
}
