//! The application hook the ring backends drive.
//!
//! The Data Roundabout is a transport layer: it moves envelopes and runs
//! the asynchronous receiver/join/transmitter machinery, but what the join
//! entity *does* with a buffer — and how long that takes in virtual time —
//! is the application's business. Cyclo-join implements [`RingApp`] by
//! actually executing local joins (measured compute) or by pricing them
//! with an analytic cost model (modeled compute).

use simnet::time::{SimDuration, SimTime};
use simnet::topology::HostId;

/// Application logic plugged into a simulated ring run.
///
/// The simulation is single-threaded, so the app receives `&mut self` and
/// may freely accumulate state (join results, counters) across calls.
pub trait RingApp<P> {
    /// One-time setup work at `host` before rotation starts (e.g. building
    /// hash tables over the stationary partition, sorting, registering
    /// ring buffers). Returns the virtual duration of that work.
    fn setup(&mut self, host: HostId) -> SimDuration;

    /// The join entity at `host` processes one buffer at virtual time
    /// `now`. Returns the virtual compute duration (on an otherwise idle
    /// machine with the configured thread count — transport-induced
    /// slowdowns are applied by the backend, not the app).
    fn process(&mut self, host: HostId, now: SimTime, payload: &P) -> SimDuration;

    /// Polled after every processed buffer in *continuous* rotation mode
    /// (see `SimRing::continuous`): returning `true` stops the rotation.
    /// Ignored in the default run-to-retirement mode.
    fn finished(&self) -> bool {
        false
    }

    /// Fault-tolerant processing: the join entity at `host` processes one
    /// buffer *on behalf of the logical roles in `roles`* — after ring
    /// healing a survivor serves its own stationary partition plus every
    /// partition it absorbed from dead predecessors, and an envelope must
    /// be joined against exactly the not-yet-visited ones. The default
    /// forwards to [`RingApp::process`] once, which is correct for
    /// transport-level apps that do not distinguish partitions.
    fn process_roles(
        &mut self,
        host: HostId,
        roles: &[usize],
        now: SimTime,
        payload: &P,
    ) -> SimDuration {
        let _ = roles;
        self.process(host, now, payload)
    }

    /// Multi-tenant processing: like [`RingApp::process_roles`], but the
    /// buffer belongs to in-flight query `query` of a multiplexed run. The
    /// default ignores the query id and forwards to `process_roles`, which
    /// is correct for apps whose per-buffer work does not depend on the
    /// tenant. Apps that keep per-query state (e.g. separate result sets)
    /// override this.
    fn process_query(
        &mut self,
        host: HostId,
        query: u32,
        roles: &[usize],
        now: SimTime,
        payload: &P,
    ) -> SimDuration {
        let _ = query;
        self.process_roles(host, roles, now, payload)
    }

    /// Ring healing: `survivor` takes over the stationary partition of the
    /// logical role `failed` (rebuilding hash tables / sorted runs for the
    /// orphaned `S_i`). Returns the virtual duration of that takeover.
    /// The default is free, which suits apps without per-host state.
    fn absorb(&mut self, survivor: HostId, failed: HostId) -> SimDuration {
        let _ = (survivor, failed);
        SimDuration::ZERO
    }

    /// Planned repartitioning: on a rescale, host `to` receives the
    /// stationary `roles` from donor `from` and rebuilds its local state
    /// for them (hash tables, sorted runs). Returns the virtual duration
    /// of the rebuild. The default prices each role like a healing
    /// absorb, which keeps apps that only implement [`RingApp::absorb`]
    /// correct under rescale.
    fn handoff(&mut self, to: HostId, from: HostId, roles: &[usize]) -> SimDuration {
        let _ = from;
        roles
            .iter()
            .map(|&r| self.absorb(to, HostId(r)))
            .fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

/// A trivial app for transport-level tests: fixed setup and per-buffer
/// durations, no real work.
#[derive(Debug, Clone)]
pub struct FixedCostApp {
    /// Virtual duration returned by [`RingApp::setup`].
    pub setup: SimDuration,
    /// Virtual duration returned by [`RingApp::process`].
    pub per_buffer: SimDuration,
    /// Number of `process` calls observed, by host id.
    pub processed: Vec<usize>,
}

impl FixedCostApp {
    /// An app with the given fixed costs for a ring of `hosts`.
    pub fn new(hosts: usize, setup: SimDuration, per_buffer: SimDuration) -> Self {
        FixedCostApp {
            setup,
            per_buffer,
            processed: vec![0; hosts],
        }
    }
}

impl<P> RingApp<P> for FixedCostApp {
    fn setup(&mut self, _host: HostId) -> SimDuration {
        self.setup
    }

    fn process(&mut self, host: HostId, _now: SimTime, _payload: &P) -> SimDuration {
        if let Some(slot) = self.processed.get_mut(host.0) {
            *slot += 1;
        }
        self.per_buffer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_cost_app_counts_calls() {
        let mut app =
            FixedCostApp::new(2, SimDuration::from_millis(1), SimDuration::from_millis(2));
        let payload = vec![0u8; 4];
        assert_eq!(
            <FixedCostApp as RingApp<Vec<u8>>>::setup(&mut app, HostId(0)),
            SimDuration::from_millis(1)
        );
        let d = <FixedCostApp as RingApp<Vec<u8>>>::process(
            &mut app,
            HostId(1),
            SimTime::ZERO,
            &payload,
        );
        assert_eq!(d, SimDuration::from_millis(2));
        assert_eq!(app.processed, vec![0, 1]);
    }
}
