//! The live ring backend: Data Roundabout on real OS threads.
//!
//! The simulated backend is what reproduces the paper's figures; this
//! backend runs the *same protocol* with real concurrency, as an existence
//! proof that the asynchronous receiver/join/transmitter design is sound
//! (no deadlocks, no lost or duplicated envelopes) and to let integration
//! tests exercise races the deterministic simulator cannot produce.
//!
//! Mapping of the paper's entities:
//!
//! * the bounded channel into each host **is** its ring of receive buffer
//!   elements (capacity = `buffers_per_host`); a blocked send is the
//!   credit-based flow control;
//! * each host's **join thread** prefers draining received envelopes (to
//!   free buffer elements quickly) and falls back to its local backlog;
//! * each host's **transmitter thread** forwards processed envelopes and
//!   provides the asynchrony that lets the join thread keep working while
//!   a send is blocked downstream — the join thread itself never blocks on
//!   the network.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, TryRecvError};
use simnet::time::SimDuration;
use simnet::topology::HostId;

use crate::config::RingConfig;
use crate::envelope::{Envelope, FragmentId, PayloadBytes};
use crate::metrics::{HostMetrics, RingMetrics};

/// Runs the ring on real threads. `fragments[h]` are host `h`'s local
/// fragments; `process` is invoked once per (host, envelope) visit and may
/// itself be internally multi-threaded.
///
/// ```
/// use data_roundabout::{run_threaded, RingConfig};
///
/// // Three hosts, two fragments each: every host sees all six.
/// let fragments: Vec<Vec<Vec<u8>>> =
///     (0..3).map(|_| vec![vec![0u8; 64]; 2]).collect();
/// let metrics = run_threaded(&RingConfig::paper(3), fragments, |_, _| {});
/// assert_eq!(metrics.fragments_completed, 6);
/// ```
///
/// Returns wall-clock metrics converted into the common [`RingMetrics`]
/// shape (setup is zero here — run any setup before calling and time it
/// yourself; CPU accounts contain compute time only).
///
/// # Panics
///
/// Panics if the configuration is invalid or a worker thread panics.
pub fn run_threaded<P, F>(config: &RingConfig, fragments: Vec<Vec<P>>, process: F) -> RingMetrics
where
    P: PayloadBytes + Send,
    F: Fn(HostId, &P) + Sync,
{
    config.validate().expect("invalid ring configuration");
    assert_eq!(
        fragments.len(),
        config.hosts,
        "need one fragment list per host"
    );
    let n = config.hosts;
    let total: usize = fragments.iter().map(Vec::len).sum();

    if n == 1 {
        return run_single_host(fragments, process);
    }

    // ring_rx[h]: the receive buffer pool of host h.
    let mut ring_tx = Vec::with_capacity(n);
    let mut ring_rx = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = bounded::<Envelope<P>>(config.buffers_per_host);
        ring_tx.push(tx);
        ring_rx.push(rx);
    }
    // Transmitter h sends into host (h+1)'s pool.
    ring_tx.rotate_left(1);

    let forwarded: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let mut host_stats: Vec<Option<JoinStats>> = (0..n).map(|_| None).collect();

    crossbeam::thread::scope(|scope| {
        let mut join_handles = Vec::with_capacity(n);
        let mut tx_handles = Vec::with_capacity(n);
        for (h, (frags, (rx, next_tx))) in fragments
            .into_iter()
            .zip(ring_rx.into_iter().zip(ring_tx.into_iter()))
            .enumerate()
        {
            let (out_tx, out_rx) = unbounded::<Envelope<P>>();
            let process = &process;
            let forwarded = &forwarded;
            join_handles.push(scope.spawn(move |_| {
                join_entity(HostId(h), n, total, frags, rx, out_tx, process)
            }));
            tx_handles.push(scope.spawn(move |_| {
                // Transmitter: forward processed envelopes, honoring the
                // successor's buffer credit via the bounded channel.
                for env in out_rx.iter() {
                    forwarded[h].fetch_add(env.bytes(), Ordering::Relaxed);
                    next_tx
                        .send(env)
                        .expect("successor dropped its receive pool early");
                }
                // Dropping next_tx closes the successor's pool.
            }));
        }
        for (h, handle) in join_handles.into_iter().enumerate() {
            host_stats[h] = Some(handle.join().expect("join thread panicked"));
        }
        for handle in tx_handles {
            handle.join().expect("transmitter thread panicked");
        }
    })
    .expect("ring thread scope panicked");

    let hosts: Vec<HostMetrics> = host_stats
        .into_iter()
        .map(Option::unwrap)
        .enumerate()
        .map(|(h, s)| s.into_metrics(config, forwarded[h].load(Ordering::Relaxed)))
        .collect();
    let wall = hosts
        .iter()
        .map(|h| h.join_window)
        .max()
        .unwrap_or(SimDuration::ZERO);
    RingMetrics {
        hosts,
        wall_clock: wall,
        fragments_completed: total,
    }
}

/// What a join thread measured about itself.
struct JoinStats {
    busy: Duration,
    sync: Duration,
    window: Duration,
    processed: usize,
}

impl JoinStats {
    fn into_metrics(self, config: &RingConfig, bytes_forwarded: u64) -> HostMetrics {
        let mut cpu = simnet::cpu::CpuAccount::new();
        cpu.charge(
            simnet::cpu::CostCategory::Compute,
            SimDuration::from(self.busy) * config.join_threads as u64,
        );
        HostMetrics {
            setup: SimDuration::ZERO,
            join_busy: self.busy.into(),
            sync: self.sync.into(),
            join_window: self.window.into(),
            cpu,
            fragments_processed: self.processed,
            bytes_forwarded,
        }
    }
}

/// The join entity of one host.
fn join_entity<P, F>(
    host: HostId,
    ring_size: usize,
    total: usize,
    locals: Vec<P>,
    rx: crossbeam::channel::Receiver<Envelope<P>>,
    out_tx: crossbeam::channel::Sender<Envelope<P>>,
    process: &F,
) -> JoinStats
where
    P: PayloadBytes + Send,
    F: Fn(HostId, &P) + Sync,
{
    let mut backlog: std::collections::VecDeque<Envelope<P>> = locals
        .into_iter()
        .enumerate()
        .map(|(i, p)| Envelope::new(FragmentId(host.0 * 1_000_000 + i), host, ring_size, p))
        .collect();
    let started = Instant::now();
    let mut busy = Duration::ZERO;
    let mut sync = Duration::ZERO;
    let mut processed = 0usize;
    while processed < total {
        // Prefer received envelopes: popping them frees buffer elements
        // and keeps the ring moving.
        let mut env = match rx.try_recv() {
            Ok(env) => env,
            Err(TryRecvError::Empty) => match backlog.pop_front() {
                Some(env) => env,
                None => {
                    let wait = Instant::now();
                    let env = rx
                        .recv()
                        .expect("ring closed while fragments were still outstanding");
                    sync += wait.elapsed();
                    env
                }
            },
            Err(TryRecvError::Disconnected) => backlog
                .pop_front()
                .expect("ring closed while fragments were still outstanding"),
        };
        let t = Instant::now();
        process(host, &env.payload);
        busy += t.elapsed();
        processed += 1;
        if env.consume_hop() {
            out_tx.send(env).expect("transmitter exited early");
        }
    }
    // Closing the outgoing queue lets the transmitter finish and close the
    // successor's pool in turn.
    drop(out_tx);
    JoinStats {
        busy,
        sync,
        window: started.elapsed(),
        processed,
    }
}

/// Degenerate single-host "ring": process the backlog locally.
fn run_single_host<P, F>(fragments: Vec<Vec<P>>, process: F) -> RingMetrics
where
    P: PayloadBytes + Send,
    F: Fn(HostId, &P) + Sync,
{
    let started = Instant::now();
    let mut busy = Duration::ZERO;
    let mut processed = 0usize;
    for payload in fragments.into_iter().flatten() {
        let t = Instant::now();
        process(HostId(0), &payload);
        busy += t.elapsed();
        processed += 1;
    }
    let host = HostMetrics {
        setup: SimDuration::ZERO,
        join_busy: busy.into(),
        sync: SimDuration::ZERO,
        join_window: started.elapsed().into(),
        cpu: simnet::cpu::CpuAccount::new(),
        fragments_processed: processed,
        bytes_forwarded: 0,
    };
    RingMetrics {
        hosts: vec![host],
        wall_clock: started.elapsed().into(),
        fragments_completed: processed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn payloads(hosts: usize, per_host: usize, bytes: usize) -> Vec<Vec<Vec<u8>>> {
        (0..hosts)
            .map(|_| (0..per_host).map(|_| vec![0u8; bytes]).collect())
            .collect()
    }

    #[test]
    fn every_host_sees_every_fragment() {
        let hosts = 4;
        let counts: Vec<AtomicUsize> = (0..hosts).map(|_| AtomicUsize::new(0)).collect();
        let metrics = run_threaded(&RingConfig::paper(hosts), payloads(hosts, 3, 64), |h, _| {
            counts[h.0].fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(metrics.fragments_completed, 12);
        for c in &counts {
            assert_eq!(c.load(Ordering::SeqCst), 12);
        }
        assert_eq!(metrics.total_bytes_forwarded() as usize, 12 * 64 * (hosts - 1));
    }

    #[test]
    fn single_host_processes_locally() {
        let metrics = run_threaded(&RingConfig::paper(1), payloads(1, 5, 8), |_, _| {});
        assert_eq!(metrics.fragments_completed, 5);
        assert_eq!(metrics.hosts[0].bytes_forwarded, 0);
    }

    #[test]
    fn tight_buffers_do_not_deadlock() {
        // 1 buffer element per host and many fragments: maximum pressure
        // on the flow control.
        let hosts = 5;
        let cfg = RingConfig::paper(hosts).with_buffers(1);
        let metrics = run_threaded(&cfg, payloads(hosts, 8, 16), |_, _| {});
        assert_eq!(metrics.fragments_completed, 40);
    }

    #[test]
    fn uneven_distribution_completes() {
        let hosts = 3;
        let mut frags = payloads(hosts, 0, 0);
        frags[2] = (0..7).map(|_| vec![0u8; 32]).collect();
        let metrics = run_threaded(&RingConfig::paper(hosts), frags, |_, _| {});
        assert_eq!(metrics.fragments_completed, 7);
        for h in &metrics.hosts {
            assert_eq!(h.fragments_processed, 7);
        }
    }

    #[test]
    fn slow_consumers_still_complete() {
        let hosts = 3;
        let metrics = run_threaded(&RingConfig::paper(hosts), payloads(hosts, 2, 16), |h, _| {
            if h.0 == 1 {
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        assert_eq!(metrics.fragments_completed, 6);
        assert!(metrics.hosts[1].join_busy >= SimDuration::from_millis(12));
    }

    #[test]
    fn empty_run_completes() {
        let metrics = run_threaded(&RingConfig::paper(3), payloads(3, 0, 0), |_, _| {});
        assert_eq!(metrics.fragments_completed, 0);
    }

    #[test]
    fn stress_many_fragments_many_rounds() {
        // A repeated-run stress test: the protocol must be deadlock-free
        // under arbitrary real-thread interleavings.
        for round in 0..10 {
            let hosts = 2 + (round % 4);
            let metrics =
                run_threaded(&RingConfig::paper(hosts), payloads(hosts, 6, 8), |_, _| {});
            assert_eq!(metrics.fragments_completed, hosts * 6, "round {round}");
        }
    }
}
