//! The live ring backend: Data Roundabout on real OS threads.
//!
//! The simulated backend is what reproduces the paper's figures; this
//! backend runs the *same protocol* with real concurrency, as an existence
//! proof that the asynchronous receiver/join/transmitter design is sound
//! (no deadlocks, no lost or duplicated envelopes) and to let integration
//! tests exercise races the deterministic simulator cannot produce.
//!
//! All protocol *policy* is imported from the sans-IO [`crate::protocol`]
//! core — envelope numbering ([`envelope_batches`]), the per-hop reliable
//! transport ([`LinkSender`] / [`LinkReceiver`]), the shared timeout and
//! backoff rules, and the teardown vocabulary ([`teardown`]). This file
//! contributes only the *mechanism*: threads, channels and wall clocks.
//!
//! Mapping of the paper's entities:
//!
//! * the bounded channel into each host **is** its ring of receive buffer
//!   elements (capacity = `buffers_per_host`); a blocked send is the
//!   credit-based flow control;
//! * each host's **join thread** prefers draining received envelopes (to
//!   free buffer elements quickly) and falls back to its local backlog;
//! * each host's **transmitter thread** forwards processed envelopes and
//!   provides the asynchrony that lets the join thread keep working while
//!   a send is blocked downstream — the join thread itself never blocks on
//!   the network.
//!
//! A [`RingDriver`] with a fault plan runs the same ring over an
//! *unreliable* medium: the plan may drop, corrupt or delay each hop
//! transfer, and every hop is protected by the acknowledged stop-and-wait
//! protocol the simulated backend uses — sequence numbers, checksum
//! verification at receive, and timeout-driven retransmission with
//! exponential backoff. Host crashes and pauses are *not* supported here
//! (ring healing needs the simulator's virtual time); plans scheduling
//! them are rejected.
//!
//! A worker dying mid-run — a panicking join callback, or a transfer that
//! exhausts its retransmission budget — does **not** cascade panics across
//! the thread scope: the failing worker returns a typed
//! [`RingError::Teardown`], its channels close, every neighbor observes the
//! closure and unwinds in turn (the teardown wave travels forward around
//! the ring, so no thread is left blocked), and the run reports the *first*
//! failure rather than the loudest.
//!
//! A traced run ([`RingDriver::with_tracer`]) additionally records a
//! structured [`SpanTracer`]: per-host join/sync spans, per-hop envelope
//! events and the unified counter registry, on the same wall-clock epoch
//! the metrics use, so span totals reconcile with [`RingMetrics`] exactly.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::mpmc::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use crate::sync::Mutex;
use simnet::fault::{FaultPlan, RescalePlan};
use simnet::span::{counter, SpanKind, SpanTracer, Track};
use simnet::time::{SimDuration, SimTime};
use simnet::topology::HostId;

use crate::config::RingConfig;
use crate::envelope::{Envelope, FragmentId, PayloadBytes};
use crate::error::RingError;
use crate::metrics::{HostMetrics, RingMetrics};
use crate::protocol::{
    backoff_exponent, envelope_batches, query_batches, teardown, Input, LinkReceiver, LinkSender,
    Output, ProtocolConfig, Receipt, RingProtocol, TimeoutVerdict, Timer,
};

/// Collects worker errors, preferring root causes (a panicking callback, an
/// exhausted retransmission budget) over the channel-teardown cascade they
/// provoke in the neighboring workers.
#[derive(Default)]
pub(crate) struct ErrorCollector {
    root: Option<RingError>,
    any: Option<RingError>,
}

impl ErrorCollector {
    pub(crate) fn record(&mut self, err: RingError) {
        let is_root = matches!(
            &err,
            RingError::Teardown(m) if teardown::is_root_cause(m)
        );
        if is_root && self.root.is_none() {
            self.root = Some(err.clone());
        }
        if self.any.is_none() {
            self.any = Some(err);
        }
    }

    pub(crate) fn first(self) -> Option<RingError> {
        self.root.or(self.any)
    }
}

/// Span recording shared by all worker threads of one traced run.
///
/// Offsets are measured from one epoch taken at ring start, so the spans of
/// different hosts share a timeline and busy/sync span totals equal the
/// `Duration` sums the metrics report (both read the same `Instant`s).
pub(crate) struct SharedSpans {
    epoch: Instant,
    tracer: Mutex<SpanTracer>,
}

impl SharedSpans {
    pub(crate) fn new() -> Self {
        SharedSpans {
            epoch: Instant::now(),
            tracer: Mutex::new(SpanTracer::enabled()),
        }
    }

    fn at(&self, instant: Instant) -> SimTime {
        SimTime::from_nanos(
            SimDuration::from(instant.saturating_duration_since(self.epoch)).as_nanos(),
        )
    }

    fn lock(&self) -> crate::sync::MutexGuard<'_, SpanTracer> {
        // A panicking worker must not poison observability for the others.
        self.tracer.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn span(
        &self,
        host: usize,
        kind: SpanKind,
        name: String,
        start: Instant,
        dur: Duration,
        hop: Option<usize>,
    ) {
        let at = self.at(start);
        self.lock()
            .span_with_hop(host, kind, name, at, dur.into(), hop);
    }

    /// Records an instant event and bumps `counter_name` under one lock.
    fn event(&self, host: usize, track: Track, name: String, counter_name: Option<&str>) {
        let at = self.at(Instant::now());
        let mut tracer = self.lock();
        tracer.event(Some(host), track, name, at);
        if let Some(counter_name) = counter_name {
            tracer.count(counter_name, 1);
        }
    }

    fn into_tracer(self) -> SpanTracer {
        self.tracer.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

/// Builder for a live (real-thread) ring run — the single entry point of
/// this backend.
///
/// The default driver runs the classic unguarded transport; attaching a
/// [`FaultPlan`] switches every hop onto the acknowledged stop-and-wait
/// transport from the protocol core, and [`RingDriver::with_tracer`]
/// enables structured span recording.
///
/// ```
/// use data_roundabout::{RingConfig, RingDriver};
///
/// // Three hosts, two fragments each: every host sees all six.
/// let fragments: Vec<Vec<Vec<u8>>> =
///     (0..3).map(|_| vec![vec![0u8; 64]; 2]).collect();
/// let (metrics, _spans) = RingDriver::new(&RingConfig::paper(3))
///     .run(fragments, |_, _| {})
///     .unwrap();
/// assert_eq!(metrics.fragments_completed, 6);
/// ```
///
/// With a fault plan, losses are repaired by retransmission:
///
/// ```
/// use data_roundabout::{FaultPlan, RingConfig, RingDriver};
/// use simnet::topology::HostId;
///
/// let fragments: Vec<Vec<Vec<u8>>> =
///     (0..3).map(|_| vec![vec![7u8; 64]; 2]).collect();
/// let plan = FaultPlan::seeded(42).lossy_link(HostId(0), 0.3);
/// let (metrics, _spans) = RingDriver::new(&RingConfig::paper(3))
///     .with_fault_plan(&plan)
///     .run(fragments, |_, _| {})
///     .unwrap();
/// assert_eq!(metrics.fragments_completed, 6);
/// ```
#[derive(Clone, Copy)]
pub struct RingDriver<'a> {
    config: &'a RingConfig,
    fault_plan: Option<&'a FaultPlan>,
    rescale_plan: Option<&'a RescalePlan>,
    trace: bool,
}

impl<'a> RingDriver<'a> {
    /// A driver for `config` with the classic transport and no tracing.
    pub fn new(config: &'a RingConfig) -> Self {
        RingDriver {
            config,
            fault_plan: None,
            rescale_plan: None,
            trace: false,
        }
    }

    /// Runs the ring over the unreliable medium described by `plan`, with
    /// every hop protected by the acknowledged transport.
    ///
    /// Each hop gets a *wire* channel (capacity 1 — the link carries one
    /// transfer at a time), an acknowledgement channel back, and a
    /// dedicated receiver thread in front of the host's buffer pool. The
    /// transmitter stamps each envelope with the protocol core's per-link
    /// sequence number and runs stop-and-wait: send a copy (the plan's
    /// dice may drop it, corrupt its checksum, or delay it), then await
    /// the ack for `ack_timeout × 2^(a−1)` on attempt `a`; on timeout the
    /// shared [`LinkSender::on_timeout`] policy decides between
    /// retransmitting from the pristine master and tearing down. The
    /// receiver classifies arrivals via [`LinkReceiver::receive`] —
    /// counting checksum mismatches and staying silent so the sender
    /// retransmits, re-acking duplicates without redelivering them — and
    /// acks *before* depositing into the buffer pool: acknowledgement is a
    /// NIC-level statement of intact receipt, so downstream backpressure
    /// never masquerades as loss.
    pub fn with_fault_plan(mut self, plan: &'a FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Attaches a planned [`RescalePlan`]: standby hosts joining the
    /// ring and active hosts draining out of it mid-run, with their
    /// stationary partitions repartitioned by rendezvous hashing.
    ///
    /// A rescale run switches this backend into its *coordinated* mode —
    /// one thread owning the sans-IO [`RingProtocol`] drives per-host
    /// join workers over channels, mirroring the TCP driver minus the
    /// sockets — because membership transitions need the protocol core's
    /// ledger rather than the emergent channel topology of the classic
    /// paths. Join/drain instants are interpreted in wall-clock time from
    /// ring start. Hosts named in a join start as provisioned standbys
    /// outside the ring and must contribute no fragments; the run uses
    /// the acked reliable transport even without a fault plan.
    pub fn with_rescale_plan(mut self, plan: &'a RescalePlan) -> Self {
        self.rescale_plan = Some(plan);
        self
    }

    /// Enables structured span recording for this run.
    pub fn with_tracer(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Runs the ring to completion. `fragments[h]` are host `h`'s local
    /// fragments; `process` is invoked once per (host, envelope) visit and
    /// may itself be internally multi-threaded.
    ///
    /// Returns wall-clock metrics converted into the common
    /// [`RingMetrics`] shape (setup is zero here — run any setup before
    /// calling and time it yourself; CPU accounts contain compute time
    /// only), plus the [`SpanTracer`] (empty and disabled unless
    /// [`RingDriver::with_tracer`] was set).
    ///
    /// # Errors
    ///
    /// Returns [`RingError::Config`] for an invalid configuration,
    /// [`RingError::Shape`] when `fragments.len() != config.hosts`,
    /// [`RingError::UnsupportedFault`] when the fault plan schedules host
    /// crashes or pauses (those need the simulated backend's virtual time
    /// and ring healing), and [`RingError::Teardown`] when a worker dies
    /// mid-run — a panicking `process` callback, or (with a fault plan) a
    /// transfer that exhausts its retransmission budget: on this backend
    /// every host is alive, so an exhausted budget means the timeout is
    /// too tight or the loss rate too high to ever succeed. The error
    /// names the first failure, not the channel-closure cascade it
    /// provokes.
    pub fn run<P, F>(
        self,
        fragments: Vec<Vec<P>>,
        process: F,
    ) -> Result<(RingMetrics, SpanTracer), RingError>
    where
        P: PayloadBytes + Send + Clone,
        F: Fn(HostId, &P) + Sync,
    {
        match (self.rescale_plan, self.fault_plan) {
            (Some(rescale), plan) => {
                coordinated_run(self.config, plan, rescale, fragments, process, self.trace)
            }
            (None, Some(plan)) => reliable_run(self.config, plan, fragments, process, self.trace),
            (None, None) => classic_run(self.config, fragments, process, self.trace),
        }
    }

    /// Runs several queries multiplexed over one ring on the coordinated
    /// engine. `queries[q]` is `(tenant, fragments)` with `fragments[h]`
    /// host `h`'s local fragments for query `q`; at most `max_active`
    /// queries circulate concurrently. Always uses the reliable acked
    /// transport (quiet dice are synthesized without a fault plan), so
    /// per-query exactly-once delivery holds.
    ///
    /// # Errors
    ///
    /// As [`RingDriver::run`], plus [`RingError::Shape`] when any query's
    /// fragment lists disagree with the host count and
    /// [`RingError::UnsupportedFault`] on a single-host ring (nothing to
    /// multiplex over) or a zero `max_active`.
    pub fn run_queries<P, F>(
        self,
        queries: Vec<(u32, Vec<Vec<P>>)>,
        max_active: usize,
        process: F,
    ) -> Result<(RingMetrics, SpanTracer), RingError>
    where
        P: PayloadBytes + Send + Clone,
        F: Fn(HostId, u32, &P) + Sync,
    {
        coordinated_multi_run(
            self.config,
            self.fault_plan,
            self.rescale_plan,
            queries,
            max_active,
            process,
            self.trace,
        )
    }
}

/// The coordinated engine behind [`RingDriver::run_queries`]: validates
/// the query shapes, synthesizes quiet dice when no fault plan is
/// attached, constructs the multi-query protocol core and drives it.
fn coordinated_multi_run<P, F>(
    config: &RingConfig,
    fault_plan: Option<&FaultPlan>,
    rescale: Option<&RescalePlan>,
    queries: Vec<(u32, Vec<Vec<P>>)>,
    max_active: usize,
    process: F,
    trace: bool,
) -> Result<(RingMetrics, SpanTracer), RingError>
where
    P: PayloadBytes + Send + Clone,
    F: Fn(HostId, u32, &P) + Sync,
{
    config.validate()?;
    let n = config.hosts;
    if n < 2 {
        return Err(RingError::UnsupportedFault(
            "multiplexing needs a ring of at least two hosts",
        ));
    }
    if n > 64 {
        return Err(RingError::UnsupportedFault(
            "the exactly-once role bitmask supports at most 64 hosts",
        ));
    }
    if queries.is_empty() || max_active == 0 {
        return Err(RingError::UnsupportedFault(
            "a multi-tenant run needs at least one query and a positive admission bound",
        ));
    }
    for (_, fragments) in &queries {
        if fragments.len() != n {
            return Err(RingError::Shape {
                expected: n,
                got: fragments.len(),
            });
        }
    }
    if let Some(plan) = fault_plan {
        if !plan.crashes().is_empty() || !plan.pauses().is_empty() {
            return Err(RingError::UnsupportedFault(
                "the threaded backend supports link loss, corruption and delay spikes; host \
                 crashes and pauses need ring healing — use the simulated, tcp or reactor \
                 backends",
            ));
        }
    }
    if let Some(plan) = rescale {
        if plan.joins().iter().any(|j| {
            queries
                .iter()
                .any(|(_, f)| f.get(j.host.0).is_some_and(|b| !b.is_empty()))
        }) {
            return Err(RingError::UnsupportedFault(
                "a standby host must not contribute fragments before joining",
            ));
        }
    }
    let quiet_dice;
    let plan = match fault_plan {
        Some(p) => p,
        None => {
            quiet_dice = FaultPlan::seeded(rescale.map_or(0, RescalePlan::seed));
            &quiet_dice
        }
    };
    let proto_cfg = ProtocolConfig {
        hosts: n,
        buffers_per_host: config.buffers_per_host,
        max_retransmits: config.max_retransmits,
        continuous: false,
        reliable: true,
        standby: rescale.map_or(0, RescalePlan::standby_mask),
    };
    let proto = RingProtocol::new_multi(proto_cfg, query_batches(queries, n), max_active);
    let total = proto.fragments_total();
    drive_coordinated(config, plan, rescale, proto, total, process, trace)
}

/// The classic (unguarded-transport) engine behind [`RingDriver::run`].
fn classic_run<P, F>(
    config: &RingConfig,
    fragments: Vec<Vec<P>>,
    process: F,
    trace: bool,
) -> Result<(RingMetrics, SpanTracer), RingError>
where
    P: PayloadBytes + Send,
    F: Fn(HostId, &P) + Sync,
{
    config.validate()?;
    if fragments.len() != config.hosts {
        return Err(RingError::Shape {
            expected: config.hosts,
            got: fragments.len(),
        });
    }
    let n = config.hosts;
    let total: usize = fragments.iter().map(Vec::len).sum();
    let mut batches = envelope_batches(fragments, n);
    let shared = trace.then(SharedSpans::new);
    let spans = shared.as_ref();

    if n == 1 {
        let envelopes = batches.pop().unwrap_or_default();
        let metrics = run_single_host(envelopes, process, spans)?;
        let tracer = finish_spans(shared, &metrics);
        return Ok((metrics, tracer));
    }

    // ring_rx[h]: the receive buffer pool of host h.
    let mut ring_tx = Vec::with_capacity(n);
    let mut ring_rx = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = bounded::<Envelope<P>>(config.buffers_per_host);
        ring_tx.push(tx);
        ring_rx.push(rx);
    }
    // Transmitter h sends into host (h+1)'s pool.
    ring_tx.rotate_left(1);

    let forwarded: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let mut host_stats: Vec<Option<JoinStats>> = (0..n).map(|_| None).collect();

    let first_error = crate::sync::thread::scope(|scope| {
        let mut join_handles = Vec::with_capacity(n);
        let mut tx_handles = Vec::with_capacity(n);
        for (h, ((backlog, (rx, next_tx)), fwd)) in batches
            .into_iter()
            .zip(ring_rx.into_iter().zip(ring_tx))
            .zip(&forwarded)
            .enumerate()
        {
            let (out_tx, out_rx) = unbounded::<Envelope<P>>();
            let process = &process;
            join_handles.push(scope.spawn(move || {
                // On the classic path the buffer pool is the receiver, so
                // the join entity records envelope arrivals itself.
                join_entity(
                    HostId(h),
                    n,
                    total,
                    backlog,
                    rx,
                    out_tx,
                    process,
                    spans,
                    true,
                )
            }));
            tx_handles.push(scope.spawn(move || -> Result<(), RingError> {
                // Transmitter: forward processed envelopes, honoring the
                // successor's buffer credit via the bounded channel.
                for env in out_rx.iter() {
                    fwd.fetch_add(env.bytes(), Ordering::Relaxed);
                    if let Some(s) = spans {
                        s.event(
                            h,
                            Track::Transmitter,
                            format!("send {}", env.id),
                            Some(counter::ENVELOPES_SENT),
                        );
                    }
                    if next_tx.send(env).is_err() {
                        // The successor's join entity died and dropped its
                        // pool: surface a typed error, don't panic.
                        return Err(RingError::Teardown(teardown::POOL_CLOSED));
                    }
                }
                // Dropping next_tx closes the successor's pool.
                Ok(())
            }));
        }
        let mut errors = ErrorCollector::default();
        for (slot, handle) in host_stats.iter_mut().zip(join_handles) {
            match handle.join() {
                Ok(Ok(stats)) => *slot = Some(stats),
                Ok(Err(err)) => errors.record(err),
                Err(_) => errors.record(RingError::Teardown(teardown::WORKER_PANICKED)),
            }
        }
        for handle in tx_handles {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(err)) => errors.record(err),
                Err(_) => errors.record(RingError::Teardown(teardown::WORKER_PANICKED)),
            }
        }
        errors.first()
    });
    if let Some(err) = first_error {
        return Err(err);
    }

    let stats: Vec<JoinStats> = host_stats.into_iter().flatten().collect();
    debug_assert_eq!(stats.len(), n, "error-free run has stats for every host");
    let hosts: Vec<HostMetrics> = stats
        .into_iter()
        .zip(&forwarded)
        .map(|(s, fwd)| s.into_metrics(config, fwd.load(Ordering::Relaxed), 0, 0))
        .collect();
    let wall = hosts
        .iter()
        .map(|h| h.join_window)
        .max()
        .unwrap_or(SimDuration::ZERO);
    let metrics = RingMetrics {
        hosts,
        wall_clock: wall,
        fragments_completed: total,
        ..RingMetrics::default()
    };
    let tracer = finish_spans(shared, &metrics);
    Ok((metrics, tracer))
}

/// The reliable-transport engine behind [`RingDriver::run`] with a fault
/// plan attached.
fn reliable_run<P, F>(
    config: &RingConfig,
    plan: &FaultPlan,
    fragments: Vec<Vec<P>>,
    process: F,
    trace: bool,
) -> Result<(RingMetrics, SpanTracer), RingError>
where
    P: PayloadBytes + Send + Clone,
    F: Fn(HostId, &P) + Sync,
{
    config.validate()?;
    if fragments.len() != config.hosts {
        return Err(RingError::Shape {
            expected: config.hosts,
            got: fragments.len(),
        });
    }
    if !plan.crashes().is_empty() || !plan.pauses().is_empty() {
        return Err(RingError::UnsupportedFault(
            "the threaded backend supports link loss, corruption and delay spikes (plus planned \
             rescale); host crashes and pauses need ring healing — use the simulated backend \
             (all fault kinds) or the tcp backend (loss, corruption, crashes, pauses)",
        ));
    }
    let n = config.hosts;
    let total: usize = fragments.iter().map(Vec::len).sum();
    let mut batches = envelope_batches(fragments, n);
    let shared = trace.then(SharedSpans::new);
    let spans = shared.as_ref();

    if n == 1 {
        let envelopes = batches.pop().unwrap_or_default();
        let metrics = run_single_host(envelopes, process, spans)?;
        let tracer = finish_spans(shared, &metrics);
        return Ok((metrics, tracer));
    }

    // Per-hop channels, indexed by the *sending* host h of the hop
    // h → h+1: the wire itself, and the acknowledgements flowing back.
    let mut wire_tx = Vec::with_capacity(n);
    let mut wire_rx = Vec::with_capacity(n);
    let mut ack_tx = Vec::with_capacity(n);
    let mut ack_rx = Vec::with_capacity(n);
    for _ in 0..n {
        let (wtx, wrx) = bounded::<Envelope<P>>(1);
        let (atx, arx) = unbounded::<u64>();
        wire_tx.push(wtx);
        wire_rx.push(wrx);
        ack_tx.push(atx);
        ack_rx.push(arx);
    }
    // Receive buffer pools, indexed by the owning host.
    let mut pool_tx = Vec::with_capacity(n);
    let mut pool_rx = Vec::with_capacity(n);
    for _ in 0..n {
        let (ptx, prx) = bounded::<Envelope<P>>(config.buffers_per_host);
        pool_tx.push(ptx);
        pool_rx.push(prx);
    }
    // Receiver of host h fronts the hop out of its predecessor: it reads
    // wire_rx[h-1] and acks into ack_tx[h-1].
    wire_rx.rotate_right(1);
    ack_tx.rotate_right(1);

    let forwarded: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let retransmits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let mismatches: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let mut host_stats: Vec<Option<JoinStats>> = (0..n).map(|_| None).collect();

    let ack_timeout = Duration::from_secs_f64(config.ack_timeout.as_secs_f64());
    let max_retransmits = config.max_retransmits;

    let first_error = crate::sync::thread::scope(|scope| {
        let mut join_handles = Vec::with_capacity(n);
        let mut aux_handles = Vec::with_capacity(2 * n);
        let iter = batches
            .into_iter()
            .zip(pool_rx.into_iter().zip(pool_tx))
            .zip(wire_tx.into_iter().zip(ack_rx))
            .zip(wire_rx.into_iter().zip(ack_tx))
            .zip(forwarded.iter().zip(retransmits.iter().zip(&mismatches)))
            .enumerate();
        for (h, ((((backlog, (prx, ptx)), (wtx, arx)), (wrx, atx)), (fwd, (rtx, mis)))) in iter {
            let (out_tx, out_rx) = unbounded::<Envelope<P>>();
            let process = &process;
            join_handles.push(scope.spawn(move || {
                // The dedicated receiver thread records arrivals here, so
                // the join entity must not double-count them.
                join_entity(
                    HostId(h),
                    n,
                    total,
                    backlog,
                    prx,
                    out_tx,
                    process,
                    spans,
                    false,
                )
            }));
            aux_handles.push(scope.spawn(move || {
                reliable_transmitter(
                    HostId(h),
                    plan,
                    ack_timeout,
                    max_retransmits,
                    out_rx,
                    wtx,
                    arx,
                    fwd,
                    rtx,
                    spans,
                )
            }));
            aux_handles.push(scope.spawn(move || {
                reliable_receiver(HostId(h), wrx, atx, ptx, mis, spans);
                Ok(())
            }));
        }
        let mut errors = ErrorCollector::default();
        for (slot, handle) in host_stats.iter_mut().zip(join_handles) {
            match handle.join() {
                Ok(Ok(stats)) => *slot = Some(stats),
                Ok(Err(err)) => errors.record(err),
                Err(_) => errors.record(RingError::Teardown(teardown::WORKER_PANICKED)),
            }
        }
        for handle in aux_handles {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(err)) => errors.record(err),
                Err(_) => errors.record(RingError::Teardown(teardown::WORKER_PANICKED)),
            }
        }
        errors.first()
    });
    if let Some(err) = first_error {
        return Err(err);
    }

    let stats: Vec<JoinStats> = host_stats.into_iter().flatten().collect();
    debug_assert_eq!(stats.len(), n, "error-free run has stats for every host");
    let hosts: Vec<HostMetrics> = stats
        .into_iter()
        .zip(forwarded.iter().zip(retransmits.iter().zip(&mismatches)))
        .map(|(s, (fwd, (rtx, mis)))| {
            s.into_metrics(
                config,
                fwd.load(Ordering::Relaxed),
                rtx.load(Ordering::Relaxed),
                mis.load(Ordering::Relaxed),
            )
        })
        .collect();
    let wall = hosts
        .iter()
        .map(|h| h.join_window)
        .max()
        .unwrap_or(SimDuration::ZERO);
    let metrics = RingMetrics {
        hosts,
        wall_clock: wall,
        fragments_completed: total,
        ..RingMetrics::default()
    };
    let tracer = finish_spans(shared, &metrics);
    Ok((metrics, tracer))
}

// ---------------------------------------------------------------------------
// Coordinated rescale mode: one thread owning the sans-IO protocol
// ---------------------------------------------------------------------------

/// Watchdog for the coordinated event loop: no event for this long means
/// the run wedged (every legal state has a pending timer or job).
const RESCALE_WATCHDOG: Duration = Duration::from_secs(10);

/// Teardown reason when the coordinated watchdog fires.
const RESCALE_STALLED: &str =
    "coordinated ring stalled: no event arrived within the watchdog window";

/// Teardown reason when the protocol starts a join with nothing queued.
const RESCALE_EMPTY_SLOT: &str = "StartJoin with an empty processing slot";

/// One driver-side event of the coordinated mode.
enum CoEvent<P> {
    /// A worker thread finished the join computation at `host`.
    JoinDone {
        host: HostId,
        id: FragmentId,
        hop: usize,
        spent: Duration,
        panicked: bool,
    },
    /// A wall-clock timer fired.
    Timer(CoTimer<P>),
}

/// Timers of the coordinated mode: protocol backoffs, the rescale plan's
/// scheduled membership changes, and fault-plan delay spikes realized as
/// deferred deliveries — the channel "wire" itself is instantaneous, so a
/// spike is modeled by parking the envelope on the timer thread.
enum CoTimer<P> {
    Protocol(Timer),
    JoinRequest(HostId),
    DrainRequest(HostId),
    Deliver {
        to: HostId,
        env: Envelope<P>,
        tid: u64,
        from: HostId,
    },
}

/// A join computation handed to a host's worker thread.
struct CoJob<P> {
    payload: P,
    /// Which multiplexed query the fragment belongs to (0 on
    /// single-query runs).
    query: u32,
    id: FragmentId,
    hop: usize,
}

/// The join worker of one host in coordinated mode: runs the guarded user
/// callback and reports completions back to the coordinator.
fn coordinated_worker<P, F>(
    host: HostId,
    jobs: Receiver<CoJob<P>>,
    events: Sender<CoEvent<P>>,
    process: &F,
) where
    P: PayloadBytes + Send,
    F: Fn(HostId, u32, &P) + Sync,
{
    for job in jobs.iter() {
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| process(host, job.query, &job.payload)));
        let done = CoEvent::JoinDone {
            host,
            id: job.id,
            hop: job.hop,
            spent: started.elapsed(),
            panicked: outcome.is_err(),
        };
        if events.send(done).is_err() {
            return;
        }
    }
}

/// The wall-clock timer thread of the coordinated mode.
fn coordinated_timer_loop<P: Send>(
    cmds: Receiver<(Instant, CoTimer<P>)>,
    events: Sender<CoEvent<P>>,
) {
    let mut armed: Vec<(Instant, CoTimer<P>)> = Vec::new();
    loop {
        let now = Instant::now();
        let (due, rest): (Vec<_>, Vec<_>) = armed.into_iter().partition(|(d, _)| *d <= now);
        armed = rest;
        for (_, kind) in due {
            if events.send(CoEvent::Timer(kind)).is_err() {
                return;
            }
        }
        let wait = armed
            .iter()
            .map(|(d, _)| d.saturating_duration_since(Instant::now()))
            .min()
            .unwrap_or(Duration::from_secs(3600));
        match cmds.recv_timeout(wait) {
            Ok(cmd) => armed.push(cmd),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// The coordinator of a rescale run: owns the [`RingProtocol`] and maps
/// its outputs onto worker jobs, pending inputs and wall-clock timers —
/// the TCP driver's coordinator minus the sockets.
struct CoRing<'a, P: PayloadBytes> {
    proto: RingProtocol<P>,
    plan: &'a FaultPlan,
    jobs: Vec<Sender<CoJob<P>>>,
    timer_tx: Sender<(Instant, CoTimer<P>)>,
    /// Inputs produced synchronously while applying outputs (instant wire
    /// deliveries, acks, zero-cost absorbs), processed before the channel.
    pending: VecDeque<Input<P>>,
    errors: ErrorCollector,
    fatal: bool,
    tracer: SpanTracer,
    epoch: Instant,
    wall_ack_timeout: Duration,
    join_threads: usize,
    busy: Vec<Duration>,
    last_done: Vec<Instant>,
    bytes_forwarded: Vec<u64>,
    last_progress: Instant,
}

impl<P: PayloadBytes + Clone> CoRing<'_, P> {
    fn now_stamp(&self) -> SimTime {
        SimTime::from_nanos(SimDuration::from(self.epoch.elapsed()).as_nanos())
    }

    fn stamp_before(&self, spent: Duration) -> SimTime {
        SimTime::from_nanos(
            SimDuration::from(self.epoch.elapsed().saturating_sub(spent)).as_nanos(),
        )
    }

    fn fail(&mut self, error: RingError) {
        self.errors.record(error);
        self.fatal = true;
    }

    fn arm(&mut self, deadline: Instant, kind: CoTimer<P>) {
        let _ = self.timer_tx.send((deadline, kind));
    }

    /// Translates one driver event into a protocol [`Input`], mirroring
    /// the TCP coordinator's crash-guard policy (a host can only be
    /// "crashed" here through an escalated drain).
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn handle(&mut self, event: CoEvent<P>) {
        match event {
            CoEvent::JoinDone {
                host,
                id,
                hop,
                spent,
                panicked,
            } => {
                if self.proto.is_crashed(host) {
                    return;
                }
                if panicked {
                    self.fail(RingError::Teardown(teardown::CALLBACK_PANICKED));
                    return;
                }
                self.busy[host.0] += spent;
                let now = Instant::now();
                self.last_done[host.0] = now;
                self.last_progress = self.last_progress.max(now);
                if self.tracer.is_enabled() {
                    let start = self.stamp_before(spent);
                    self.tracer.span_with_hop(
                        host.0,
                        SpanKind::Join,
                        format!("join {id}"),
                        start,
                        spent.into(),
                        Some(hop),
                    );
                }
                let out = self.proto.input(Input::JoinDone {
                    host,
                    app_finished: false,
                });
                self.apply(out);
            }
            CoEvent::Timer(kind) => match kind {
                CoTimer::Protocol(timer) => {
                    let out = self.proto.input(Input::Tick { timer });
                    self.apply(out);
                }
                CoTimer::JoinRequest(host) => {
                    if self.proto.is_crashed(host) {
                        return;
                    }
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(host.0),
                            Track::Control,
                            "join requested",
                            self.now_stamp(),
                        );
                    }
                    let out = self.proto.input(Input::JoinRequest { host });
                    self.apply(out);
                }
                CoTimer::DrainRequest(host) => {
                    if self.proto.is_crashed(host) {
                        return;
                    }
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(host.0),
                            Track::Control,
                            "drain requested",
                            self.now_stamp(),
                        );
                    }
                    let out = self.proto.input(Input::DrainRequest { host });
                    self.apply(out);
                }
                CoTimer::Deliver { to, env, tid, from } => {
                    // A delayed frame finally "arrives"; only then is the
                    // sender's wire reported free — the spike delays the
                    // hop's credit exactly like the TCP writer queue does.
                    let out = self.proto.input(Input::Delivered { to, env, tid });
                    self.apply(out);
                    let out = self.proto.input(Input::SendDone { from });
                    self.apply(out);
                }
            },
        }
    }

    /// Applies protocol outputs strictly in emission order.
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn apply(&mut self, outputs: Vec<Output<P>>) {
        for output in outputs {
            if self.fatal {
                return;
            }
            match output {
                Output::StartJoin {
                    host,
                    id,
                    hop,
                    roles: _,
                    bytes: _,
                } => {
                    let Some(payload) = self.proto.processing_payload(host).cloned() else {
                        self.fail(RingError::Teardown(RESCALE_EMPTY_SLOT));
                        return;
                    };
                    let job = CoJob {
                        payload,
                        query: self.proto.processing_query(host),
                        id,
                        hop,
                    };
                    if self.jobs[host.0].send(job).is_err() {
                        self.fail(RingError::Teardown(teardown::RING_CLOSED));
                    }
                }
                Output::PassThrough { host, id } => {
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(host.0),
                            Track::Join,
                            format!("pass-through {id}"),
                            self.now_stamp(),
                        );
                    }
                }
                Output::Processed { .. } => {}
                Output::Send {
                    from,
                    to,
                    tid,
                    attempt,
                    env,
                } => self.apply_send(from, to, tid, attempt, env),
                Output::Ack { to: _, tid } => {
                    // The channel wire has no reverse latency: the ack
                    // reaches its sender in the same coordinator round.
                    self.pending.push_back(Input::Ack { tid });
                }
                Output::ArmTimer { timer, backoff_exp } => {
                    let delay = self
                        .wall_ack_timeout
                        .saturating_mul(1u32 << backoff_exp.min(31));
                    self.arm(Instant::now() + delay, CoTimer::Protocol(timer));
                }
                Output::Delivered { host, id, bytes: _ } => {
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(host.0),
                            Track::Receiver,
                            format!("recv {id}"),
                            self.now_stamp(),
                        );
                        self.tracer.count(counter::ENVELOPES_RECEIVED, 1);
                    }
                }
                Output::DuplicateDropped { host, id } => {
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(host.0),
                            Track::Receiver,
                            format!("duplicate {id} dropped"),
                            self.now_stamp(),
                        );
                    }
                }
                Output::ChecksumMismatch { host, id } => {
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(host.0),
                            Track::Receiver,
                            format!("checksum mismatch {id}"),
                            self.now_stamp(),
                        );
                        self.tracer.count(counter::CHECKSUM_MISMATCHES, 1);
                    }
                }
                Output::Retire { host, id, salvaged } => {
                    self.last_progress = self.last_progress.max(Instant::now());
                    if self.tracer.is_enabled() {
                        let name = if salvaged {
                            format!("retired {id} (salvaged)")
                        } else {
                            format!("retired {id}")
                        };
                        self.tracer
                            .event(Some(host.0), Track::Join, name, self.now_stamp());
                        self.tracer.count(counter::FRAGMENTS_RETIRED, 1);
                    }
                }
                Output::Heal { dead } => {
                    // Only reachable through an escalated drain: no crash
                    // was ever scheduled, so detection latency stays zero.
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            None,
                            Track::Control,
                            format!("heal: host {} confirmed dead", dead.0),
                            self.now_stamp(),
                        );
                        self.tracer.count(counter::HEAL_EVENTS, 1);
                    }
                }
                Output::Absorb {
                    survivor,
                    dead,
                    roles,
                } => {
                    // This backend has no application absorb hook: the
                    // takeover is free and completes in the same round.
                    if self.tracer.is_enabled() {
                        self.tracer.span(
                            survivor.0,
                            SpanKind::Absorb,
                            format!("absorb {} role(s) of host {}", roles.len(), dead.0),
                            self.now_stamp(),
                            SimDuration::ZERO,
                        );
                    }
                    self.pending.push_back(Input::AbsorbDone { host: survivor });
                }
                Output::Activate { host, epoch } => {
                    self.last_progress = self.last_progress.max(Instant::now());
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(host.0),
                            Track::Control,
                            format!("activated (epoch {epoch})"),
                            self.now_stamp(),
                        );
                        self.tracer.count(counter::RESCALE_JOINS, 1);
                    }
                }
                Output::Handoff { from, to, roles } => {
                    if self.tracer.is_enabled() {
                        self.tracer
                            .count(counter::RESCALE_HANDOFFS, roles.len() as u64);
                        self.tracer.span(
                            to.0,
                            SpanKind::Absorb,
                            format!("handoff {} role(s) from host {}", roles.len(), from.0),
                            self.now_stamp(),
                            SimDuration::ZERO,
                        );
                    }
                    self.pending.push_back(Input::AbsorbDone { host: to });
                }
                Output::Departed { host, epoch } => {
                    self.last_progress = self.last_progress.max(Instant::now());
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(host.0),
                            Track::Control,
                            format!("departed (epoch {epoch})"),
                            self.now_stamp(),
                        );
                        self.tracer.count(counter::RESCALE_DRAINS, 1);
                    }
                }
                Output::Resent { target, id } => {
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(target.0),
                            Track::Control,
                            format!("re-sent {id} from origin"),
                            self.now_stamp(),
                        );
                        self.tracer.count(counter::FRAGMENTS_RESENT, 1);
                    }
                }
                Output::Finished { .. } => {}
                Output::QueryAdmitted { query, tenant } => {
                    self.last_progress = self.last_progress.max(Instant::now());
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            None,
                            Track::Control,
                            format!("query {query} (tenant {tenant}) admitted"),
                            self.now_stamp(),
                        );
                        self.tracer.count(counter::QUERIES_ADMITTED, 1);
                    }
                }
                Output::QueryDone { query, tenant } => {
                    self.last_progress = self.last_progress.max(Instant::now());
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            None,
                            Track::Control,
                            format!("query {query} (tenant {tenant}) complete"),
                            self.now_stamp(),
                        );
                        self.tracer.count(counter::QUERIES_COMPLETED, 1);
                    }
                }
                Output::Teardown { reason } => self.fail(RingError::Teardown(reason)),
            }
        }
    }

    /// Puts one attempt of a transfer on the channel wire: rolls the
    /// fault dice, reports the fate back, and either delivers instantly
    /// (queued input) or parks the envelope on the timer thread for a
    /// delay spike.
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn apply_send(&mut self, from: HostId, to: HostId, tid: u64, attempt: u32, env: Envelope<P>) {
        self.bytes_forwarded[from.0] += env.bytes();
        let mut wire = env;
        // Dice keyed on the per-sender wire sequence (`env.seq`), the
        // numbering all three backends share.
        let seq = wire.seq;
        let dropped = self.plan.should_drop(from, seq, attempt);
        let corrupt = !dropped && self.plan.should_corrupt(from, seq, attempt);
        let delay = Duration::from(self.plan.delay_spike(from, seq, attempt));
        self.proto.attempt_fate(tid, dropped, corrupt);
        if corrupt {
            wire.checksum = !wire.checksum;
        }
        if attempt == 1 {
            self.tracer.count(counter::ENVELOPES_SENT, 1);
        } else if self.tracer.is_enabled() {
            self.tracer.event(
                Some(from.0),
                Track::Transmitter,
                format!("retransmit {} attempt {attempt}", wire.id),
                self.now_stamp(),
            );
            self.tracer.count(counter::RETRANSMITS, 1);
        }
        if dropped {
            // The medium ate this attempt; the wire still reports free.
            self.pending.push_back(Input::SendDone { from });
        } else if delay.is_zero() {
            self.pending
                .push_back(Input::Delivered { to, env: wire, tid });
            self.pending.push_back(Input::SendDone { from });
        } else {
            self.arm(
                Instant::now() + delay,
                CoTimer::Deliver {
                    to,
                    env: wire,
                    tid,
                    from,
                },
            );
        }
    }

    /// Converts the finished run into the common metrics shape.
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn into_result(self) -> (RingMetrics, SpanTracer) {
        let n = self.proto.config().hosts;
        let mut hosts = Vec::with_capacity(n);
        for h in 0..n {
            let busy = self.busy[h];
            let window = self.last_done[h].saturating_duration_since(self.epoch);
            let mut cpu = simnet::cpu::CpuAccount::new();
            cpu.charge(
                simnet::cpu::CostCategory::Compute,
                SimDuration::from(busy) * self.join_threads as u64,
            );
            hosts.push(HostMetrics {
                setup: SimDuration::ZERO,
                join_busy: busy.into(),
                sync: window.saturating_sub(busy).into(),
                join_window: window.into(),
                cpu,
                fragments_processed: self.proto.host(HostId(h)).fragments_processed(),
                bytes_forwarded: self.bytes_forwarded[h],
                retransmits: self.proto.retransmits(HostId(h)),
                checksum_mismatches: self.proto.checksum_mismatches(HostId(h)),
            });
        }
        let metrics = RingMetrics {
            hosts,
            wall_clock: self
                .last_progress
                .saturating_duration_since(self.epoch)
                .into(),
            fragments_completed: self.proto.fragments_completed(),
            heal_events: self.proto.heal_events(),
            detection_latency: SimDuration::ZERO,
            fragments_resent: self.proto.fragments_resent(),
            membership_epoch: self.proto.membership_epoch(),
            rescale_joins: self.proto.rescale_joins(),
            rescale_drains: self.proto.rescale_drains(),
            rescale_handoffs: self.proto.rescale_handoffs(),
            rescale_escalations: self.proto.rescale_escalations(),
            queries: self.proto.query_metrics(),
        };
        let mut tracer = self.tracer;
        if tracer.is_enabled() {
            for name in [
                counter::ENVELOPES_SENT,
                counter::ENVELOPES_RECEIVED,
                counter::FRAGMENTS_RETIRED,
                counter::RETRANSMITS,
                counter::CHECKSUM_MISMATCHES,
                counter::HEAL_EVENTS,
                counter::FRAGMENTS_RESENT,
                counter::RESCALE_JOINS,
                counter::RESCALE_DRAINS,
                counter::RESCALE_HANDOFFS,
            ] {
                tracer.count(name, 0);
            }
        }
        (metrics, tracer)
    }
}

/// The coordinated engine behind [`RingDriver::run`] with a rescale plan
/// attached: validates the plans, synthesizes quiet dice when no fault
/// plan accompanies the rescale, and drives the protocol over channels.
fn coordinated_run<P, F>(
    config: &RingConfig,
    fault_plan: Option<&FaultPlan>,
    rescale: &RescalePlan,
    fragments: Vec<Vec<P>>,
    process: F,
    trace: bool,
) -> Result<(RingMetrics, SpanTracer), RingError>
where
    P: PayloadBytes + Send + Clone,
    F: Fn(HostId, &P) + Sync,
{
    config.validate()?;
    let n = config.hosts;
    if fragments.len() != n {
        return Err(RingError::Shape {
            expected: n,
            got: fragments.len(),
        });
    }
    if let Some(plan) = fault_plan {
        if !plan.crashes().is_empty() || !plan.pauses().is_empty() {
            return Err(RingError::UnsupportedFault(
                "the threaded backend supports link loss, corruption and delay spikes (plus \
                 planned rescale); host crashes and pauses need ring healing — use the simulated \
                 backend (all fault kinds) or the tcp backend (loss, corruption, crashes, pauses)",
            ));
        }
    }
    if n > 64 {
        return Err(RingError::UnsupportedFault(
            "the exactly-once role bitmask supports at most 64 hosts",
        ));
    }
    if n == 1 && !rescale.is_quiet() {
        return Err(RingError::UnsupportedFault(
            "a single-host ring has no membership to rescale",
        ));
    }
    let in_ring = |h: HostId| h.0 < n;
    if !rescale.joins().iter().all(|j| in_ring(j.host))
        || !rescale.drains().iter().all(|d| in_ring(d.host))
    {
        return Err(RingError::UnsupportedFault(
            "rescale plan names a host outside the ring",
        ));
    }
    if rescale
        .joins()
        .iter()
        .any(|j| !fragments.get(j.host.0).is_none_or(Vec::is_empty))
    {
        return Err(RingError::UnsupportedFault(
            "a standby host must not contribute fragments before joining",
        ));
    }
    let total: usize = fragments.iter().map(Vec::len).sum();
    let mut batches = envelope_batches(fragments, n);
    if n == 1 {
        // A quiet plan on a single host (checked above): the degenerate
        // local path needs no coordinator.
        let shared = trace.then(SharedSpans::new);
        let envelopes = batches.pop().unwrap_or_default();
        let metrics = run_single_host(envelopes, process, shared.as_ref())?;
        let tracer = finish_spans(shared, &metrics);
        return Ok((metrics, tracer));
    }
    // Rescale rides the reliable transport: without explicit adversity
    // the medium still needs (quiet) dice and the acked hop protocol.
    let quiet_dice;
    let plan = match fault_plan {
        Some(p) => p,
        None => {
            quiet_dice = FaultPlan::seeded(rescale.seed());
            &quiet_dice
        }
    };
    let proto_cfg = ProtocolConfig {
        hosts: n,
        buffers_per_host: config.buffers_per_host,
        max_retransmits: config.max_retransmits,
        continuous: false,
        reliable: true,
        standby: rescale.standby_mask(),
    };
    let proto = RingProtocol::new(proto_cfg, batches);
    drive_coordinated(
        config,
        plan,
        Some(rescale),
        proto,
        total,
        |host, _query, payload: &P| process(host, payload),
        trace,
    )
}

/// The channel-and-thread machinery shared by every coordinated run:
/// spawns the per-host workers and the timer loop, feeds the protocol
/// until `total` fragments retired, and converts the coordinator into
/// metrics. `proto` arrives fully constructed (single- or multi-query).
fn drive_coordinated<P, F>(
    config: &RingConfig,
    plan: &FaultPlan,
    rescale: Option<&RescalePlan>,
    proto: RingProtocol<P>,
    total: usize,
    process: F,
    trace: bool,
) -> Result<(RingMetrics, SpanTracer), RingError>
where
    P: PayloadBytes + Send + Clone,
    F: Fn(HostId, u32, &P) + Sync,
{
    let n = config.hosts;
    let (events_tx, events_rx) = unbounded::<CoEvent<P>>();
    let (timer_tx, timer_rx) = unbounded::<(Instant, CoTimer<P>)>();
    crate::sync::thread::scope(|scope| {
        let mut jobs = Vec::with_capacity(n);
        for h in 0..n {
            let (jtx, jrx) = unbounded::<CoJob<P>>();
            let tx = events_tx.clone();
            let process = &process;
            scope.spawn(move || coordinated_worker(HostId(h), jrx, tx, process));
            jobs.push(jtx);
        }
        {
            let tx = events_tx.clone();
            scope.spawn(move || coordinated_timer_loop(timer_rx, tx));
        }

        let epoch = Instant::now();
        let mut co = CoRing {
            proto,
            plan,
            jobs,
            timer_tx,
            pending: VecDeque::new(),
            errors: ErrorCollector::default(),
            fatal: false,
            tracer: if trace {
                SpanTracer::enabled()
            } else {
                SpanTracer::disabled()
            },
            epoch,
            wall_ack_timeout: Duration::from_secs_f64(config.ack_timeout.as_secs_f64()),
            join_threads: config.join_threads,
            busy: vec![Duration::ZERO; n],
            last_done: vec![epoch; n],
            bytes_forwarded: vec![0; n],
            last_progress: epoch,
        };
        if let Some(rescale) = rescale {
            for j in rescale.joins() {
                let at = epoch + Duration::from(j.at.saturating_duration_since(SimTime::ZERO));
                co.arm(at, CoTimer::JoinRequest(j.host));
            }
            for d in rescale.drains() {
                let at = epoch + Duration::from(d.at.saturating_duration_since(SimTime::ZERO));
                co.arm(at, CoTimer::DrainRequest(d.host));
            }
        }
        for h in 0..n {
            let out = co.proto.input(Input::SetupDone { host: HostId(h) });
            co.apply(out);
        }

        while !co.fatal && co.proto.fragments_completed() < total {
            if let Some(input) = co.pending.pop_front() {
                let out = co.proto.input(input);
                co.apply(out);
                continue;
            }
            match events_rx.recv_timeout(RESCALE_WATCHDOG) {
                Ok(event) => co.handle(event),
                Err(RecvTimeoutError::Timeout) => {
                    co.fail(RingError::Teardown(RESCALE_STALLED));
                }
                Err(RecvTimeoutError::Disconnected) => {
                    co.fail(RingError::Teardown(teardown::RING_CLOSED));
                }
            }
        }

        // Consuming the coordinator drops its job and timer senders,
        // draining the worker and timer threads before the scope closes.
        match std::mem::take(&mut co.errors).first() {
            Some(err) => Err(err),
            None => Ok(co.into_result()),
        }
    })
}

/// Closes out a traced run: materialises every well-known counter — the
/// heal ones are always zero on this backend (healing needs the
/// simulator), and a classic run never retransmits — so trace consumers
/// see them observed rather than missing, and hands the tracer out of its
/// mutex.
pub(crate) fn finish_spans(shared: Option<SharedSpans>, metrics: &RingMetrics) -> SpanTracer {
    match shared {
        None => SpanTracer::disabled(),
        Some(shared) => {
            let mut tracer = shared.into_tracer();
            for name in [
                counter::ENVELOPES_SENT,
                counter::ENVELOPES_RECEIVED,
                counter::FRAGMENTS_RETIRED,
                counter::RETRANSMITS,
                counter::CHECKSUM_MISMATCHES,
            ] {
                tracer.count(name, 0);
            }
            tracer.count(counter::HEAL_EVENTS, metrics.heal_events as u64);
            tracer.count(counter::FRAGMENTS_RESENT, metrics.fragments_resent as u64);
            tracer.count(counter::RESCALE_JOINS, metrics.rescale_joins);
            tracer.count(counter::RESCALE_DRAINS, metrics.rescale_drains);
            tracer.count(counter::RESCALE_HANDOFFS, metrics.rescale_handoffs);
            tracer
        }
    }
}

/// Stop-and-wait sender side of one reliable hop: channels and wall-clock
/// deadlines around the protocol core's [`LinkSender`] policy.
#[allow(clippy::too_many_arguments)]
fn reliable_transmitter<P>(
    host: HostId,
    plan: &FaultPlan,
    ack_timeout: Duration,
    max_retransmits: u32,
    out_rx: Receiver<Envelope<P>>,
    wire_tx: Sender<Envelope<P>>,
    ack_rx: Receiver<u64>,
    forwarded: &AtomicU64,
    retransmits: &AtomicU64,
    spans: Option<&SharedSpans>,
) -> Result<(), RingError>
where
    P: PayloadBytes + Send + Clone,
{
    let mut link = LinkSender::new(max_retransmits);
    for mut env in out_rx.iter() {
        let seq = link.stamp(&mut env);
        let mut attempt = 1u32;
        if let Some(s) = spans {
            s.event(
                host.0,
                Track::Transmitter,
                format!("send {}", env.id),
                Some(counter::ENVELOPES_SENT),
            );
        }
        loop {
            let dropped = plan.should_drop(host, seq, attempt);
            let corrupt = !dropped && plan.should_corrupt(host, seq, attempt);
            let spike = plan.delay_spike(host, seq, attempt);
            if !dropped {
                let mut copy = env.clone();
                if corrupt {
                    copy.checksum = !copy.checksum;
                }
                if !spike.is_zero() {
                    std::thread::sleep(Duration::from_secs_f64(spike.as_secs_f64()));
                }
                forwarded.fetch_add(copy.bytes(), Ordering::Relaxed);
                if wire_tx.send(copy).is_err() {
                    return Err(RingError::Teardown(teardown::RECEIVER_GONE));
                }
            }
            // Await the ack with the shared backoff schedule on retries.
            // Stale acks (duplicate re-acks of earlier transfers) are
            // drained silently.
            let rto = ack_timeout * (1u32 << backoff_exponent(attempt));
            let deadline = Instant::now() + rto;
            let acked = loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                match ack_rx.recv_timeout(remaining) {
                    Ok(s) if s == seq => break true,
                    Ok(_) => continue,
                    Err(RecvTimeoutError::Timeout) => break false,
                    Err(RecvTimeoutError::Disconnected) => {
                        return Err(RingError::Teardown(teardown::RECEIVER_GONE));
                    }
                }
            };
            if acked {
                break;
            }
            match link.on_timeout(attempt) {
                TimeoutVerdict::Exhausted => {
                    return Err(RingError::Teardown(teardown::BUDGET_EXHAUSTED));
                }
                TimeoutVerdict::Retry { attempt: next, .. } => {
                    attempt = next;
                    retransmits.fetch_add(1, Ordering::Relaxed);
                    if let Some(s) = spans {
                        s.event(
                            host.0,
                            Track::Transmitter,
                            format!("retransmit {} attempt {}", env.id, attempt),
                            Some(counter::RETRANSMITS),
                        );
                    }
                }
            }
        }
    }
    // Dropping wire_tx closes the successor's receiver.
    Ok(())
}

/// Receiver side of one reliable hop: the NIC in front of the buffer pool,
/// classifying arrivals with the protocol core's [`LinkReceiver`].
fn reliable_receiver<P>(
    host: HostId,
    wire_rx: Receiver<Envelope<P>>,
    ack_tx: Sender<u64>,
    pool_tx: Sender<Envelope<P>>,
    mismatches: &AtomicU64,
    spans: Option<&SharedSpans>,
) where
    P: PayloadBytes + Send,
{
    let mut link = LinkReceiver::new();
    for env in wire_rx.iter() {
        match link.receive(&env) {
            Receipt::Corrupt => {
                // Corrupted in flight: count it and stay silent — the
                // sender's timeout turns the silence into a retransmission.
                mismatches.fetch_add(1, Ordering::Relaxed);
                if let Some(s) = spans {
                    s.event(
                        host.0,
                        Track::Receiver,
                        format!("checksum mismatch {}", env.id),
                        Some(counter::CHECKSUM_MISMATCHES),
                    );
                }
            }
            Receipt::Duplicate => {
                // Duplicate of an already delivered transfer (its ack raced
                // the sender's timeout): re-ack, do not deliver twice.
                let _ = ack_tx.send(env.seq);
                if let Some(s) = spans {
                    s.event(
                        host.0,
                        Track::Receiver,
                        format!("duplicate {}", env.id),
                        None,
                    );
                }
            }
            Receipt::Deliver => {
                // Ack before depositing: receipt is acknowledged at the NIC
                // even when the buffer pool exerts backpressure on the wire.
                let _ = ack_tx.send(env.seq);
                if let Some(s) = spans {
                    s.event(
                        host.0,
                        Track::Receiver,
                        format!("recv {}", env.id),
                        Some(counter::ENVELOPES_RECEIVED),
                    );
                }
                if pool_tx.send(env).is_err() {
                    break;
                }
            }
        }
    }
    // Dropping ack_tx / pool_tx unblocks the neighbors' shutdown.
}

/// What a join thread measured about itself.
struct JoinStats {
    busy: Duration,
    sync: Duration,
    window: Duration,
    processed: usize,
}

impl JoinStats {
    fn into_metrics(
        self,
        config: &RingConfig,
        bytes_forwarded: u64,
        retransmits: u64,
        checksum_mismatches: u64,
    ) -> HostMetrics {
        let mut cpu = simnet::cpu::CpuAccount::new();
        cpu.charge(
            simnet::cpu::CostCategory::Compute,
            SimDuration::from(self.busy) * config.join_threads as u64,
        );
        HostMetrics {
            setup: SimDuration::ZERO,
            join_busy: self.busy.into(),
            sync: self.sync.into(),
            join_window: self.window.into(),
            cpu,
            fragments_processed: self.processed,
            bytes_forwarded,
            retransmits,
            checksum_mismatches,
        }
    }
}

/// The join entity of one host. `backlog` holds the host's local
/// fragments, pre-numbered by [`envelope_batches`].
#[allow(clippy::too_many_arguments)]
fn join_entity<P, F>(
    host: HostId,
    ring_size: usize,
    total: usize,
    backlog: Vec<Envelope<P>>,
    rx: Receiver<Envelope<P>>,
    out_tx: Sender<Envelope<P>>,
    process: &F,
    spans: Option<&SharedSpans>,
    record_receives: bool,
) -> Result<JoinStats, RingError>
where
    P: PayloadBytes + Send,
    F: Fn(HostId, &P) + Sync,
{
    let mut backlog: std::collections::VecDeque<Envelope<P>> = backlog.into();
    let started = Instant::now();
    let mut busy = Duration::ZERO;
    let mut sync = Duration::ZERO;
    let mut processed = 0usize;
    while processed < total {
        // Prefer received envelopes: popping them frees buffer elements
        // and keeps the ring moving.
        let (mut env, received) = match rx.try_recv() {
            Ok(env) => (env, true),
            Err(TryRecvError::Empty) => match backlog.pop_front() {
                Some(env) => (env, false),
                None => {
                    let wait = Instant::now();
                    let Ok(env) = rx.recv() else {
                        return Err(RingError::Teardown(teardown::RING_CLOSED));
                    };
                    let waited = wait.elapsed();
                    sync += waited;
                    if let Some(s) = spans {
                        s.span(
                            host.0,
                            SpanKind::Sync,
                            "sync".to_string(),
                            wait,
                            waited,
                            None,
                        );
                    }
                    (env, true)
                }
            },
            Err(TryRecvError::Disconnected) => match backlog.pop_front() {
                Some(env) => (env, false),
                None => return Err(RingError::Teardown(teardown::RING_CLOSED)),
            },
        };
        if received && record_receives {
            if let Some(s) = spans {
                s.event(
                    host.0,
                    Track::Receiver,
                    format!("recv {}", env.id),
                    Some(counter::ENVELOPES_RECEIVED),
                );
            }
        }
        let hop = ring_size.saturating_sub(env.hops_remaining);
        let t = Instant::now();
        // Guard the user callback: a panic inside it must become a typed
        // teardown error, not a poisoned scope and a panic storm.
        let outcome = catch_unwind(AssertUnwindSafe(|| process(host, &env.payload)));
        let spent = t.elapsed();
        busy += spent;
        if outcome.is_err() {
            return Err(RingError::Teardown(teardown::CALLBACK_PANICKED));
        }
        processed += 1;
        if let Some(s) = spans {
            s.span(
                host.0,
                SpanKind::Join,
                format!("join {}", env.id),
                t,
                spent,
                Some(hop),
            );
        }
        if env.consume_hop() {
            if out_tx.send(env).is_err() {
                return Err(RingError::Teardown(teardown::TX_GONE));
            }
        } else if let Some(s) = spans {
            s.event(
                host.0,
                Track::Join,
                format!("retired {}", env.id),
                Some(counter::FRAGMENTS_RETIRED),
            );
        }
    }
    // Closing the outgoing queue lets the transmitter finish and close the
    // successor's pool in turn.
    drop(out_tx);
    Ok(JoinStats {
        busy,
        sync,
        window: started.elapsed(),
        processed,
    })
}

/// Degenerate single-host "ring": process the backlog locally. Shared
/// with the TCP backend, whose single-host case has no sockets to run.
pub(crate) fn run_single_host<P, F>(
    envelopes: Vec<Envelope<P>>,
    process: F,
    spans: Option<&SharedSpans>,
) -> Result<RingMetrics, RingError>
where
    P: PayloadBytes + Send,
    F: Fn(HostId, &P) + Sync,
{
    let started = Instant::now();
    let mut busy = Duration::ZERO;
    let mut processed = 0usize;
    for env in envelopes {
        let t = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| process(HostId(0), &env.payload)));
        let spent = t.elapsed();
        busy += spent;
        if outcome.is_err() {
            return Err(RingError::Teardown(teardown::CALLBACK_PANICKED));
        }
        if let Some(s) = spans {
            s.span(
                0,
                SpanKind::Join,
                format!("join {}", env.id),
                t,
                spent,
                Some(0),
            );
            s.event(
                0,
                Track::Join,
                format!("retired {}", env.id),
                Some(counter::FRAGMENTS_RETIRED),
            );
        }
        processed += 1;
    }
    let host = HostMetrics {
        setup: SimDuration::ZERO,
        join_busy: busy.into(),
        sync: SimDuration::ZERO,
        join_window: started.elapsed().into(),
        cpu: simnet::cpu::CpuAccount::new(),
        fragments_processed: processed,
        bytes_forwarded: 0,
        ..HostMetrics::default()
    };
    Ok(RingMetrics {
        hosts: vec![host],
        wall_clock: started.elapsed().into(),
        fragments_completed: processed,
        ..RingMetrics::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::SimTime;
    use std::sync::atomic::AtomicUsize;

    fn payloads(hosts: usize, per_host: usize, bytes: usize) -> Vec<Vec<Vec<u8>>> {
        (0..hosts)
            .map(|_| (0..per_host).map(|_| vec![0u8; bytes]).collect())
            .collect()
    }

    fn run_plain(
        config: &RingConfig,
        fragments: Vec<Vec<Vec<u8>>>,
        process: impl Fn(HostId, &Vec<u8>) + Sync,
    ) -> Result<RingMetrics, RingError> {
        RingDriver::new(config)
            .run(fragments, process)
            .map(|(metrics, _)| metrics)
    }

    #[test]
    fn every_host_sees_every_fragment() {
        let hosts = 4;
        let counts: Vec<AtomicUsize> = (0..hosts).map(|_| AtomicUsize::new(0)).collect();
        let metrics = run_plain(&RingConfig::paper(hosts), payloads(hosts, 3, 64), |h, _| {
            counts[h.0].fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(metrics.fragments_completed, 12);
        for c in &counts {
            assert_eq!(c.load(Ordering::SeqCst), 12);
        }
        assert_eq!(
            metrics.total_bytes_forwarded() as usize,
            12 * 64 * (hosts - 1)
        );
        assert!(metrics.fault_free());
    }

    #[test]
    fn single_host_processes_locally() {
        let metrics = run_plain(&RingConfig::paper(1), payloads(1, 5, 8), |_, _| {}).unwrap();
        assert_eq!(metrics.fragments_completed, 5);
        assert_eq!(metrics.hosts[0].bytes_forwarded, 0);
    }

    #[test]
    fn tight_buffers_do_not_deadlock() {
        // 1 buffer element per host and many fragments: maximum pressure
        // on the flow control.
        let hosts = 5;
        let cfg = RingConfig::paper(hosts).with_buffers(1);
        let metrics = run_plain(&cfg, payloads(hosts, 8, 16), |_, _| {}).unwrap();
        assert_eq!(metrics.fragments_completed, 40);
    }

    #[test]
    fn uneven_distribution_completes() {
        let hosts = 3;
        let mut frags = payloads(hosts, 0, 0);
        frags[2] = (0..7).map(|_| vec![0u8; 32]).collect();
        let metrics = run_plain(&RingConfig::paper(hosts), frags, |_, _| {}).unwrap();
        assert_eq!(metrics.fragments_completed, 7);
        for h in &metrics.hosts {
            assert_eq!(h.fragments_processed, 7);
        }
    }

    #[test]
    fn slow_consumers_still_complete() {
        let hosts = 3;
        let metrics = run_plain(&RingConfig::paper(hosts), payloads(hosts, 2, 16), |h, _| {
            if h.0 == 1 {
                std::thread::sleep(Duration::from_millis(2));
            }
        })
        .unwrap();
        assert_eq!(metrics.fragments_completed, 6);
        assert!(metrics.hosts[1].join_busy >= SimDuration::from_millis(12));
    }

    #[test]
    fn empty_run_completes() {
        let metrics = run_plain(&RingConfig::paper(3), payloads(3, 0, 0), |_, _| {}).unwrap();
        assert_eq!(metrics.fragments_completed, 0);
    }

    #[test]
    fn stress_many_fragments_many_rounds() {
        // A repeated-run stress test: the protocol must be deadlock-free
        // under arbitrary real-thread interleavings.
        for round in 0..10 {
            let hosts = 2 + (round % 4);
            let metrics =
                run_plain(&RingConfig::paper(hosts), payloads(hosts, 6, 8), |_, _| {}).unwrap();
            assert_eq!(metrics.fragments_completed, hosts * 6, "round {round}");
        }
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let err = run_plain(&RingConfig::paper(0), vec![], |_, _| {}).unwrap_err();
        assert!(matches!(err, RingError::Config(_)));
    }

    #[test]
    fn shape_mismatch_is_a_typed_error() {
        let err = run_plain(&RingConfig::paper(3), payloads(2, 1, 8), |_, _| {}).unwrap_err();
        assert_eq!(
            err,
            RingError::Shape {
                expected: 3,
                got: 2
            }
        );
    }

    /// Regression: a panicking join callback used to unwind its worker
    /// thread, close its channels and turn every neighbor's teardown
    /// `expect` into a cascading panic across the scope. It must surface
    /// as one typed [`RingError::Teardown`] naming the root cause.
    #[test]
    fn panicking_callback_surfaces_as_teardown_error() {
        let hosts = 3;
        let result = run_plain(&RingConfig::paper(hosts), payloads(hosts, 2, 16), |h, _| {
            if h.0 == 1 {
                panic!("worker exploded");
            }
        });
        match result {
            Err(RingError::Teardown(msg)) => assert_eq!(msg, teardown::CALLBACK_PANICKED),
            other => panic!("expected a teardown error, got {other:?}"),
        }
    }

    /// Same premature-close regression on the reliable transport: the
    /// receiver/transmitter threads observe the closed channels and return
    /// typed errors instead of panicking on their sends.
    #[test]
    fn reliable_panicking_callback_surfaces_as_teardown_error() {
        let hosts = 3;
        let cfg = RingConfig::paper(hosts).with_ack_timeout(SimDuration::from_millis(20));
        let plan = FaultPlan::seeded(5);
        let result = RingDriver::new(&cfg).with_fault_plan(&plan).run(
            payloads(hosts, 2, 16),
            |h, _: &Vec<u8>| {
                if h.0 == 2 {
                    panic!("worker exploded");
                }
            },
        );
        match result {
            Err(RingError::Teardown(msg)) => assert_eq!(msg, teardown::CALLBACK_PANICKED),
            other => panic!("expected a teardown error, got {other:?}"),
        }
    }

    #[test]
    fn single_host_panicking_callback_is_typed_too() {
        let result = run_plain(&RingConfig::paper(1), payloads(1, 2, 8), |_, _| {
            panic!("worker exploded");
        });
        assert_eq!(
            result.unwrap_err(),
            RingError::Teardown(teardown::CALLBACK_PANICKED)
        );
    }

    #[test]
    fn traced_run_reconciles_with_metrics() {
        let hosts = 3;
        let (metrics, spans) = RingDriver::new(&RingConfig::paper(hosts))
            .with_tracer(true)
            .run(payloads(hosts, 3, 64), |_, _: &Vec<u8>| {
                std::thread::sleep(Duration::from_micros(200))
            })
            .unwrap();
        assert!(spans.is_enabled());
        for (h, host) in metrics.hosts.iter().enumerate() {
            assert_eq!(
                spans.total(h, SpanKind::Join),
                host.join_busy,
                "host {h}: join span total must equal join_busy"
            );
            assert_eq!(
                spans.total(h, SpanKind::Sync),
                host.sync,
                "host {h}: sync span total must equal sync"
            );
        }
        assert_eq!(
            spans.counters().get(counter::FRAGMENTS_RETIRED),
            metrics.fragments_completed as u64
        );
        // Each envelope is sent (hosts-1) times around the ring.
        assert_eq!(
            spans.counters().get(counter::ENVELOPES_SENT),
            (metrics.fragments_completed * (hosts - 1)) as u64
        );
        assert_eq!(
            spans.counters().get(counter::ENVELOPES_SENT),
            spans.counters().get(counter::ENVELOPES_RECEIVED)
        );
        assert_eq!(spans.counters().get(counter::HEAL_EVENTS), 0);
    }

    #[test]
    fn untraced_run_returns_a_disabled_tracer() {
        let (metrics, spans) = RingDriver::new(&RingConfig::paper(2))
            .run(payloads(2, 2, 8), |_, _: &Vec<u8>| {})
            .unwrap();
        assert_eq!(metrics.fragments_completed, 4);
        assert!(!spans.is_enabled());
        assert!(spans.spans().is_empty());
    }

    #[test]
    fn reliable_traced_run_counts_retransmits() {
        let hosts = 3;
        let plan = FaultPlan::seeded(42).lossy_link(HostId(0), 0.4);
        let cfg = RingConfig::paper(hosts).with_ack_timeout(SimDuration::from_millis(20));
        let (metrics, spans) = RingDriver::new(&cfg)
            .with_fault_plan(&plan)
            .with_tracer(true)
            .run(payloads(hosts, 4, 32), |_, _: &Vec<u8>| {})
            .unwrap();
        assert_eq!(metrics.fragments_completed, 12);
        assert_eq!(
            spans.counters().get(counter::RETRANSMITS),
            metrics.total_retransmits(),
            "traced retransmit events must match the metrics"
        );
        assert!(spans.count_events("retransmit") > 0);
    }

    #[test]
    fn reliable_quiet_plan_is_fault_free() {
        let hosts = 3;
        let counts: Vec<AtomicUsize> = (0..hosts).map(|_| AtomicUsize::new(0)).collect();
        let plan = FaultPlan::seeded(1);
        let (metrics, _) = RingDriver::new(&RingConfig::paper(hosts))
            .with_fault_plan(&plan)
            .run(payloads(hosts, 3, 32), |h, _: &Vec<u8>| {
                counts[h.0].fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        assert_eq!(metrics.fragments_completed, 9);
        for c in &counts {
            assert_eq!(c.load(Ordering::SeqCst), 9);
        }
        assert!(
            metrics.fault_free(),
            "quiet plan must report zero fault counters"
        );
    }

    #[test]
    fn lossy_link_is_repaired_by_retransmission() {
        let hosts = 3;
        let plan = FaultPlan::seeded(42).lossy_link(HostId(0), 0.4);
        let counts: Vec<AtomicUsize> = (0..hosts).map(|_| AtomicUsize::new(0)).collect();
        let cfg = RingConfig::paper(hosts).with_ack_timeout(SimDuration::from_millis(20));
        let (metrics, _) = RingDriver::new(&cfg)
            .with_fault_plan(&plan)
            .run(payloads(hosts, 4, 32), |h, _: &Vec<u8>| {
                counts[h.0].fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        assert_eq!(metrics.fragments_completed, 12);
        // Exactly-once delivery despite losses: no host saw a duplicate.
        for c in &counts {
            assert_eq!(c.load(Ordering::SeqCst), 12);
        }
        assert!(
            metrics.hosts[0].retransmits > 0,
            "the lossy link must have provoked retransmissions"
        );
    }

    #[test]
    fn corrupt_link_is_detected_by_checksums() {
        let hosts = 3;
        let plan = FaultPlan::seeded(7).corrupt_link(HostId(0), 0.5);
        let cfg = RingConfig::paper(hosts).with_ack_timeout(SimDuration::from_millis(20));
        let (metrics, _) = RingDriver::new(&cfg)
            .with_fault_plan(&plan)
            .run(payloads(hosts, 4, 32), |_, _: &Vec<u8>| {})
            .unwrap();
        assert_eq!(metrics.fragments_completed, 12);
        // Corruption on the hop out of H0 is detected by H1's receiver and
        // repaired by H0's retransmissions.
        assert!(metrics.hosts[1].checksum_mismatches > 0, "{metrics:?}");
        assert!(metrics.hosts[0].retransmits > 0);
        assert_eq!(
            metrics.total_checksum_mismatches(),
            metrics.hosts[1].checksum_mismatches,
            "only H1 receives from the corrupting link"
        );
    }

    #[test]
    fn delay_spikes_do_not_lose_envelopes() {
        let hosts = 3;
        let plan = FaultPlan::seeded(3).delay_spikes(HostId(1), 0.5, SimDuration::from_micros(200));
        let (metrics, _) = RingDriver::new(&RingConfig::paper(hosts))
            .with_fault_plan(&plan)
            .run(payloads(hosts, 3, 16), |_, _: &Vec<u8>| {})
            .unwrap();
        assert_eq!(metrics.fragments_completed, 9);
    }

    #[test]
    fn crash_plans_are_rejected() {
        let plan = FaultPlan::seeded(0).crash_host(HostId(1), SimTime::from_nanos(1));
        let err = RingDriver::new(&RingConfig::paper(3))
            .with_fault_plan(&plan)
            .run(payloads(3, 1, 8), |_, _: &Vec<u8>| {})
            .unwrap_err();
        assert!(matches!(err, RingError::UnsupportedFault(_)));
    }

    /// The same seeded schedule the socket backend runs: host 2 starts as
    /// a standby, joins at 1 ms and a founding member drains at 8 ms. The
    /// membership counters are pure functions of the schedule, so they
    /// must land on the exact values the sim and tcp backends report.
    #[test]
    fn planned_join_and_drain_on_real_threads() {
        let hosts = 3;
        let cfg = RingConfig::paper(hosts)
            .with_ack_timeout(SimDuration::from_millis(20))
            .with_max_retransmits(6);
        let rescale = RescalePlan::seeded(77)
            .join_host(HostId(2), SimTime::from_nanos(1_000_000))
            .drain_host(HostId(0), SimTime::from_nanos(8_000_000));
        let mut frags = payloads(hosts, 3, 64);
        frags[2].clear();
        let counts: Vec<AtomicUsize> = (0..hosts).map(|_| AtomicUsize::new(0)).collect();
        let (metrics, spans) = RingDriver::new(&cfg)
            .with_rescale_plan(&rescale)
            .with_tracer(true)
            .run(frags, |h, _: &Vec<u8>| {
                counts[h.0].fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(2));
            })
            .unwrap();
        assert_eq!(metrics.fragments_completed, 6);
        assert_eq!(metrics.membership_epoch, 2, "{metrics:?}");
        assert_eq!(metrics.rescale_joins, 1);
        assert_eq!(metrics.rescale_drains, 1);
        assert_eq!(metrics.rescale_handoffs, 1);
        assert_eq!(metrics.rescale_escalations, 0);
        assert_eq!(metrics.heal_events, 0, "a clean drain never heals");
        assert!(
            counts[2].load(Ordering::SeqCst) > 0,
            "the joined host must process fragments after activation"
        );
        assert_eq!(spans.count_events("activated"), 1);
        assert_eq!(spans.count_events("departed"), 1);
        let counters = spans.counters();
        assert_eq!(counters.get(counter::RESCALE_JOINS), 1);
        assert_eq!(counters.get(counter::RESCALE_DRAINS), 1);
        assert_eq!(counters.get(counter::RESCALE_HANDOFFS), 1);
    }

    /// A rescale plan without a fault plan still runs the acked reliable
    /// transport under quiet dice, and a drain alone bumps one epoch.
    #[test]
    fn planned_drain_alone_departs_cleanly() {
        let hosts = 3;
        let cfg = RingConfig::paper(hosts).with_ack_timeout(SimDuration::from_millis(20));
        let rescale = RescalePlan::seeded(11).drain_host(HostId(1), SimTime::from_nanos(4_000_000));
        let (metrics, _) = RingDriver::new(&cfg)
            .with_rescale_plan(&rescale)
            .run(payloads(hosts, 2, 32), |_, _: &Vec<u8>| {
                std::thread::sleep(Duration::from_millis(1));
            })
            .unwrap();
        assert_eq!(metrics.fragments_completed, 6);
        assert_eq!(metrics.membership_epoch, 1);
        assert_eq!(metrics.rescale_drains, 1);
        assert_eq!(metrics.rescale_joins, 0);
        assert_eq!(metrics.rescale_handoffs, 1);
        assert_eq!(metrics.heal_events, 0);
        // The drained host keeps its processed credit for the fragments
        // it joined before departing.
        assert!(metrics.hosts[1].fragments_processed > 0);
    }

    #[test]
    fn rescale_plans_are_validated_up_front() {
        let out_of_range = RescalePlan::seeded(1).drain_host(HostId(9), SimTime::from_nanos(1_000));
        let err = RingDriver::new(&RingConfig::paper(2))
            .with_rescale_plan(&out_of_range)
            .run(payloads(2, 1, 8), |_, _: &Vec<u8>| {})
            .unwrap_err();
        assert!(matches!(err, RingError::UnsupportedFault(_)));

        let standby_with_fragments =
            RescalePlan::seeded(1).join_host(HostId(1), SimTime::from_nanos(1_000));
        let err = RingDriver::new(&RingConfig::paper(2))
            .with_rescale_plan(&standby_with_fragments)
            .run(payloads(2, 1, 8), |_, _: &Vec<u8>| {})
            .unwrap_err();
        assert!(matches!(err, RingError::UnsupportedFault(_)));

        let single = RescalePlan::seeded(1).drain_host(HostId(0), SimTime::from_nanos(1_000));
        let err = RingDriver::new(&RingConfig::paper(1))
            .with_rescale_plan(&single)
            .run(payloads(1, 1, 8), |_, _: &Vec<u8>| {})
            .unwrap_err();
        assert!(matches!(err, RingError::UnsupportedFault(_)));

        // Crash faults stay unsupported even in coordinated mode.
        let crash = FaultPlan::seeded(0).crash_host(HostId(1), SimTime::from_nanos(1));
        let quiet = RescalePlan::seeded(0);
        let err = RingDriver::new(&RingConfig::paper(3))
            .with_fault_plan(&crash)
            .with_rescale_plan(&quiet)
            .run(payloads(3, 1, 8), |_, _: &Vec<u8>| {})
            .unwrap_err();
        assert!(matches!(err, RingError::UnsupportedFault(_)));
    }

    #[test]
    fn multiplexed_queries_complete_on_real_threads() {
        let hosts = 3;
        let queries = 3;
        let cfg = RingConfig::paper(hosts)
            .with_ack_timeout(SimDuration::from_millis(50))
            .with_max_retransmits(6);
        let tenants: Vec<(u32, Vec<Vec<Vec<u8>>>)> = (0..queries)
            .map(|q| (q as u32, payloads(hosts, 2, 64)))
            .collect();
        let counts: Vec<AtomicUsize> = (0..hosts).map(|_| AtomicUsize::new(0)).collect();
        let (metrics, spans) = RingDriver::new(&cfg)
            .with_tracer(true)
            .run_queries(tenants, 2, |h, _query, _: &Vec<u8>| {
                counts[h.0].fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        assert_eq!(metrics.fragments_completed, queries * hosts * 2);
        assert_eq!(metrics.queries.len(), queries);
        for (q, m) in metrics.queries.iter().enumerate() {
            assert_eq!(m.tenant, q as u32);
            assert!(m.completed, "query {q}: {m:?}");
            assert_eq!(m.fragments_completed, hosts * 2);
        }
        for c in &counts {
            assert_eq!(c.load(Ordering::SeqCst), queries * hosts * 2);
        }
        let counters = spans.counters();
        assert_eq!(counters.get(counter::QUERIES_ADMITTED), queries as u64);
        assert_eq!(counters.get(counter::QUERIES_COMPLETED), queries as u64);
    }

    #[test]
    fn multiplexed_query_shapes_are_validated() {
        let cfg = RingConfig::paper(2);
        let bad_shape = vec![(0u32, payloads(3, 1, 8))];
        let err = RingDriver::new(&cfg)
            .run_queries(bad_shape, 1, |_, _, _: &Vec<u8>| {})
            .unwrap_err();
        assert!(matches!(err, RingError::Shape { .. }));

        let err = RingDriver::new(&cfg)
            .run_queries(Vec::<(u32, Vec<Vec<Vec<u8>>>)>::new(), 1, |_, _, _| {})
            .unwrap_err();
        assert!(matches!(err, RingError::UnsupportedFault(_)));

        let single = RingConfig::paper(1);
        let err = RingDriver::new(&single)
            .run_queries(vec![(0u32, payloads(1, 1, 8))], 1, |_, _, _: &Vec<u8>| {})
            .unwrap_err();
        assert!(matches!(err, RingError::UnsupportedFault(_)));
    }
}
