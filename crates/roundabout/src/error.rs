//! Typed errors of the ring backends.

use crate::config::ConfigError;

/// Why a ring run could not start (or was refused), so callers can degrade
/// gracefully instead of aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingError {
    /// The configuration violated an internal constraint.
    Config(ConfigError),
    /// `fragments.len()` did not match the configured host count.
    Shape {
        /// Host count the configuration asked for.
        expected: usize,
        /// Fragment lists actually supplied.
        got: usize,
    },
    /// The requested fault class is not supported by this backend (e.g.
    /// host crashes on the thread backend, which has no ring healing).
    UnsupportedFault(&'static str),
}

impl From<ConfigError> for RingError {
    fn from(e: ConfigError) -> Self {
        RingError::Config(e)
    }
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::Config(e) => write!(f, "{e}"),
            RingError::Shape { expected, got } => write!(
                f,
                "need one fragment list per host ({expected} hosts, {got} lists)"
            ),
            RingError::UnsupportedFault(what) => write!(f, "unsupported fault: {what}"),
        }
    }
}

impl std::error::Error for RingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RingError::Config(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RingConfig;

    #[test]
    fn config_errors_convert_and_display() {
        let err: RingError = RingConfig::paper(0).validate().unwrap_err().into();
        assert!(err.to_string().contains("at least one host"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn shape_error_names_both_counts() {
        let err = RingError::Shape { expected: 3, got: 5 };
        assert!(err.to_string().contains("3 hosts"));
        assert!(err.to_string().contains("5 lists"));
    }
}
