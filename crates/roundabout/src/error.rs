//! Typed errors of the ring backends.

use crate::config::ConfigError;

/// Why an incoming TCP frame could not be decoded. The decoder never
/// panics on malformed bytes; every corruption class maps to a variant
/// here so the driver can tear the ring down with a diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The frame kind byte was not one of the known wire kinds.
    BadKind(u8),
    /// The length prefix exceeded the frame size cap — either corruption
    /// or a peer speaking a different protocol.
    Oversized {
        /// Length the prefix claimed.
        len: u32,
        /// Largest frame this decoder accepts.
        max: u32,
    },
    /// A frame body was shorter than its fixed header requires.
    Truncated {
        /// Bytes the frame kind needs at minimum.
        needed: usize,
        /// Bytes the length prefix actually delimited.
        got: usize,
    },
    /// The payload bytes inside an envelope frame failed to decode.
    BadPayload(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadKind(kind) => write!(f, "unknown frame kind {kind:#04x}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte cap")
            }
            FrameError::Truncated { needed, got } => {
                write!(f, "frame body truncated: need {needed} bytes, got {got}")
            }
            FrameError::BadPayload(what) => write!(f, "bad frame payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Why a ring run could not start (or was refused), so callers can degrade
/// gracefully instead of aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingError {
    /// The configuration violated an internal constraint.
    Config(ConfigError),
    /// `fragments.len()` did not match the configured host count.
    Shape {
        /// Host count the configuration asked for.
        expected: usize,
        /// Fragment lists actually supplied.
        got: usize,
    },
    /// The requested fault or rescale class is not supported by this
    /// backend, or the rescale plan itself is malformed. Per-backend
    /// support:
    ///
    /// * **sim** — link loss, corruption, delay spikes, host crashes,
    ///   pauses, slowdowns, and planned rescale (join/drain);
    /// * **threads** — link loss, corruption, delay spikes, and planned
    ///   rescale; crashes and pauses are refused (no ring healing in
    ///   classic mode);
    /// * **tcp** — link loss, corruption, delay spikes, host crashes,
    ///   pauses, and planned rescale; slowdowns are a simulator-only
    ///   cost-model concept;
    /// * **reactor** — exactly the tcp backend's support (same wire
    ///   protocol, same dice), realized on one event-loop thread.
    ///
    /// Rescale plans are additionally validated up front on every
    /// backend: at most 64 hosts (the exactly-once role bitmask), no
    /// single-host rescale, every named host inside the ring, and
    /// standby hosts contributing zero fragments.
    UnsupportedFault(&'static str),
    /// The ring tore down mid-run: a worker died (for example the join
    /// callback panicked, or a transfer exhausted its retransmission
    /// budget) and its channels closed while fragments were still
    /// outstanding. The message names the first failure observed.
    Teardown(&'static str),
    /// A TCP peer sent bytes the frame decoder could not parse.
    Frame(FrameError),
    /// A socket operation failed while building or running the TCP ring.
    /// The message names the operation; the underlying `io::Error` is
    /// printed to it at the failure site (it is not `Clone`, so it cannot
    /// ride along here).
    Socket(&'static str),
}

impl From<ConfigError> for RingError {
    fn from(e: ConfigError) -> Self {
        RingError::Config(e)
    }
}

impl From<FrameError> for RingError {
    fn from(e: FrameError) -> Self {
        RingError::Frame(e)
    }
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::Config(e) => write!(f, "{e}"),
            RingError::Shape { expected, got } => write!(
                f,
                "need one fragment list per host ({expected} hosts, {got} lists)"
            ),
            RingError::UnsupportedFault(what) => write!(f, "unsupported fault: {what}"),
            RingError::Teardown(what) => write!(f, "ring teardown: {what}"),
            RingError::Frame(e) => write!(f, "frame decode failed: {e}"),
            RingError::Socket(what) => write!(f, "socket failure: {what}"),
        }
    }
}

impl std::error::Error for RingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RingError::Config(e) => Some(e),
            RingError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RingConfig;

    #[test]
    fn config_errors_convert_and_display() {
        let err: RingError = RingConfig::paper(0).validate().unwrap_err().into();
        assert!(err.to_string().contains("at least one host"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn teardown_error_carries_the_first_failure() {
        let err = RingError::Teardown("join callback panicked");
        assert_eq!(err.to_string(), "ring teardown: join callback panicked");
        assert!(std::error::Error::source(&err).is_none());
    }

    #[test]
    fn frame_errors_convert_and_chain() {
        let err: RingError = FrameError::BadKind(0x7f).into();
        assert!(err.to_string().contains("0x7f"));
        assert!(std::error::Error::source(&err).is_some());
        let err: RingError = FrameError::Oversized {
            len: u32::MAX,
            max: 1 << 28,
        }
        .into();
        assert!(err.to_string().contains("cap"));
        let err = RingError::Frame(FrameError::Truncated { needed: 48, got: 7 });
        assert!(err.to_string().contains("need 48 bytes, got 7"));
    }

    #[test]
    fn shape_error_names_both_counts() {
        let err = RingError::Shape {
            expected: 3,
            got: 5,
        };
        assert!(err.to_string().contains("3 hosts"));
        assert!(err.to_string().contains("5 lists"));
    }
}
