//! Typed errors of the ring backends.

use crate::config::ConfigError;

/// Why a ring run could not start (or was refused), so callers can degrade
/// gracefully instead of aborting the process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingError {
    /// The configuration violated an internal constraint.
    Config(ConfigError),
    /// `fragments.len()` did not match the configured host count.
    Shape {
        /// Host count the configuration asked for.
        expected: usize,
        /// Fragment lists actually supplied.
        got: usize,
    },
    /// The requested fault class is not supported by this backend (e.g.
    /// host crashes on the thread backend, which has no ring healing).
    UnsupportedFault(&'static str),
    /// The ring tore down mid-run: a worker died (for example the join
    /// callback panicked, or a transfer exhausted its retransmission
    /// budget) and its channels closed while fragments were still
    /// outstanding. The message names the first failure observed.
    Teardown(&'static str),
}

impl From<ConfigError> for RingError {
    fn from(e: ConfigError) -> Self {
        RingError::Config(e)
    }
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::Config(e) => write!(f, "{e}"),
            RingError::Shape { expected, got } => write!(
                f,
                "need one fragment list per host ({expected} hosts, {got} lists)"
            ),
            RingError::UnsupportedFault(what) => write!(f, "unsupported fault: {what}"),
            RingError::Teardown(what) => write!(f, "ring teardown: {what}"),
        }
    }
}

impl std::error::Error for RingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RingError::Config(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RingConfig;

    #[test]
    fn config_errors_convert_and_display() {
        let err: RingError = RingConfig::paper(0).validate().unwrap_err().into();
        assert!(err.to_string().contains("at least one host"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn teardown_error_carries_the_first_failure() {
        let err = RingError::Teardown("join callback panicked");
        assert_eq!(err.to_string(), "ring teardown: join callback panicked");
        assert!(std::error::Error::source(&err).is_none());
    }

    #[test]
    fn shape_error_names_both_counts() {
        let err = RingError::Shape {
            expected: 3,
            got: 5,
        };
        assert!(err.to_string().contains("3 hosts"));
        assert!(err.to_string().contains("5 lists"));
    }
}
