//! Envelopes: the unit of data that circulates in the Data Roundabout.
//!
//! The transport layer always moves a *whole ring-buffer element* — never a
//! single tuple (§III-D) — so the circulating unit is an [`Envelope`]: an
//! opaque payload plus the routing state the ring needs (origin host and
//! remaining hops). After a full revolution (`hops_remaining == 0` once
//! every host processed it) an envelope retires at the host that consumed
//! it last, freeing its buffer element.

use serde::{Deserialize, Serialize};
use simnet::topology::HostId;

/// Payloads the roundabout can carry: anything that knows its wire size.
pub trait PayloadBytes {
    /// Number of bytes this payload occupies in a ring-buffer element (and
    /// therefore on the wire when forwarded).
    fn payload_bytes(&self) -> u64;
}

impl PayloadBytes for relation::Relation {
    fn payload_bytes(&self) -> u64 {
        self.byte_volume()
    }
}

impl PayloadBytes for mem_joins::PreparedFragment {
    fn payload_bytes(&self) -> u64 {
        self.byte_volume()
    }
}

impl PayloadBytes for Vec<u8> {
    fn payload_bytes(&self) -> u64 {
        self.len() as u64
    }
}

/// Identifier of a circulating fragment, unique within one run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct FragmentId(pub usize);

impl std::fmt::Display for FragmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// One circulating ring-buffer element.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope<P> {
    /// Identity of the fragment inside.
    pub id: FragmentId,
    /// Host the fragment started at.
    pub origin: HostId,
    /// Hosts that still need to process this envelope (including the one
    /// currently holding it). Starts at the ring size; the envelope is
    /// forwarded while the count stays positive after processing.
    pub hops_remaining: usize,
    /// The data.
    pub payload: P,
}

impl<P: PayloadBytes> Envelope<P> {
    /// Creates an envelope at its origin for a ring of `ring_size` hosts.
    ///
    /// # Panics
    ///
    /// Panics if `ring_size` is zero.
    pub fn new(id: FragmentId, origin: HostId, ring_size: usize, payload: P) -> Self {
        assert!(ring_size > 0, "ring size must be positive");
        Envelope {
            id,
            origin,
            hops_remaining: ring_size,
            payload,
        }
    }

    /// Bytes this envelope occupies on the wire.
    pub fn bytes(&self) -> u64 {
        self.payload.payload_bytes()
    }

    /// Marks one processing step done. Returns `true` if the envelope must
    /// still be forwarded to the next host, `false` if it retires here.
    ///
    /// # Panics
    ///
    /// Panics if called on an already retired envelope.
    pub fn consume_hop(&mut self) -> bool {
        assert!(self.hops_remaining > 0, "envelope already completed its revolution");
        self.hops_remaining -= 1;
        self.hops_remaining > 0
    }

    /// True once every host has processed the envelope.
    pub fn is_retired(&self) -> bool {
        self.hops_remaining == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(ring: usize) -> Envelope<Vec<u8>> {
        Envelope::new(FragmentId(0), HostId(0), ring, vec![0u8; 100])
    }

    #[test]
    fn full_revolution_consumes_all_hops() {
        let mut e = env(4);
        assert!(e.consume_hop()); // processed at H0, forward
        assert!(e.consume_hop()); // H1
        assert!(e.consume_hop()); // H2
        assert!(!e.consume_hop()); // H3: retire
        assert!(e.is_retired());
    }

    #[test]
    fn single_host_ring_retires_immediately() {
        let mut e = env(1);
        assert!(!e.consume_hop());
        assert!(e.is_retired());
    }

    #[test]
    #[should_panic(expected = "already completed")]
    fn over_consuming_panics() {
        let mut e = env(1);
        let _ = e.consume_hop();
        let _ = e.consume_hop();
    }

    #[test]
    fn bytes_come_from_the_payload() {
        assert_eq!(env(2).bytes(), 100);
        let rel = relation::GenSpec::uniform(10, 0).generate();
        let e = Envelope::new(FragmentId(1), HostId(1), 2, rel);
        assert_eq!(e.bytes(), 120);
    }

    #[test]
    fn prepared_fragment_payload_bytes() {
        use mem_joins::{Algorithm, PreparedFragment};
        let rel = relation::GenSpec::uniform(50, 1).generate();
        let frag: PreparedFragment = Algorithm::SortMerge.prepare_fragment(&rel, 0, 1);
        let e = Envelope::new(FragmentId(2), HostId(0), 3, frag);
        assert_eq!(e.bytes(), 600);
    }
}
