//! Envelopes: the unit of data that circulates in the Data Roundabout.
//!
//! The transport layer always moves a *whole ring-buffer element* — never a
//! single tuple (§III-D) — so the circulating unit is an [`Envelope`]: an
//! opaque payload plus the routing state the ring needs (origin host and
//! remaining hops). After a full revolution (`hops_remaining == 0` once
//! every host processed it) an envelope retires at the host that consumed
//! it last, freeing its buffer element.

use serde::{Deserialize, Serialize};
use simnet::topology::HostId;

/// Payloads the roundabout can carry: anything that knows its wire size.
pub trait PayloadBytes {
    /// Number of bytes this payload occupies in a ring-buffer element (and
    /// therefore on the wire when forwarded).
    fn payload_bytes(&self) -> u64;

    /// Content checksum used by the reliable transport to detect corrupted
    /// deliveries. The default folds only the byte size — types that can
    /// afford it should hash their content (relations reuse
    /// [`relation::relation_checksum`]).
    fn payload_checksum(&self) -> u64 {
        mix64(self.payload_bytes() ^ 0xc0ff_ee00_d15e_a5e5)
    }
}

/// splitmix64-style finalizer shared by the default checksum impls.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

impl PayloadBytes for relation::Relation {
    fn payload_bytes(&self) -> u64 {
        self.byte_volume()
    }

    fn payload_checksum(&self) -> u64 {
        let c = relation::relation_checksum(self);
        c.sum ^ mix64(c.count)
    }
}

impl PayloadBytes for mem_joins::PreparedFragment {
    fn payload_bytes(&self) -> u64 {
        self.byte_volume()
    }
}

impl PayloadBytes for Vec<u8> {
    fn payload_bytes(&self) -> u64 {
        self.len() as u64
    }

    fn payload_checksum(&self) -> u64 {
        // FNV-1a over the bytes: cheap and content-sensitive.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in self {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Identifier of a circulating fragment, unique within one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FragmentId(pub usize);

impl std::fmt::Display for FragmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "F{}", self.0)
    }
}

/// One circulating ring-buffer element.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope<P> {
    /// Identity of the fragment inside.
    pub id: FragmentId,
    /// Host the fragment started at.
    pub origin: HostId,
    /// Hosts that still need to process this envelope (including the one
    /// currently holding it). Starts at the ring size; the envelope is
    /// forwarded while the count stays positive after processing.
    pub hops_remaining: usize,
    /// Transfer sequence number, stamped by the reliable transport on each
    /// send attempt (0 on the classic, unacknowledged path).
    pub seq: u64,
    /// Content checksum taken at origination; the reliable transport
    /// verifies it on every receive to detect in-flight corruption.
    pub checksum: u64,
    /// Bitmask of logical stationary partitions (`S_i` roles) that already
    /// processed this envelope. Only maintained by the fault-tolerant
    /// path, where ring healing makes hop counting insufficient; it is the
    /// exactly-once ledger that survives retransmissions and re-sends.
    pub visited: u64,
    /// The in-flight query this fragment belongs to. `0` on single-query
    /// rings; the multi-tenant coordinator assigns dense query ids and
    /// keys its per-query credit partitions and ledgers on this field.
    pub query: u32,
    /// The data.
    pub payload: P,
}

impl<P: PayloadBytes> Envelope<P> {
    /// Creates an envelope at its origin for a ring of `ring_size` hosts.
    ///
    /// # Panics
    ///
    /// Panics if `ring_size` is zero.
    pub fn new(id: FragmentId, origin: HostId, ring_size: usize, payload: P) -> Self {
        assert!(ring_size > 0, "ring size must be positive");
        let checksum = payload.payload_checksum();
        Envelope {
            id,
            origin,
            hops_remaining: ring_size,
            seq: 0,
            checksum,
            visited: 0,
            query: 0,
            payload,
        }
    }

    /// Bytes this envelope occupies on the wire.
    pub fn bytes(&self) -> u64 {
        self.payload.payload_bytes()
    }

    /// Verifies the stored checksum against the payload content.
    pub fn checksum_ok(&self) -> bool {
        self.checksum == self.payload.payload_checksum()
    }

    /// Marks the logical roles in `mask` as processed (fault-tolerant path).
    pub fn mark_visited(&mut self, mask: u64) {
        self.visited |= mask;
    }

    /// True once every role in `full_mask` has processed the envelope.
    pub fn visited_all(&self, full_mask: u64) -> bool {
        self.visited & full_mask == full_mask
    }

    /// Marks one processing step done. Returns `true` if the envelope must
    /// still be forwarded to the next host, `false` if it retires here.
    ///
    /// # Panics
    ///
    /// Panics if called on an already retired envelope.
    pub fn consume_hop(&mut self) -> bool {
        assert!(
            self.hops_remaining > 0,
            "envelope already completed its revolution"
        );
        self.hops_remaining -= 1;
        self.hops_remaining > 0
    }

    /// True once every host has processed the envelope.
    pub fn is_retired(&self) -> bool {
        self.hops_remaining == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(ring: usize) -> Envelope<Vec<u8>> {
        Envelope::new(FragmentId(0), HostId(0), ring, vec![0u8; 100])
    }

    #[test]
    fn full_revolution_consumes_all_hops() {
        let mut e = env(4);
        assert!(e.consume_hop()); // processed at H0, forward
        assert!(e.consume_hop()); // H1
        assert!(e.consume_hop()); // H2
        assert!(!e.consume_hop()); // H3: retire
        assert!(e.is_retired());
    }

    #[test]
    fn single_host_ring_retires_immediately() {
        let mut e = env(1);
        assert!(!e.consume_hop());
        assert!(e.is_retired());
    }

    #[test]
    #[should_panic(expected = "already completed")]
    fn over_consuming_panics() {
        let mut e = env(1);
        let _ = e.consume_hop();
        let _ = e.consume_hop();
    }

    #[test]
    fn bytes_come_from_the_payload() {
        assert_eq!(env(2).bytes(), 100);
        let rel = relation::GenSpec::uniform(10, 0).generate();
        let e = Envelope::new(FragmentId(1), HostId(1), 2, rel);
        assert_eq!(e.bytes(), 120);
    }

    #[test]
    fn checksum_verifies_content() {
        let mut e = env(2);
        assert!(e.checksum_ok());
        e.payload[0] ^= 0xff;
        assert!(!e.checksum_ok(), "content change must break the checksum");
        let rel = relation::GenSpec::uniform(10, 0).generate();
        let e = Envelope::new(FragmentId(1), HostId(0), 2, rel);
        assert!(e.checksum_ok());
    }

    #[test]
    fn visited_mask_accumulates_roles() {
        let mut e = env(3);
        let full = 0b111;
        assert!(!e.visited_all(full));
        e.mark_visited(0b001);
        e.mark_visited(0b100);
        assert!(!e.visited_all(full));
        e.mark_visited(0b010);
        assert!(e.visited_all(full));
    }

    #[test]
    fn prepared_fragment_payload_bytes() {
        use mem_joins::{Algorithm, PreparedFragment};
        let rel = relation::GenSpec::uniform(50, 1).generate();
        let frag: PreparedFragment = Algorithm::SortMerge.prepare_fragment(&rel, 0, 1);
        let e = Envelope::new(FragmentId(2), HostId(0), 3, frag);
        assert_eq!(e.bytes(), 600);
    }
}
