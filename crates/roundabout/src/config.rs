//! Ring configuration.

use serde::{Deserialize, Serialize};
use simnet::cpu::CpuSpec;
use simnet::link::Link;
use simnet::throughput::{Bandwidth, ChunkThroughput};
use simnet::time::SimDuration;
use simnet::transport::TransportModel;

/// Full configuration of a Data Roundabout instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RingConfig {
    /// Number of hosts in the ring.
    pub hosts: usize,
    /// Statically allocated ring-buffer elements per host. At least 2 are
    /// needed to overlap communication with computation (one being
    /// processed while another is in flight); 1 disables overlap — the
    /// configuration the buffer-depth ablation measures.
    pub buffers_per_host: usize,
    /// Join-entity worker threads per host (the paper varies 1–4).
    pub join_threads: usize,
    /// Host CPU description.
    pub cpu: CpuSpec,
    /// Transport cost model (RDMA / TOE / kernel TCP).
    pub transport: TransportModel,
    /// Peak link bandwidth between neighboring hosts.
    pub link_bandwidth: Bandwidth,
    /// Fixed per-message transfer overhead (drives the Figure 5 curve).
    pub per_message_overhead: SimDuration,
    /// One-way link propagation latency.
    pub link_latency: SimDuration,
    /// Per-hop acknowledgement timeout of the reliable transport (only
    /// consulted when a fault plan is attached): how long a sender waits
    /// for the successor's ack before retransmitting. Must comfortably
    /// exceed the largest fragment's serialization time.
    pub ack_timeout: SimDuration,
    /// Retransmissions attempted (with exponential backoff) before the
    /// sender declares its successor dead and triggers ring healing.
    pub max_retransmits: u32,
    /// How long the wall-clock TCP drivers wait for the hello/nonce
    /// exchange on each mesh connection before declaring setup failed.
    /// Ignored by the simulated and in-process thread backends.
    pub handshake_timeout: SimDuration,
    /// Wall-clock TCP driver watchdog: a run making no protocol progress
    /// for this long is torn down as stalled instead of hanging the
    /// process. Ignored by the simulated and in-process thread backends.
    pub watchdog: SimDuration,
}

/// Default handshake timeout of [`RingConfig::paper`].
fn default_handshake_timeout() -> SimDuration {
    SimDuration::from_secs(5)
}

/// Default stall watchdog of [`RingConfig::paper`].
fn default_watchdog() -> SimDuration {
    SimDuration::from_secs(10)
}

impl RingConfig {
    /// The paper's testbed: quad-core 2.33 GHz Xeons, 10 GbE iWARP RNICs,
    /// RDMA transport, 2 ring-buffer elements, 4 join threads.
    pub fn paper(hosts: usize) -> Self {
        RingConfig {
            hosts,
            buffers_per_host: 2,
            join_threads: 4,
            cpu: CpuSpec::paper_xeon(),
            transport: TransportModel::rdma(),
            link_bandwidth: Bandwidth::from_gbit_per_sec(10.0),
            per_message_overhead: SimDuration::from_nanos(3_300),
            link_latency: SimDuration::from_micros(5),
            ack_timeout: SimDuration::from_millis(25),
            max_retransmits: 4,
            handshake_timeout: default_handshake_timeout(),
            watchdog: default_watchdog(),
        }
    }

    /// Same testbed but with the software-TCP transport (§V-G).
    pub fn paper_tcp(hosts: usize) -> Self {
        RingConfig {
            transport: TransportModel::kernel_tcp(),
            ..RingConfig::paper(hosts)
        }
    }

    /// Builder-style override of the transport.
    pub fn with_transport(mut self, transport: TransportModel) -> Self {
        self.transport = transport;
        self
    }

    /// Builder-style override of the join thread count.
    pub fn with_join_threads(mut self, threads: usize) -> Self {
        self.join_threads = threads;
        self
    }

    /// Builder-style override of the per-host buffer count.
    pub fn with_buffers(mut self, buffers: usize) -> Self {
        self.buffers_per_host = buffers;
        self
    }

    /// Builder-style override of the reliable transport's ack timeout.
    pub fn with_ack_timeout(mut self, timeout: SimDuration) -> Self {
        self.ack_timeout = timeout;
        self
    }

    /// Builder-style override of the retransmission budget.
    pub fn with_max_retransmits(mut self, retransmits: u32) -> Self {
        self.max_retransmits = retransmits;
        self
    }

    /// Builder-style override of the TCP mesh handshake timeout.
    pub fn with_handshake_timeout(mut self, timeout: SimDuration) -> Self {
        self.handshake_timeout = timeout;
        self
    }

    /// Builder-style override of the TCP driver stall watchdog.
    pub fn with_watchdog(mut self, watchdog: SimDuration) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint: at least one
    /// host, at least one buffer, at least one join thread, and no more
    /// join threads than cores.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.hosts == 0 {
            return Err(ConfigError::new("ring needs at least one host"));
        }
        if self.buffers_per_host == 0 {
            return Err(ConfigError::new(
                "each host needs at least one ring buffer element",
            ));
        }
        if self.join_threads == 0 {
            return Err(ConfigError::new("join entity needs at least one thread"));
        }
        if self.join_threads > self.cpu.cores as usize {
            return Err(ConfigError::new(
                "more join threads than CPU cores is never modelled as a speedup",
            ));
        }
        if self.ack_timeout.is_zero() {
            return Err(ConfigError::new(
                "the reliable transport needs a positive ack timeout",
            ));
        }
        if self.handshake_timeout.is_zero() {
            return Err(ConfigError::new(
                "the TCP drivers need a positive handshake timeout",
            ));
        }
        if self.watchdog.is_zero() {
            return Err(ConfigError::new(
                "the TCP drivers need a positive stall watchdog",
            ));
        }
        if self.watchdog < self.ack_timeout {
            return Err(ConfigError::new(
                "a watchdog shorter than the ack timeout would tear down \
                 runs that are still legitimately retransmitting",
            ));
        }
        Ok(())
    }

    /// The link model this configuration describes.
    pub fn link(&self) -> Link {
        Link::new(
            ChunkThroughput::new(self.link_bandwidth, self.per_message_overhead),
            self.link_latency,
        )
    }

    /// The wire rate actually achievable for a message of `bytes`.
    ///
    /// RDMA runs at the link's chunk-size-dependent goodput. Software TCP
    /// is additionally capped by what its (single) transmitter thread can
    /// push through the kernel stack — the per-core rule-of-thumb rate.
    pub fn effective_wire_seconds(&self, bytes: u64) -> SimDuration {
        let link_time = self.link().throughput().transfer_time(bytes);
        match self.transport {
            TransportModel::Rdma(_) => link_time,
            TransportModel::KernelTcp(m) | TransportModel::Toe(m) => {
                let cpu_bound = SimDuration::from_secs_f64(
                    bytes as f64 / m.per_core_rate(self.cpu).bytes_per_sec(),
                );
                link_time.max(cpu_bound)
            }
        }
    }
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig::paper(6)
    }
}

/// A configuration constraint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: &'static str,
}

impl ConfigError {
    fn new(message: &'static str) -> Self {
        ConfigError { message }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid ring configuration: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        for hosts in 1..=6 {
            assert!(RingConfig::paper(hosts).validate().is_ok());
        }
    }

    #[test]
    fn invalid_configs_are_caught() {
        assert!(RingConfig::paper(0).validate().is_err());
        assert!(RingConfig::paper(2).with_buffers(0).validate().is_err());
        assert!(RingConfig::paper(2)
            .with_join_threads(0)
            .validate()
            .is_err());
        assert!(RingConfig::paper(2)
            .with_join_threads(5)
            .validate()
            .is_err());
    }

    #[test]
    fn error_messages_are_informative() {
        let err = RingConfig::paper(0).validate().unwrap_err();
        assert!(err.to_string().contains("at least one host"));
    }

    #[test]
    fn rdma_wire_time_is_link_bound() {
        let cfg = RingConfig::paper(2);
        let t = cfg.effective_wire_seconds(16 << 20);
        // 16 MB at 1.25 GB/s ≈ 13.4 ms.
        let secs = t.as_secs_f64();
        assert!((0.012..0.015).contains(&secs), "got {secs}");
    }

    #[test]
    fn tcp_wire_time_is_cpu_bound() {
        let rdma = RingConfig::paper(2);
        let tcp = RingConfig::paper_tcp(2);
        let bytes = 16 << 20;
        assert!(
            tcp.effective_wire_seconds(bytes) > rdma.effective_wire_seconds(bytes),
            "the kernel-TCP transmitter thread must be slower than the RNIC"
        );
    }

    #[test]
    fn builders_override_fields() {
        let cfg = RingConfig::paper(3)
            .with_join_threads(2)
            .with_buffers(4)
            .with_transport(TransportModel::toe())
            .with_ack_timeout(SimDuration::from_millis(3))
            .with_max_retransmits(7);
        assert_eq!(cfg.join_threads, 2);
        assert_eq!(cfg.buffers_per_host, 4);
        assert_eq!(cfg.transport.name(), "TOE");
        assert_eq!(cfg.ack_timeout, SimDuration::from_millis(3));
        assert_eq!(cfg.max_retransmits, 7);
    }

    #[test]
    fn zero_ack_timeout_is_rejected() {
        let err = RingConfig::paper(2)
            .with_ack_timeout(SimDuration::ZERO)
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("ack timeout"));
    }

    #[test]
    fn tcp_timeout_builders_override_fields() {
        let cfg = RingConfig::paper(2)
            .with_handshake_timeout(SimDuration::from_millis(750))
            .with_watchdog(SimDuration::from_secs(30));
        assert_eq!(cfg.handshake_timeout, SimDuration::from_millis(750));
        assert_eq!(cfg.watchdog, SimDuration::from_secs(30));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn zero_tcp_timeouts_are_rejected() {
        let err = RingConfig::paper(2)
            .with_handshake_timeout(SimDuration::ZERO)
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("handshake timeout"));
        let err = RingConfig::paper(2)
            .with_watchdog(SimDuration::ZERO)
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("watchdog"));
    }

    #[test]
    fn watchdog_must_cover_the_ack_timeout() {
        let err = RingConfig::paper(2)
            .with_ack_timeout(SimDuration::from_secs(2))
            .with_watchdog(SimDuration::from_secs(1))
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("watchdog"));
        assert!(RingConfig::paper(2)
            .with_ack_timeout(SimDuration::from_secs(2))
            .with_watchdog(SimDuration::from_secs(2))
            .validate()
            .is_ok());
    }

    #[test]
    fn default_timeouts_match_the_paper_config() {
        // The documented defaults must equal what `paper()` bakes in, so
        // a config built any other way starts from the same timeouts.
        let cfg = RingConfig::paper(3);
        assert_eq!(cfg.handshake_timeout, default_handshake_timeout());
        assert_eq!(cfg.watchdog, default_watchdog());
        assert_eq!(default_handshake_timeout(), SimDuration::from_secs(5));
        assert_eq!(default_watchdog(), SimDuration::from_secs(10));
    }
}
