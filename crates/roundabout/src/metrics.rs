//! Per-host and ring-wide execution metrics.
//!
//! Every paper exhibit is a view over these numbers: setup vs join phase
//! wall time (Figures 7, 8, 10, 11), synchronization time — join threads
//! waiting for the roundabout to deliver data (Figures 11, 12) — and CPU
//! load during the join phase (Table I).

use serde::{Deserialize, Serialize};
use simnet::cpu::{CpuAccount, CpuSpec};
use simnet::time::SimDuration;

/// Metrics of one host over a complete run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HostMetrics {
    /// Time spent in the setup phase (hash build / sort, incl. fragment
    /// preparation and buffer registration).
    pub setup: SimDuration,
    /// Time the join entity spent actually joining.
    pub join_busy: SimDuration,
    /// Time the join entity spent waiting for data from the roundabout
    /// ("synchronizing" with the transport layer, §V-F).
    pub sync: SimDuration,
    /// Wall-clock length of the join phase (setup end → last join end);
    /// `join_busy + sync ≈ join_window` up to scheduling slack.
    pub join_window: SimDuration,
    /// CPU busy time by category over the whole run.
    pub cpu: CpuAccount,
    /// Fragments processed by this host.
    pub fragments_processed: usize,
    /// Payload bytes this host forwarded to its successor.
    pub bytes_forwarded: u64,
    /// Transfers this host retransmitted after an ack timeout (reliable
    /// transport only; zero on the classic path).
    pub retransmits: u64,
    /// Envelopes this host rejected at receive time because their content
    /// checksum did not match (each one provokes a retransmission).
    pub checksum_mismatches: u64,
}

impl HostMetrics {
    /// Total wall time contributed by this host (setup + join phase).
    pub fn total(&self) -> SimDuration {
        self.setup + self.join_window
    }

    /// CPU load during the join phase, as in Table I.
    pub fn join_phase_load(&self, spec: CpuSpec) -> f64 {
        self.cpu
            .load(spec, self.join_window.max(SimDuration::from_nanos(1)))
    }
}

/// Per-query metrics of one multiplexed run. Single-query runs leave the
/// list empty; multi-tenant runs report one entry per admitted query, in
/// query-id order, so tenants can be billed and compared individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct QueryMetrics {
    /// Tenant that submitted this query.
    pub tenant: u32,
    /// Fragments of this query that completed a full revolution.
    pub fragments_completed: usize,
    /// Transfers of this query retransmitted after an ack timeout.
    pub retransmits: u64,
    /// Deliveries of this query rejected for a checksum mismatch.
    pub checksum_mismatches: u64,
    /// True once every fragment of the query retired.
    pub completed: bool,
}

/// Metrics of a complete ring run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RingMetrics {
    /// Per-host metrics, indexed by host id.
    pub hosts: Vec<HostMetrics>,
    /// End-to-end wall-clock time of the run (max over hosts of total).
    pub wall_clock: SimDuration,
    /// Total fragments that completed a full revolution.
    pub fragments_completed: usize,
    /// Ring-healing events: confirmed host deaths the surviving ring
    /// bypassed mid-revolution (zero without fault injection).
    pub heal_events: usize,
    /// Worst-case failure-detection latency over all heal events: virtual
    /// time between a host's crash and its predecessor exhausting the
    /// retransmission budget and declaring it dead.
    pub detection_latency: SimDuration,
    /// Fragments re-sent from their origin because a copy was lost in a
    /// dead host's buffers.
    pub fragments_resent: usize,
    /// Membership epoch at the end of the run: the number of *completed*
    /// planned transitions (joins + drains). Crash healing never advances
    /// it, so the epoch is a pure function of the rescale schedule and
    /// identical across backends.
    pub membership_epoch: u64,
    /// Planned host activations completed (a standby joined the ring).
    pub rescale_joins: u64,
    /// Graceful drains completed (the drainee departed the ring).
    pub rescale_drains: u64,
    /// Stationary partitions moved by planned rescale handoffs.
    pub rescale_handoffs: u64,
    /// Drains that stalled past their deadline and degraded into the
    /// crash-healing path. Timing-dependent: healthy schedules keep this
    /// zero, but it is *not* part of cross-backend parity.
    pub rescale_escalations: u64,
    /// Per-query breakdown on multiplexed runs (empty on single-query
    /// runs).
    pub queries: Vec<QueryMetrics>,
}

impl RingMetrics {
    /// The maximum setup time over all hosts — the reported setup phase
    /// (hosts set up in parallel).
    pub fn setup_time(&self) -> SimDuration {
        self.hosts
            .iter()
            .map(|h| h.setup)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// The maximum join-phase window over all hosts — the reported join
    /// phase.
    pub fn join_time(&self) -> SimDuration {
        self.hosts
            .iter()
            .map(|h| h.join_window)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// The maximum per-host busy join time (join phase excluding waiting).
    pub fn join_busy_time(&self) -> SimDuration {
        self.hosts
            .iter()
            .map(|h| h.join_busy)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// The maximum per-host synchronization time.
    pub fn sync_time(&self) -> SimDuration {
        self.hosts
            .iter()
            .map(|h| h.sync)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Mean CPU load over hosts during the join phase (Table I).
    pub fn mean_join_phase_load(&self, spec: CpuSpec) -> f64 {
        if self.hosts.is_empty() {
            return 0.0;
        }
        self.hosts
            .iter()
            .map(|h| h.join_phase_load(spec))
            .sum::<f64>()
            / self.hosts.len() as f64
    }

    /// Total bytes forwarded across all ring links.
    pub fn total_bytes_forwarded(&self) -> u64 {
        self.hosts.iter().map(|h| h.bytes_forwarded).sum()
    }

    /// Total retransmissions across all hosts (reliable transport only).
    pub fn total_retransmits(&self) -> u64 {
        self.hosts.iter().map(|h| h.retransmits).sum()
    }

    /// Total checksum mismatches detected across all hosts.
    pub fn total_checksum_mismatches(&self) -> u64 {
        self.hosts.iter().map(|h| h.checksum_mismatches).sum()
    }

    /// True if the run saw no faults at all: no retransmissions, no
    /// corruption, no healing. Baseline runs must satisfy this.
    pub fn fault_free(&self) -> bool {
        self.heal_events == 0
            && self.fragments_resent == 0
            && self.detection_latency.is_zero()
            && self.total_retransmits() == 0
            && self.total_checksum_mismatches() == 0
    }

    /// Achieved per-link throughput (bytes forwarded by the busiest host
    /// over its join window), the quantity §V-F compares against the
    /// 10 Gb/s ceiling.
    pub fn peak_link_throughput(&self) -> f64 {
        self.hosts
            .iter()
            .filter(|h| !h.join_window.is_zero())
            .map(|h| h.bytes_forwarded as f64 / h.join_window.as_secs_f64())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::cpu::CostCategory;

    fn host(setup_ms: u64, busy_ms: u64, sync_ms: u64) -> HostMetrics {
        let mut cpu = CpuAccount::new();
        cpu.charge(CostCategory::Compute, SimDuration::from_millis(busy_ms));
        HostMetrics {
            setup: SimDuration::from_millis(setup_ms),
            join_busy: SimDuration::from_millis(busy_ms),
            sync: SimDuration::from_millis(sync_ms),
            join_window: SimDuration::from_millis(busy_ms + sync_ms),
            cpu,
            fragments_processed: 1,
            bytes_forwarded: 1_000_000,
            ..HostMetrics::default()
        }
    }

    #[test]
    fn ring_metrics_take_maxima() {
        let m = RingMetrics {
            hosts: vec![host(10, 100, 5), host(12, 90, 20)],
            wall_clock: SimDuration::from_millis(130),
            fragments_completed: 2,
            ..RingMetrics::default()
        };
        assert_eq!(m.setup_time(), SimDuration::from_millis(12));
        assert_eq!(m.join_time(), SimDuration::from_millis(110));
        assert_eq!(m.join_busy_time(), SimDuration::from_millis(100));
        assert_eq!(m.sync_time(), SimDuration::from_millis(20));
        assert_eq!(m.total_bytes_forwarded(), 2_000_000);
    }

    #[test]
    fn empty_ring_metrics_are_zero() {
        let m = RingMetrics::default();
        assert_eq!(m.setup_time(), SimDuration::ZERO);
        assert_eq!(m.join_time(), SimDuration::ZERO);
        assert_eq!(m.mean_join_phase_load(CpuSpec::paper_xeon()), 0.0);
        assert!(m.fault_free());
    }

    #[test]
    fn fault_counters_sum_and_flag() {
        let mut m = RingMetrics {
            hosts: vec![host(0, 1, 0), host(0, 1, 0)],
            ..RingMetrics::default()
        };
        assert!(m.fault_free());
        m.hosts[0].retransmits = 3;
        m.hosts[1].checksum_mismatches = 2;
        m.heal_events = 1;
        m.detection_latency = SimDuration::from_millis(40);
        m.fragments_resent = 5;
        assert_eq!(m.total_retransmits(), 3);
        assert_eq!(m.total_checksum_mismatches(), 2);
        assert!(!m.fault_free());
    }

    #[test]
    fn join_phase_load_uses_the_window() {
        let h = host(0, 400, 0); // 400 ms compute over a 400 ms window
                                 // One core fully busy on a 4-core machine = 25 %.
        let load = h.join_phase_load(CpuSpec::new(4, 1.0));
        assert!((load - 0.25).abs() < 1e-6, "got {load}");
    }

    #[test]
    fn peak_link_throughput() {
        let m = RingMetrics {
            hosts: vec![host(0, 100, 0)],
            wall_clock: SimDuration::from_millis(100),
            fragments_completed: 1,
            ..RingMetrics::default()
        };
        // 1 MB over 100 ms = 10 MB/s.
        assert!((m.peak_link_throughput() - 1e7).abs() < 1e3);
    }
}

/// Renders an ASCII timeline of a run: one lane per host, `#` for setup,
/// `=` for busy join time, `.` for synchronization (waiting on the
/// roundabout), scaled to `width` characters for the longest host.
///
/// ```text
/// H0 |####========|
/// H1 |####====....|
/// ```
pub fn render_timeline(metrics: &RingMetrics, width: usize) -> String {
    let width = width.max(10);
    let longest = metrics
        .hosts
        .iter()
        .map(|h| h.total().as_secs_f64())
        .fold(0.0f64, f64::max);
    if longest == 0.0 {
        return String::from("(empty run)\n");
    }
    let scale = width as f64 / longest;
    let mut out = String::new();
    for (i, h) in metrics.hosts.iter().enumerate() {
        // Round *cumulative* phase ends, not individual widths: per-segment
        // rounding let lanes drift past `width` (three `.5`s each round up),
        // misaligning the lanes. Cumulative ends clamp every lane to the
        // scale and keep total length exact.
        let t_setup = h.setup.as_secs_f64();
        let t_busy = t_setup + h.join_busy.as_secs_f64();
        let t_sync = t_busy + h.sync.as_secs_f64();
        let end_setup = ((t_setup * scale).round() as usize).min(width);
        let end_busy = ((t_busy * scale).round() as usize).clamp(end_setup, width);
        let end_sync = ((t_sync * scale).round() as usize).clamp(end_busy, width);
        out.push_str(&format!("H{i:<2}|"));
        out.push_str(&"#".repeat(end_setup));
        out.push_str(&"=".repeat(end_busy - end_setup));
        out.push_str(&".".repeat(end_sync - end_busy));
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "    scale: {width} chars = {longest:.3}s   (# setup, = join, . sync)\n"
    ));
    out
}

#[cfg(test)]
mod timeline_tests {
    use super::*;
    use simnet::time::SimDuration;

    fn host(setup_ms: u64, busy_ms: u64, sync_ms: u64) -> HostMetrics {
        HostMetrics {
            setup: SimDuration::from_millis(setup_ms),
            join_busy: SimDuration::from_millis(busy_ms),
            sync: SimDuration::from_millis(sync_ms),
            join_window: SimDuration::from_millis(busy_ms + sync_ms),
            ..HostMetrics::default()
        }
    }

    #[test]
    fn timeline_draws_each_phase() {
        let metrics = RingMetrics {
            hosts: vec![host(10, 30, 10), host(10, 40, 0)],
            wall_clock: SimDuration::from_millis(50),
            fragments_completed: 1,
            ..RingMetrics::default()
        };
        let rendered = render_timeline(&metrics, 50);
        assert!(rendered.contains("H0 |"));
        assert!(rendered.contains('#'));
        assert!(rendered.contains('='));
        assert!(rendered.contains('.'));
        // H1 has no sync: its lane must not contain dots.
        let h1_line = rendered.lines().nth(1).unwrap();
        assert!(!h1_line.contains('.'));
    }

    #[test]
    fn empty_run_renders_placeholder() {
        assert_eq!(
            render_timeline(&RingMetrics::default(), 40),
            "(empty run)\n"
        );
    }

    #[test]
    fn lanes_scale_to_width() {
        let metrics = RingMetrics {
            hosts: vec![host(0, 100, 0)],
            wall_clock: SimDuration::from_millis(100),
            fragments_completed: 1,
            ..RingMetrics::default()
        };
        let rendered = render_timeline(&metrics, 60);
        let lane = rendered.lines().next().unwrap();
        assert_eq!(lane.matches('=').count(), 60);
    }

    /// Regression: per-segment rounding let a lane exceed `width` when
    /// several segments each rounded up (e.g. three `.5` segments), so
    /// lanes misaligned. Every lane must now fit the scale exactly.
    #[test]
    fn lanes_never_exceed_the_scale_width() {
        let width = 10;
        // 2.5 ms + 2.5 ms + 10 ms against a 15 ms longest host:
        // naive rounding gives 2 + 2 + 7 = 11 > 10 chars.
        let metrics = RingMetrics {
            hosts: vec![host(2, 3, 10).clamped(2_500_000, 2_500_000, 10_000_000)],
            wall_clock: SimDuration::from_millis(15),
            fragments_completed: 1,
            ..RingMetrics::default()
        };
        let rendered = render_timeline(&metrics, width);
        for lane in rendered.lines().filter(|l| l.starts_with('H')) {
            let body = lane.trim_start_matches(|c: char| c != '|');
            let cells = body.matches(['#', '=', '.']).count();
            assert!(
                cells <= width,
                "lane {lane:?} has {cells} cells, width is {width}"
            );
            assert_eq!(cells, width, "longest host must fill the scale exactly");
        }
    }

    impl HostMetrics {
        fn clamped(mut self, setup_ns: u64, busy_ns: u64, sync_ns: u64) -> HostMetrics {
            self.setup = SimDuration::from_nanos(setup_ns);
            self.join_busy = SimDuration::from_nanos(busy_ns);
            self.sync = SimDuration::from_nanos(sync_ns);
            self.join_window = SimDuration::from_nanos(busy_ns + sync_ns);
            self
        }
    }
}
