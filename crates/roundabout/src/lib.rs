//! # data-roundabout — the ring-shaped RDMA transport layer
//!
//! The paper's Data Roundabout (§II-C, §III-D): hosts organized as a
//! logical ring, each talking only to its direct neighbors over high-speed
//! links, with a statically registered pool of ring-buffer elements per
//! host and three asynchronous entities — receiver, join entity,
//! transmitter — that keep communication fully overlapped with
//! computation.
//!
//! Three interchangeable backends run the same protocol:
//!
//! * [`sim_backend::SimRing`] — inside the deterministic `simnet`
//!   discrete-event simulator, in virtual time, with the RDMA/TCP cost
//!   models attached; this is the backend all paper figures are
//!   reproduced on;
//! * [`thread_backend::RingDriver`] — on real OS threads with bounded
//!   channels as buffer pools, validating the protocol under true
//!   concurrency;
//! * [`tcp_backend::TcpRingDriver`] — over real loopback TCP sockets
//!   with length-prefixed framing, validating the protocol against an
//!   actual kernel network stack (and giving the RDMA-vs-TCP exhibits a
//!   measured column next to the modeled one);
//! * [`reactor_backend::ReactorRingDriver`] — the same loopback TCP
//!   wire protocol driven by a single nonblocking event-loop thread
//!   (epoll on Linux, a portable readiness-polling fallback elsewhere)
//!   with a hierarchical [`wheel::TimerWheel`] instead of a timer
//!   thread, so the thread count stays bounded as the ring widens to
//!   64–256 hosts.
//!
//! All backends are thin *drivers* over the same sans-IO [`protocol`]
//! core, which owns every credit, acknowledgement and healing decision.
//!
//! ```
//! use data_roundabout::{FixedCostApp, RingConfig, SimRing};
//! use simnet::time::SimDuration;
//!
//! // Three hosts, one 1 MB fragment each, fixed per-buffer cost.
//! let config = RingConfig::paper(3);
//! let fragments: Vec<Vec<Vec<u8>>> =
//!     (0..3).map(|_| vec![vec![0u8; 1 << 20]]).collect();
//! let app = FixedCostApp::new(3, SimDuration::from_millis(1), SimDuration::from_millis(4));
//! let outcome = SimRing::new(config, fragments, app).run();
//! assert_eq!(outcome.metrics.fragments_completed, 3);
//! // Every host processed every fragment exactly once.
//! assert!(outcome.metrics.hosts.iter().all(|h| h.fragments_processed == 3));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod app;
pub mod buffer;
pub mod config;
pub mod envelope;
pub mod error;
pub mod metrics;
pub mod protocol;
pub mod reactor_backend;
pub mod sim_backend;
pub mod sync;
pub mod tcp_backend;
pub mod thread_backend;
pub mod wheel;

pub use app::{FixedCostApp, RingApp};
pub use buffer::RegisteredPool;
pub use config::{ConfigError, RingConfig};
pub use envelope::{Envelope, FragmentId, PayloadBytes};
pub use error::{FrameError, RingError};
pub use metrics::{render_timeline, HostMetrics, QueryMetrics, RingMetrics};
pub use reactor_backend::ReactorRingDriver;
pub use sim_backend::{SimOutcome, SimRing};
pub use tcp_backend::{Frame, FrameDecoder, TcpRingDriver, WirePayload};
pub use thread_backend::RingDriver;

pub use simnet::fault::{FaultPlan, RescalePlan};
pub use simnet::topology::HostId;
