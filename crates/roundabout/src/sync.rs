//! Synchronization shim: `std::sync` in production, `loom` under model
//! checking.
//!
//! The threaded backend and its tests reach every mutex, condvar, atomic
//! and thread through this module instead of `std` directly. Compiled
//! normally, everything re-exports the `std` primitive it names (zero
//! cost). Compiled with `RUSTFLAGS="--cfg loom"`, the same names resolve
//! to the vendored loom model checker's instrumented primitives, so
//! `loom::model` can exhaustively explore the interleavings of the real
//! ring code — the exact receive → join → transmit hand-off that ships,
//! not a test-only re-implementation (see `tests/loom_ring.rs`).
//!
//! [`mpmc`] is the channel used for ring buffer pools and outgoing
//! queues. It is deliberately built *on the shim's own* mutex + condvar
//! (rather than crossbeam) so that under loom the checker schedules every
//! channel operation too: a channel is just a lock-and-wait protocol, and
//! the paper's credit-based flow control lives exactly there.

#[cfg(not(loom))]
pub use std::sync::{Arc, Condvar, Mutex, MutexGuard};

#[cfg(loom)]
pub use loom::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Model-aware atomics (instrumented `SeqCst` under loom).
pub mod atomic {
    #[cfg(not(loom))]
    pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

    #[cfg(loom)]
    pub use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
}

/// Model-aware threads; `scope` accepts the same closures under both
/// backends (std passes `&Scope`, loom a `Copy` `Scope` — call sites are
/// agnostic).
pub mod thread {
    #[cfg(not(loom))]
    pub use std::thread::{scope, spawn, yield_now};

    #[cfg(loom)]
    pub use loom::thread::{scope, spawn, yield_now};
}

/// Multi-producer multi-consumer channels on the shim's mutex + condvar.
///
/// The API mirrors the `crossbeam::channel` subset the backends use:
/// [`bounded`] / [`unbounded`] constructors, blocking [`Receiver::recv`],
/// non-blocking [`Receiver::try_recv`], deadline-bounded
/// [`Receiver::recv_timeout`], draining [`Receiver::iter`], and
/// disconnect-on-last-drop semantics on both endpoints.
pub mod mpmc {
    use std::collections::VecDeque;

    use super::{Arc, Condvar, Mutex};

    /// Receiving on an empty channel with no senders left.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Sending on a channel with no receivers left; returns the value.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Why [`Receiver::try_recv`] returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Nothing queued right now; senders still exist.
        Empty,
        /// Nothing queued and every sender is gone.
        Disconnected,
    }

    /// Why [`Receiver::recv_timeout`] returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with nothing queued.
        Timeout,
        /// Nothing queued and every sender is gone.
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> super::MutexGuard<'_, State<T>> {
            // A sender/receiver thread that panicked mid-operation must
            // not take the whole channel down with poison.
            self.state.lock().unwrap_or_else(|p| p.into_inner())
        }
    }

    /// The sending side; clonable, disconnects when the last clone drops.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving side; clonable, disconnects when the last clone
    /// drops.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// A channel holding at most `capacity` queued messages; `send`
    /// blocks when full (this backpressure *is* the ring's buffer
    /// credit).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(capacity))
    }

    /// A channel without a capacity bound; `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    impl<T> Sender<T> {
        /// Blocks while the channel is full; fails once every receiver is
        /// gone.
        ///
        /// # Errors
        ///
        /// [`SendError`] returning the unsent value when the channel is
        /// disconnected.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.lock();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = self
                    .chan
                    .capacity
                    .is_some_and(|cap| state.queue.len() >= cap);
                if !full {
                    state.queue.push_back(value);
                    drop(state);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                state = self
                    .chan
                    .not_full
                    .wait(state)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.lock().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.lock();
            state.senders = state.senders.saturating_sub(1);
            let gone = state.senders == 0;
            drop(state);
            if gone {
                // Blocked receivers must observe the disconnect.
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        fn pop(&self, state: &mut State<T>) -> Option<T> {
            let value = state.queue.pop_front()?;
            self.chan.not_full.notify_one();
            Some(value)
        }

        /// Blocks until a message or disconnect.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when the channel is empty with no senders left.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.lock();
            loop {
                if let Some(v) = self.pop(&mut state) {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .chan
                    .not_empty
                    .wait(state)
                    .unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Never blocks.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] when additionally no sender is
        /// left.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.chan.lock();
            if let Some(v) = self.pop(&mut state) {
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Blocks up to `timeout` for a message.
        ///
        /// Under loom this is an ordinary [`Receiver::recv`]: model time
        /// has no clock, and liveness is the deadlock detector's job, so
        /// a timeout never fires. Model-checked protocols must therefore
        /// not *rely* on timeouts for progress (the reliable transport's
        /// retransmission timer is exercised by the chaos suite instead).
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] on deadline,
        /// [`RecvTimeoutError::Disconnected`] when the channel is empty
        /// with no senders left.
        #[cfg(not(loom))]
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now().checked_add(timeout);
            let mut state = self.chan.lock();
            loop {
                if let Some(v) = self.pop(&mut state) {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline
                    .map(|d| d.saturating_duration_since(std::time::Instant::now()))
                    .unwrap_or(std::time::Duration::MAX);
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .chan
                    .not_empty
                    .wait_timeout(state, remaining)
                    .unwrap_or_else(|p| p.into_inner());
                state = guard;
            }
        }

        /// See the non-loom variant: under the model checker a timed wait
        /// degrades to a plain blocking [`Receiver::recv`].
        #[cfg(loom)]
        pub fn recv_timeout(&self, _timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.recv()
                .map_err(|RecvError| RecvTimeoutError::Disconnected)
        }

        /// Blocking iterator: yields until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.lock().receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.chan.lock();
            state.receivers = state.receivers.saturating_sub(1);
            let gone = state.receivers == 0;
            drop(state);
            if gone {
                // Blocked senders must observe the disconnect.
                self.chan.not_full.notify_all();
            }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}
