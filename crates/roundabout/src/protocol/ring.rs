//! The ring-level coordinator: one deterministic state machine for the
//! whole Data Roundabout, fed [`Input`]s and emitting [`Output`]s.
//!
//! [`RingProtocol`] owns every decision both backends used to duplicate:
//! credit-gated transmission, the stop-and-wait ack/retransmit ledger,
//! duplicate suppression, the failure detector, the exactly-once
//! role-takeover ledger and mid-revolution healing, and the
//! retire-vs-forward routing (hop counting on the classic path, the
//! `visited` role bitmask once healing can reroute envelopes).
//!
//! Output order is part of the contract: a driver applies outputs in
//! emission order, which reproduces the exact scheduling sequence of the
//! original backends — determinism of the simulated backend depends on
//! it.

use std::collections::{BTreeMap, HashSet};

use simnet::topology::HostId;

use crate::envelope::{Envelope, PayloadBytes};

use super::admission::{QueryLedger, QueryStatus};
use super::host::{HostProtocol, Route};
use super::link::{backoff_exponent, on_timeout, TimeoutVerdict, BACKOFF_CAP};
use super::membership::{rendezvous_owner, MembershipLedger};
use super::snapshot::{
    EnvSnap, FaultSnap, HeldSnap, HostSnap, InFlightSnap, MembershipSnap, QueriesSnap,
    StateSnapshot,
};
use super::{teardown, Input, Output, ProtocolConfig, Timer};

/// One unacknowledged transfer of the reliable transport.
#[derive(Debug, Clone)]
struct InFlight<P> {
    from: HostId,
    to: HostId,
    /// Pristine master for retransmission (corruption is injected by the
    /// driver on the transmitted clone, never on this copy).
    env: Envelope<P>,
    /// Send attempts made so far (1 = the initial transmission).
    attempts: u32,
    /// Whether the most recent attempt put an intact copy on the wire
    /// toward a then-live receiver; consulted during healing to decide
    /// between "the receiver has it" and "lost — re-send from origin".
    /// Reported by the driver via [`RingProtocol::attempt_fate`].
    maybe_live: bool,
}

/// The reliable transport's ledger, present only in reliable mode. The
/// classic path never touches it, so runs without a fault plan behave
/// byte-identically to the pre-fault protocol.
#[derive(Debug, Clone)]
struct FaultLedger<P> {
    /// Ground truth: the host stopped acting (buffers retained until
    /// healing salvages them).
    crashed: Vec<bool>,
    /// Routing truth: a peer exhausted its retransmission budget and the
    /// ring now bypasses this host.
    confirmed_dead: Vec<bool>,
    paused: Vec<bool>,
    /// Outstanding partition rebuilds per host (joins gated while
    /// non-zero): one per [`Output::Absorb`] or [`Output::Handoff`]
    /// received, decremented by [`Input::AbsorbDone`].
    absorbing: Vec<u32>,
    /// Logical stationary partitions (`S_i` roles) each host serves;
    /// starts as `roles[h] == [h]` for ring members (standbys start
    /// empty) and moves through healing and planned handoffs.
    roles: Vec<Vec<usize>>,
    /// Planned membership: epochs, standby activation, drains.
    membership: MembershipLedger,
    /// Ring-unique transfer ids — the ledger key.
    next_tid: u64,
    /// Per-sender wire sequence stamped into `env.seq`; both backends
    /// count link transfers identically, so the fault plans' dice (which
    /// key on `(sender, seq, attempt)`) roll the same on both.
    wire_seq: Vec<u64>,
    in_flight: BTreeMap<u64, InFlight<P>>,
    /// Transfers accepted by some receiver — dedupes the copies that
    /// spurious retransmissions deliver twice.
    accepted: HashSet<u64>,
    /// Transfers whose fragment was revived elsewhere — rerouted at their
    /// sender or re-sent from the fragment's origin — after a death was
    /// confirmed. The tid is dead forever: any late wire copy (of any
    /// attempt) arriving at a corpse must not be salvaged a second time,
    /// or the fragment would fork into two live copies.
    requeued: HashSet<u64>,
    /// Stop-and-wait: the transfer each host is awaiting an ack for.
    awaiting: Vec<Option<u64>>,
    /// Outstanding pool-blocked probe per sender: `(target, attempt)`.
    probing: Vec<Option<(HostId, u32)>>,
    retransmits: Vec<u64>,
    checksum_mismatches: Vec<u64>,
    heal_events: usize,
    fragments_resent: usize,
    /// `visited` mask covering every logical role.
    full_mask: u64,
}

impl<P> FaultLedger<P> {
    fn new(hosts: usize, standby: u64) -> Self {
        let all_mask = if hosts >= 64 {
            u64::MAX
        } else {
            (1u64 << hosts) - 1
        };
        FaultLedger {
            crashed: vec![false; hosts],
            confirmed_dead: vec![false; hosts],
            paused: vec![false; hosts],
            absorbing: vec![0; hosts],
            roles: (0..hosts)
                .map(|h| {
                    if standby & (1u64 << h) != 0 {
                        Vec::new()
                    } else {
                        vec![h]
                    }
                })
                .collect(),
            membership: MembershipLedger::new(hosts, standby),
            next_tid: 1,
            wire_seq: vec![0; hosts],
            in_flight: BTreeMap::new(),
            accepted: HashSet::new(),
            requeued: HashSet::new(),
            awaiting: vec![None; hosts],
            probing: vec![None; hosts],
            retransmits: vec![0; hosts],
            checksum_mismatches: vec![0; hosts],
            heal_events: 0,
            fragments_resent: 0,
            // Standbys own no stationary partition, so a revolution is
            // complete once every *initial member's* role is visited.
            full_mask: all_mask & !standby,
        }
    }

    /// Bitmask of the roles `host` currently serves.
    // analyze: allow(panic, reason = "protocol invariant: host ids index per-ring tables sized at construction; the healing path is exercised exhaustively by the chaos and proptest suites")
    fn role_mask(&self, host: HostId) -> u64 {
        self.roles[host.0].iter().fold(0u64, |m, r| m | (1u64 << r))
    }

    /// Is `h` a hop the ring routes to? Confirmed-dead hosts are healed
    /// around; standbys and departed hosts are outside the ring.
    // analyze: allow(panic, reason = "protocol invariant: host ids index per-ring tables sized at construction; the healing path is exercised exhaustively by the chaos and proptest suites")
    fn routes(&self, h: usize) -> bool {
        !self.confirmed_dead[h] && self.membership.in_ring(HostId(h))
    }

    /// The nearest clockwise successor the ring still routes to (`host`
    /// itself when it is the sole survivor).
    fn next_alive(&self, host: HostId) -> HostId {
        let n = self.confirmed_dead.len();
        for step in 1..=n {
            let h = (host.0 + step) % n;
            if self.routes(h) {
                return HostId(h);
            }
        }
        host
    }

    /// The nearest counterclockwise predecessor still routed to.
    fn prev_alive(&self, host: HostId) -> HostId {
        let n = self.confirmed_dead.len();
        for step in 1..=n {
            let h = (host.0 + n - (step % n)) % n;
            if self.routes(h) {
                return HostId(h);
            }
        }
        host
    }

    /// Where a salvaged fragment re-enters the ring: its origin, or (when
    /// the origin crashed or left the ring) the nearest routable
    /// not-crashed host after it. `None` when nobody is left to re-send.
    // analyze: allow(panic, reason = "protocol invariant: host ids index per-ring tables sized at construction; the healing path is exercised exhaustively by the chaos and proptest suites")
    fn inject_target(&self, origin: HostId) -> Option<HostId> {
        let n = self.crashed.len();
        (0..n)
            .map(|step| (origin.0 + step) % n)
            .find(|&h| !self.crashed[h] && self.membership.in_ring(HostId(h)))
            .map(HostId)
    }

    /// Hosts eligible to receive stationary partitions in a planned
    /// handoff: inside the ring, not draining, not (suspected) dead,
    /// excluding `except`.
    // analyze: allow(panic, reason = "protocol invariant: host ids index per-ring tables sized at construction; the healing path is exercised exhaustively by the chaos and proptest suites")
    fn handoff_candidates(&self, except: Option<HostId>) -> Vec<HostId> {
        (0..self.crashed.len())
            .filter(|&h| {
                self.routes(h)
                    && !self.crashed[h]
                    && !self.membership.is_draining(HostId(h))
                    && Some(HostId(h)) != except
            })
            .map(HostId)
            .collect()
    }
}

/// The whole-ring protocol state machine. See the [module
/// docs](super) for the driver contract. `Clone` exists for the
/// `ring-verify` model checker, which forks the state at every
/// nondeterministic branch point.
#[derive(Debug, Clone)]
pub struct RingProtocol<P> {
    cfg: ProtocolConfig,
    hosts: Vec<HostProtocol<P>>,
    fragments_total: usize,
    fragments_completed: usize,
    stopped: bool,
    fault: Option<FaultLedger<P>>,
    /// Multi-tenant mode: the per-query admission/credit/counter ledger.
    /// `None` on single-query rings, which stay byte-identical to the
    /// pre-multiplexing protocol.
    queries: Option<QueryLedger<P>>,
    /// Outputs produced before the first input (construction-time query
    /// admissions); drained into the next `input` call's result.
    startup: Vec<Output<P>>,
}

impl<P: PayloadBytes + Clone> RingProtocol<P> {
    /// Builds the ring from pre-numbered local envelopes (`envelopes[h]`
    /// belongs to host `h`, see [`super::envelope_batches`]).
    ///
    /// # Panics
    ///
    /// Panics when `envelopes.len()` differs from the configured host
    /// count, a reliable ring exceeds the 64-host role-bitmask limit, or
    /// the standby mask is malformed (set bits beyond the host count, a
    /// non-reliable ring, a standby with local fragments, or no initial
    /// ring member at all).
    // analyze: allow(panic, reason = "construction-time shape checks; every later host id indexes tables sized here")
    pub fn new(cfg: ProtocolConfig, envelopes: Vec<Vec<Envelope<P>>>) -> Self {
        assert_eq!(
            envelopes.len(),
            cfg.hosts,
            "need one envelope list per host"
        );
        assert!(
            !cfg.reliable || cfg.hosts <= 64,
            "the exactly-once role bitmask supports at most 64 hosts"
        );
        if cfg.standby != 0 {
            assert!(
                cfg.reliable,
                "standby hosts ride on the reliable transport (attach a fault or rescale plan)"
            );
            assert!(
                cfg.hosts >= 64 || cfg.standby >> cfg.hosts == 0,
                "standby mask names hosts beyond the ring size"
            );
            assert!(
                cfg.hosts >= 64 || cfg.standby != (1u64 << cfg.hosts) - 1,
                "a ring needs at least one initial member"
            );
            for (h, locals) in envelopes.iter().enumerate() {
                assert!(
                    cfg.standby & (1u64 << h) == 0 || locals.is_empty(),
                    "standby host {h} must start without local fragments"
                );
            }
        }
        let fragments_total = envelopes.iter().map(Vec::len).sum();
        let mut hosts: Vec<HostProtocol<P>> = (0..cfg.hosts)
            .map(|h| HostProtocol::new(HostId(h), cfg.hosts, cfg.buffers_per_host))
            .collect();
        for (h, locals) in envelopes.into_iter().enumerate() {
            for env in locals {
                hosts[h].inject_local(env);
            }
        }
        RingProtocol {
            cfg,
            hosts,
            fragments_total,
            fragments_completed: 0,
            stopped: false,
            fault: cfg
                .reliable
                .then(|| FaultLedger::new(cfg.hosts, cfg.standby)),
            queries: None,
            startup: Vec::new(),
        }
    }

    /// Builds a *multiplexed* ring serving several concurrent queries.
    /// `queries[q]` is `(tenant, batches)` with the envelopes pre-numbered
    /// and query-stamped by [`super::query_batches`]. At most `max_active`
    /// queries circulate at once; the rest wait in the tenant-fair
    /// admission queue and enter as active queries complete. Each active
    /// query is confined to a credit partition of the per-host buffer
    /// pools; healing, membership and the fault dice stay ring-global.
    ///
    /// The initial [`Output::QueryAdmitted`]s are emitted with the result
    /// of the first [`RingProtocol::input`] call.
    ///
    /// # Panics
    ///
    /// Panics unless the configuration is reliable and non-continuous,
    /// or when a query's batch list does not name every host.
    // analyze: allow(panic, reason = "construction-time shape checks; every later host id indexes tables sized here")
    pub fn new_multi(
        cfg: ProtocolConfig,
        queries: Vec<(u32, Vec<Vec<Envelope<P>>>)>,
        max_active: usize,
    ) -> Self {
        assert!(
            cfg.reliable,
            "multi-tenant rings ride on the reliable transport"
        );
        assert!(
            !cfg.continuous,
            "continuous rotation and query multiplexing are exclusive"
        );
        assert!(cfg.hosts <= 64, "role bitmask supports at most 64 hosts");
        for (_, batches) in &queries {
            assert_eq!(
                batches.len(),
                cfg.hosts,
                "need one envelope list per host per query"
            );
        }
        let fragments_total = queries
            .iter()
            .map(|(_, b)| b.iter().map(Vec::len).sum::<usize>())
            .sum();
        let n_queries = queries.len();
        let mut hosts: Vec<HostProtocol<P>> = (0..cfg.hosts)
            .map(|h| {
                let mut host = HostProtocol::new(HostId(h), cfg.hosts, cfg.buffers_per_host);
                host.enable_query_tracking(n_queries);
                host
            })
            .collect();
        let mut ledger = QueryLedger::new(queries, cfg.hosts, cfg.buffers_per_host, max_active);
        let mut startup = Vec::new();
        while let Some((query, tenant, batches)) = ledger.admit_next() {
            startup.push(Output::QueryAdmitted { query, tenant });
            for (h, envs) in batches.into_iter().enumerate() {
                for env in envs {
                    hosts[h].inject_local(env);
                }
            }
        }
        RingProtocol {
            cfg,
            hosts,
            fragments_total,
            fragments_completed: 0,
            stopped: false,
            fault: Some(FaultLedger::new(cfg.hosts, cfg.standby)),
            queries: Some(ledger),
            startup,
        }
    }

    /// Feeds one observation and returns the actions the driver must
    /// apply, in order.
    pub fn input(&mut self, input: Input<P>) -> Vec<Output<P>> {
        let mut out = std::mem::take(&mut self.startup);
        match self.fault.take() {
            Some(mut f) => {
                self.input_fault(&mut f, input, &mut out);
                // Every input can be the one that empties a drainee:
                // sweep for drains that reached quiescence.
                self.check_drains(&mut f, &mut out);
                self.fault = Some(f);
            }
            None => self.input_classic(input, &mut out),
        }
        out
    }

    // --- accessors (drivers and tests) ---------------------------------

    /// The protocol-visible configuration.
    pub fn config(&self) -> &ProtocolConfig {
        &self.cfg
    }

    /// One host's protocol state (read-only).
    // analyze: allow(panic, reason = "host ids index the per-ring table sized at construction")
    pub fn host(&self, host: HostId) -> &HostProtocol<P> {
        &self.hosts[host.0]
    }

    /// Payload of the envelope `host` is currently joining (drivers hand
    /// this to the application callback after [`Output::StartJoin`]).
    // analyze: allow(panic, reason = "host ids index the per-ring table sized at construction")
    pub fn processing_payload(&self, host: HostId) -> Option<&P> {
        self.hosts[host.0].processing_payload()
    }

    /// Total fragments injected at construction.
    pub fn fragments_total(&self) -> usize {
        self.fragments_total
    }

    /// Fragments that completed their revolution so far.
    pub fn fragments_completed(&self) -> usize {
        self.fragments_completed
    }

    /// Continuous mode: has the application declared itself finished?
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Multi-tenant mode: the per-query ledger (admission state, credit
    /// quota, per-query counters). `None` on single-query rings.
    pub fn query_ledger(&self) -> Option<&QueryLedger<P>> {
        self.queries.as_ref()
    }

    /// Per-query metrics of a multiplexed run, in query-id order (empty
    /// on single-query rings). Every backend's `into_result` calls this so
    /// the per-tenant breakdown is assembled exactly one way.
    pub fn query_metrics(&self) -> Vec<crate::metrics::QueryMetrics> {
        let Some(q) = self.queries.as_ref() else {
            return Vec::new();
        };
        (0..q.len() as u32)
            .filter_map(|id| q.entry(id))
            .map(|e| crate::metrics::QueryMetrics {
                tenant: e.tenant,
                fragments_completed: e.completed,
                retransmits: e.retransmits,
                checksum_mismatches: e.checksum_mismatches,
                completed: e.status == super::admission::QueryStatus::Done,
            })
            .collect()
    }

    /// The query whose envelope `host` is currently joining (0 on
    /// single-query rings).
    // analyze: allow(panic, reason = "host ids index the per-ring table sized at construction")
    pub fn processing_query(&self, host: HostId) -> u32 {
        self.hosts[host.0]
            .processing_env()
            .map_or(0, |env| env.query)
    }

    /// Ground truth: has the driver reported `host` dead?
    // analyze: allow(panic, reason = "host ids index the per-ring table sized at construction")
    pub fn is_crashed(&self, host: HostId) -> bool {
        self.fault.as_ref().is_some_and(|f| f.crashed[host.0])
    }

    /// Retransmissions initiated by `host` (reliable mode).
    // analyze: allow(panic, reason = "host ids index the per-ring table sized at construction")
    pub fn retransmits(&self, host: HostId) -> u64 {
        self.fault.as_ref().map_or(0, |f| f.retransmits[host.0])
    }

    /// Corrupted deliveries detected at `host` (reliable mode).
    // analyze: allow(panic, reason = "host ids index the per-ring table sized at construction")
    pub fn checksum_mismatches(&self, host: HostId) -> u64 {
        self.fault
            .as_ref()
            .map_or(0, |f| f.checksum_mismatches[host.0])
    }

    /// Confirmed host deaths healed around.
    pub fn heal_events(&self) -> usize {
        self.fault.as_ref().map_or(0, |f| f.heal_events)
    }

    /// Fragments re-injected from their origin after being lost with a
    /// dead host.
    pub fn fragments_resent(&self) -> usize {
        self.fault.as_ref().map_or(0, |f| f.fragments_resent)
    }

    /// The current membership epoch: completed planned joins + drains
    /// (crash healing never advances it).
    pub fn membership_epoch(&self) -> u64 {
        self.fault.as_ref().map_or(0, |f| f.membership.epoch())
    }

    /// Completed planned host joins (standby activations).
    pub fn rescale_joins(&self) -> u64 {
        self.fault.as_ref().map_or(0, |f| f.membership.joins())
    }

    /// Completed graceful host drains.
    pub fn rescale_drains(&self) -> u64 {
        self.fault.as_ref().map_or(0, |f| f.membership.drains())
    }

    /// Stationary partitions moved by planned handoffs.
    pub fn rescale_handoffs(&self) -> u64 {
        self.fault.as_ref().map_or(0, |f| f.membership.handoffs())
    }

    /// Drains that stalled past their deadline and degraded into the
    /// crash-healing path.
    pub fn rescale_escalations(&self) -> u64 {
        self.fault
            .as_ref()
            .map_or(0, |f| f.membership.escalations())
    }

    /// Is `host` inside the ring (active member or mid-drain relay)?
    pub fn is_member(&self, host: HostId) -> bool {
        match self.fault.as_ref() {
            Some(f) => f.membership.in_ring(host),
            None => host.0 < self.cfg.hosts,
        }
    }

    /// Reports the fate the driver's fault dice dealt to the attempt just
    /// emitted as [`Output::Send`] — the healing ledger uses it to decide
    /// whether the receiver may hold a live copy.
    // analyze: allow(panic, reason = "host ids index the per-ring table sized at construction")
    pub fn attempt_fate(&mut self, tid: u64, dropped: bool, corrupt: bool) {
        if let Some(f) = self.fault.as_mut() {
            if let Some(e) = f.in_flight.get_mut(&tid) {
                e.maybe_live = !dropped && !corrupt && !f.crashed[e.to.0];
            }
        }
    }

    // --- model-checker introspection ------------------------------------

    /// The canonical, payload-free fingerprint of the current state — see
    /// [`super::snapshot`] for what is included and why. Pure metrics
    /// (retransmit/mismatch counters, wire sequences, the tid allocator)
    /// are deliberately excluded so behaviorally identical states
    /// fingerprint identically.
    pub fn snapshot(&self) -> StateSnapshot {
        let env_snap = |e: &Envelope<P>| EnvSnap {
            id: e.id.0,
            origin: e.origin.0,
            hops_remaining: e.hops_remaining,
            visited: e.visited,
        };
        let held_snap = |h: &super::host::Held<P>| HeldSnap {
            env: env_snap(&h.env),
            pooled: h.pooled,
        };
        let mask = |bits: &[bool]| {
            bits.iter()
                .enumerate()
                .fold(0u64, |m, (h, &b)| if b { m | (1u64 << h) } else { m })
        };
        StateSnapshot {
            hosts: self
                .hosts
                .iter()
                .map(|h| HostSnap {
                    ready: h.is_ready(),
                    sending: h.is_sending(),
                    pool_used: h.pool_used(),
                    used_by_query: h.used_by_query().to_vec(),
                    incoming: h.incoming_held().map(held_snap).collect(),
                    processing: h.processing_held().map(held_snap),
                    outgoing: h.outgoing_queue().map(env_snap).collect(),
                })
                .collect(),
            fragments_completed: self.fragments_completed,
            stopped: self.stopped,
            queries: self.queries.as_ref().map(|q| QueriesSnap {
                status: (0..q.len())
                    .map(|i| match q.entry(i as u32).map(|e| e.status) {
                        Some(QueryStatus::Pending) | None => 0,
                        Some(QueryStatus::Active) => 1,
                        Some(QueryStatus::Done) => 2,
                    })
                    .collect(),
                completed: (0..q.len())
                    .map(|i| q.entry(i as u32).map_or(0, |e| e.completed))
                    .collect(),
                quota: q.quota(),
                admit_cursor: q.admit_cursor(),
                send_cursor: q.send_cursors().to_vec(),
            }),
            fault: self.fault.as_ref().map(|f| {
                let mut accepted: Vec<u64> = f.accepted.iter().copied().collect();
                accepted.sort_unstable();
                let mut requeued: Vec<u64> = f.requeued.iter().copied().collect();
                requeued.sort_unstable();
                FaultSnap {
                    crashed: mask(&f.crashed),
                    confirmed_dead: mask(&f.confirmed_dead),
                    paused: mask(&f.paused),
                    absorbing: f.absorbing.clone(),
                    roles: f
                        .roles
                        .iter()
                        .map(|rs| {
                            let mut rs = rs.clone();
                            rs.sort_unstable();
                            rs
                        })
                        .collect(),
                    membership: MembershipSnap {
                        active: f.membership.active_mask(),
                        draining: f.membership.draining_mask(),
                        departed: f.membership.departed_mask(),
                        epoch: f.membership.epoch(),
                        joins: f.membership.joins(),
                        drains: f.membership.drains(),
                        handoffs: f.membership.handoffs(),
                        escalations: f.membership.escalations(),
                    },
                    in_flight: f
                        .in_flight
                        .iter()
                        .map(|(&tid, e)| InFlightSnap {
                            tid,
                            from: e.from.0,
                            to: e.to.0,
                            attempts: e.attempts,
                            maybe_live: e.maybe_live,
                            env: env_snap(&e.env),
                        })
                        .collect(),
                    accepted,
                    requeued,
                    awaiting: f.awaiting.clone(),
                    probing: f
                        .probing
                        .iter()
                        .map(|p| p.map(|(to, a)| (to.0, a)))
                        .collect(),
                }
            }),
        }
    }

    /// The environment inputs a reliable-mode driver could legitimately
    /// inject *now*: crash reports for hosts that still act, and the
    /// rescale requests [`Input::JoinRequest`] / [`Input::DrainRequest`]
    /// that would not be ignored in the current membership view. The
    /// model checker branches over this set (under its fault budgets);
    /// protocol-driven inputs (deliveries, acks, ticks, completions) are
    /// derived from earlier outputs, not enumerated here.
    pub fn enabled_inputs(&self) -> Vec<Input<P>> {
        let mut inputs = Vec::new();
        let Some(f) = self.fault.as_ref() else {
            return inputs;
        };
        for h in 0..self.cfg.hosts {
            let host = HostId(h);
            let crashed = f.crashed.get(h).copied().unwrap_or(true);
            if !crashed && (f.membership.in_ring(host) || f.membership.is_standby(host)) {
                inputs.push(Input::PeerDead { host });
            }
            if !crashed && f.membership.is_standby(host) {
                inputs.push(Input::JoinRequest { host });
            }
            if !crashed
                && !f.confirmed_dead.get(h).copied().unwrap_or(true)
                && f.membership.in_ring(host)
                && !f.membership.is_draining(host)
                && !f.handoff_candidates(Some(host)).is_empty()
            {
                inputs.push(Input::DrainRequest { host });
            }
        }
        inputs
    }

    /// Test-only sabotage hook for the model checker's self-check: frees
    /// one pool element at `host` that was never released by a finished
    /// join — a double-credit grant that must break the credit-conservation
    /// invariant. Never called by drivers.
    #[doc(hidden)]
    pub fn test_only_release_slot(&mut self, host: HostId) {
        if let Some(h) = self.hosts.get_mut(host.0) {
            h.release_slot();
        }
    }

    // --- classic (unacknowledged) path ----------------------------------

    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction")
    fn input_classic(&mut self, input: Input<P>, out: &mut Vec<Output<P>>) {
        match input {
            Input::SetupDone { host } => {
                self.hosts[host.0].set_ready();
                self.try_start_join(host, out);
            }
            Input::JoinDone { host, app_finished } => {
                self.on_join_done(host, app_finished, out);
            }
            Input::Delivered { to, env, .. } => {
                out.push(Output::Delivered {
                    host: to,
                    id: env.id,
                    bytes: env.bytes(),
                });
                self.hosts[to.0].deliver(env, true);
                self.try_start_join(to, out);
            }
            Input::SendDone { from } => {
                self.hosts[from.0].set_sending(false);
                self.try_send(from, out);
            }
            Input::Ack { .. }
            | Input::Tick { .. }
            | Input::PeerDead { .. }
            | Input::Paused { .. }
            | Input::Resumed { .. }
            | Input::AbsorbDone { .. }
            | Input::JoinRequest { .. }
            | Input::DrainRequest { .. } => {
                out.push(Output::Teardown {
                    reason: "reliable-transport input on the classic path",
                });
            }
        }
    }

    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction")
    fn try_start_join(&mut self, host: HostId, out: &mut Vec<Output<P>>) {
        let Some(ticket) = self.hosts[host.0].begin_join() else {
            return;
        };
        let bytes = self.hosts[host.0]
            .processing_env()
            .map_or(0, Envelope::bytes);
        out.push(Output::StartJoin {
            host,
            id: ticket.id,
            hop: ticket.hop,
            roles: None,
            bytes,
        });
    }

    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction; JoinDone without a running join is a driver contract violation surfaced as Teardown")
    fn on_join_done(&mut self, host: HostId, app_finished: bool, out: &mut Vec<Output<P>>) {
        let Some((mut env, released)) = self.hosts[host.0].finish_join() else {
            out.push(Output::Teardown {
                reason: "JoinDone without an envelope in processing",
            });
            return;
        };
        if released {
            // The join entity is done reading the buffer element in
            // place; its receive credit returns and may unblock our
            // predecessor.
            let prev = HostId((host.0 + self.cfg.hosts - 1) % self.cfg.hosts);
            self.try_send(prev, out);
        }
        if self.cfg.continuous {
            if app_finished {
                self.stopped = true;
                out.push(Output::Finished { host });
                return;
            }
            // The hot set never retires: reset the hop budget and keep it
            // circulating (single-host "rings" just requeue locally).
            env.hops_remaining = self.cfg.hosts.max(2);
            if self.cfg.hosts == 1 {
                self.hosts[host.0].inject_local(env);
            } else {
                self.hosts[host.0].queue_outgoing(env);
                self.try_send(host, out);
            }
        } else {
            match self.hosts[host.0].route(&mut env) {
                Route::Forward => {
                    out.push(Output::Processed { host, id: env.id });
                    self.hosts[host.0].queue_outgoing(env);
                    self.try_send(host, out);
                }
                Route::Retire => {
                    out.push(Output::Retire {
                        host,
                        id: env.id,
                        salvaged: false,
                    });
                    self.fragments_completed += 1;
                }
            }
        }
        self.try_start_join(host, out);
    }

    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction")
    fn try_send(&mut self, host: HostId, out: &mut Vec<Output<P>>) {
        if self.cfg.hosts == 1 {
            return;
        }
        let next = HostId((host.0 + 1) % self.cfg.hosts);
        if self.hosts[host.0].is_sending()
            || !self.hosts[host.0].has_outgoing()
            || !self.hosts[next.0].has_free_slot()
        {
            return;
        }
        let env = match self.hosts[host.0].pop_outgoing() {
            Some(env) => env,
            None => return,
        };
        // Pre-post the receive buffer at the successor (an RDMA receive
        // needs the slot reserved at the sender's send time).
        self.hosts[next.0].reserve_slot();
        self.hosts[host.0].set_sending(true);
        out.push(Output::Send {
            from: host,
            to: next,
            tid: 0,
            attempt: 1,
            env,
        });
    }

    // --- reliable (acked, healing) path ---------------------------------

    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction")
    fn input_fault(&mut self, f: &mut FaultLedger<P>, input: Input<P>, out: &mut Vec<Output<P>>) {
        match input {
            Input::SetupDone { host } => {
                if f.crashed[host.0] {
                    return;
                }
                self.hosts[host.0].set_ready();
                self.try_start_join_fault(f, host, out);
            }
            Input::JoinDone { host, .. } => self.on_join_done_fault(f, host, out),
            Input::Delivered { to, env, tid } => self.on_delivered_fault(f, to, env, tid, out),
            Input::SendDone { from } => {
                self.hosts[from.0].set_sending(false);
                if !f.crashed[from.0] {
                    self.try_send_fault(f, from, out);
                }
            }
            Input::Ack { tid } => self.on_ack(f, tid, out),
            Input::Tick {
                timer: Timer::Retransmit { tid, attempt },
            } => self.on_ack_timeout(f, tid, attempt, out),
            Input::Tick {
                timer: Timer::Probe { from, to, attempt },
            } => self.on_probe_timeout(f, from, to, attempt, out),
            Input::Tick {
                timer: Timer::DrainDeadline { host, attempt },
            } => self.on_drain_deadline(f, host, attempt, out),
            Input::JoinRequest { host } => self.on_join_request(f, host, out),
            Input::DrainRequest { host } => self.on_drain_request(f, host, out),
            Input::PeerDead { host } => {
                f.crashed[host.0] = true;
            }
            Input::Paused { host } => {
                if !f.crashed[host.0] {
                    f.paused[host.0] = true;
                }
            }
            Input::Resumed { host } => {
                if f.crashed[host.0] {
                    return;
                }
                f.paused[host.0] = false;
                self.try_start_join_fault(f, host, out);
                self.try_send_fault(f, host, out);
            }
            Input::AbsorbDone { host } => {
                if f.crashed[host.0] {
                    return;
                }
                f.absorbing[host.0] = f.absorbing[host.0].saturating_sub(1);
                if f.absorbing[host.0] == 0 {
                    self.try_start_join_fault(f, host, out);
                    self.try_send_fault(f, host, out);
                }
            }
        }
    }

    /// Reliable receive: NIC-level checksum verification, duplicate
    /// suppression and acknowledgement, all active even while the host's
    /// software is paused. A crashed host's NIC is a black hole.
    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction; the healing path is exercised exhaustively by the chaos and proptest suites")
    fn on_delivered_fault(
        &mut self,
        f: &mut FaultLedger<P>,
        to: HostId,
        env: Envelope<P>,
        tid: u64,
        out: &mut Vec<Output<P>>,
    ) {
        if f.crashed[to.0] {
            if let Some(entry) = f.in_flight.get_mut(&tid) {
                // The sender still tracks this transfer; its timeout path
                // will retransmit or reroute. The copy itself dies here.
                entry.maybe_live = false;
            } else if !f.requeued.contains(&tid) && !f.accepted.contains(&tid) {
                // The sender healed past this transfer and no earlier
                // attempt was ever accepted into the ring — the copy on
                // the wire is the last one; salvage it. (An accepted tid
                // means an earlier attempt already delivered: this late
                // duplicate must die with the corpse, not fork.) The
                // tombstone makes the salvage exactly-once: a second late
                // copy of the same transfer must not revive it again.
                f.requeued.insert(tid);
                self.resend_from_origin(f, env, out);
            }
            return;
        }
        if !env.checksum_ok() {
            f.checksum_mismatches[to.0] += 1;
            if let Some(q) = self.queries.as_mut() {
                q.count_checksum_mismatch(env.query);
            }
            out.push(Output::ChecksumMismatch {
                host: to,
                id: env.id,
            });
            // No ack: the sender's timeout drives the retransmission.
            return;
        }
        if f.requeued.contains(&tid) {
            // A late copy of a transfer healing already rerouted: the
            // fragment lives on its revived path — accepting this copy
            // would fork the revolution into two live copies.
            out.push(Output::DuplicateDropped {
                host: to,
                id: env.id,
            });
            return;
        }
        // Ack at NIC level on the backward channel of the sender's link,
        // so acks never contend with payload and paused hosts still
        // answer.
        if let Some(entry) = f.in_flight.get(&tid) {
            out.push(Output::Ack {
                to: entry.from,
                tid,
            });
        }
        if !f.accepted.insert(tid) {
            // A spurious retransmission delivered a second copy.
            out.push(Output::DuplicateDropped {
                host: to,
                id: env.id,
            });
            return;
        }
        out.push(Output::Delivered {
            host: to,
            id: env.id,
            bytes: env.bytes(),
        });
        self.hosts[to.0].deliver(env, true);
        self.try_start_join_fault(f, to, out);
    }

    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction")
    fn on_ack(&mut self, f: &mut FaultLedger<P>, tid: u64, out: &mut Vec<Output<P>>) {
        let Some(entry) = f.in_flight.remove(&tid) else {
            return; // transfer already settled (healed or superseded)
        };
        if f.awaiting[entry.from.0] == Some(tid) {
            f.awaiting[entry.from.0] = None;
        }
        if !f.crashed[entry.from.0] {
            self.try_send_fault(f, entry.from, out);
        }
    }

    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction; ledger lookups after presence checks")
    fn on_ack_timeout(
        &mut self,
        f: &mut FaultLedger<P>,
        tid: u64,
        attempt: u32,
        out: &mut Vec<Output<P>>,
    ) {
        let (from, to, attempts) = match f.in_flight.get(&tid) {
            Some(e) => (e.from, e.to, e.attempts),
            None => return, // acked or rerouted in the meantime
        };
        if attempts != attempt {
            return; // stale timer of an earlier attempt
        }
        if f.crashed[from.0] {
            return; // dead senders do not retransmit; healing recovers this
        }
        if f.confirmed_dead[to.0] {
            // Someone else confirmed the death first: reroute this
            // transfer to the head of the queue so it takes the healed
            // path next.
            let entry = f.in_flight.remove(&tid).expect("looked up above");
            f.requeued.insert(tid);
            if f.awaiting[from.0] == Some(tid) {
                f.awaiting[from.0] = None;
            }
            self.hosts[from.0].requeue_outgoing_front(entry.env);
            self.try_send_fault(f, from, out);
            return;
        }
        match on_timeout(attempt, self.cfg.max_retransmits) {
            TimeoutVerdict::Exhausted => {
                // Budget exhausted: the successor is dead. (A live
                // receiver always acks eventually — corruption rerolls
                // per attempt.)
                self.confirm_death(f, to, out);
            }
            TimeoutVerdict::Retry { .. } => {
                let entry = f.in_flight.get_mut(&tid).expect("looked up above");
                entry.attempts += 1;
                let query = entry.env.query;
                f.retransmits[from.0] += 1;
                if let Some(q) = self.queries.as_mut() {
                    q.count_retransmit(query);
                }
                self.transmit_attempt(f, tid, out);
            }
        }
    }

    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction; the healing path is exercised exhaustively by the chaos and proptest suites")
    fn on_probe_timeout(
        &mut self,
        f: &mut FaultLedger<P>,
        from: HostId,
        to: HostId,
        attempt: u32,
        out: &mut Vec<Output<P>>,
    ) {
        if f.probing[from.0] != Some((to, attempt)) {
            return; // stale probe
        }
        if f.crashed[from.0] {
            f.probing[from.0] = None;
            return;
        }
        // Multi-tenant: "the pool is full" widens to "no queued query can
        // reserve a slot" — a partition-exhausted sender must keep probing
        // so a corpse behind an exhausted quota is still detected.
        let pool_blocked = match self.queries.as_ref() {
            Some(q) => {
                let queued = self.hosts[from.0].outgoing_query_set();
                !queued
                    .iter()
                    .any(|&qid| self.hosts[to.0].can_accept(qid, q.quota()))
            }
            None => !self.hosts[to.0].has_free_slot(),
        };
        let blocked = self.hosts[from.0].has_outgoing()
            && !self.hosts[from.0].is_sending()
            && f.awaiting[from.0].is_none()
            && !f.confirmed_dead[to.0]
            && f.next_alive(from) == to
            && pool_blocked;
        if !blocked {
            f.probing[from.0] = None;
            self.try_send_fault(f, from, out);
            return;
        }
        if f.crashed[to.0] {
            // The probe went unanswered: a crashed NIC. Count attempts
            // with the same budget and backoff as data retransmissions.
            if attempt > self.cfg.max_retransmits {
                f.probing[from.0] = None;
                self.confirm_death(f, to, out);
            } else {
                f.probing[from.0] = Some((to, attempt + 1));
                out.push(Output::ArmTimer {
                    timer: Timer::Probe {
                        from,
                        to,
                        attempt: attempt + 1,
                    },
                    backoff_exp: attempt.min(BACKOFF_CAP),
                });
            }
        } else {
            // The successor's NIC answered: alive, just slow or paused.
            // Keep watching at the base interval.
            f.probing[from.0] = Some((to, 1));
            out.push(Output::ArmTimer {
                timer: Timer::Probe {
                    from,
                    to,
                    attempt: 1,
                },
                backoff_exp: 0,
            });
        }
    }

    // --- planned membership (rescale) ------------------------------------

    /// A provisioned standby enters the ring: the epoch advances, hop
    /// links re-splice around the new member, and rendezvous hashing
    /// moves exactly the stationary partitions it now owns from their
    /// donors (minimal movement — every other role stays put).
    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction; the rescale path is exercised exhaustively by the membership proptest suite")
    fn on_join_request(&mut self, f: &mut FaultLedger<P>, host: HostId, out: &mut Vec<Output<P>>) {
        if host.0 >= self.cfg.hosts
            || !f.membership.is_standby(host)
            || f.crashed[host.0]
            || f.confirmed_dead[host.0]
        {
            return; // invalid or duplicate request: ignore
        }
        let epoch = f.membership.activate(host);
        out.push(Output::Activate { host, epoch });
        let candidates = f.handoff_candidates(None);
        let mut moved: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for donor in 0..self.cfg.hosts {
            if donor == host.0 || f.crashed[donor] || f.confirmed_dead[donor] {
                continue; // a suspected-dead donor's roles travel via healing
            }
            let take: Vec<usize> = f.roles[donor]
                .iter()
                .copied()
                .filter(|r| rendezvous_owner(*r, &candidates) == Some(host))
                .collect();
            if !take.is_empty() {
                f.roles[donor].retain(|r| !take.contains(r));
                moved.insert(donor, take);
            }
        }
        for (donor, roles) in moved {
            f.roles[host.0].extend(roles.iter().copied());
            f.membership.count_handoffs(roles.len() as u64);
            f.absorbing[host.0] += 1;
            out.push(Output::Handoff {
                from: HostId(donor),
                to: host,
                roles,
            });
        }
        self.kick_ring(f, out);
    }

    /// An active member asks to leave: its stationary partitions hand
    /// off immediately (it keeps relaying — the role-less pass-through
    /// path), a drain deadline is armed, and the departure itself waits
    /// for quiescence (see `check_drains`).
    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction; the rescale path is exercised exhaustively by the membership proptest suite")
    fn on_drain_request(&mut self, f: &mut FaultLedger<P>, host: HostId, out: &mut Vec<Output<P>>) {
        if host.0 >= self.cfg.hosts
            || !f.membership.in_ring(host)
            || f.membership.is_draining(host)
            || f.crashed[host.0]
            || f.confirmed_dead[host.0]
        {
            return; // invalid or duplicate request: ignore
        }
        if f.handoff_candidates(Some(host)).is_empty() {
            return; // draining the last healthy member would kill the ring
        }
        f.membership.begin_drain(host);
        self.redistribute_roles(f, host, out);
        out.push(Output::ArmTimer {
            timer: Timer::DrainDeadline { host, attempt: 1 },
            backoff_exp: 0,
        });
        self.kick_ring(f, out);
    }

    /// Moves every role `host` still serves to its rendezvous owner
    /// among the remaining healthy members. Returns false when no
    /// recipient exists (the roles stay put and the drain cannot
    /// complete yet).
    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction; the rescale path is exercised exhaustively by the membership proptest suite")
    fn redistribute_roles(
        &mut self,
        f: &mut FaultLedger<P>,
        host: HostId,
        out: &mut Vec<Output<P>>,
    ) -> bool {
        if f.roles[host.0].is_empty() {
            return true;
        }
        let recipients = f.handoff_candidates(Some(host));
        if recipients.is_empty() {
            return false;
        }
        let leaving = std::mem::take(&mut f.roles[host.0]);
        let mut moved: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for role in leaving {
            if let Some(to) = rendezvous_owner(role, &recipients) {
                moved.entry(to.0).or_default().push(role);
            }
        }
        for (to, roles) in moved {
            f.roles[to].extend(roles.iter().copied());
            f.membership.count_handoffs(roles.len() as u64);
            f.absorbing[to] += 1;
            out.push(Output::Handoff {
                from: host,
                to: HostId(to),
                roles,
            });
        }
        true
    }

    /// The drain deadline fired: re-arm with backoff while the budget
    /// lasts, then degrade the stalled drain into the crash-healing path
    /// (the drainee is treated as dead; healing salvages and re-sends).
    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction; the rescale path is exercised exhaustively by the membership proptest suite")
    fn on_drain_deadline(
        &mut self,
        f: &mut FaultLedger<P>,
        host: HostId,
        attempt: u32,
        out: &mut Vec<Output<P>>,
    ) {
        if !f.membership.is_draining(host) || f.confirmed_dead[host.0] {
            return; // departed, escalated or healed in the meantime
        }
        if attempt <= self.cfg.max_retransmits {
            out.push(Output::ArmTimer {
                timer: Timer::DrainDeadline {
                    host,
                    attempt: attempt + 1,
                },
                backoff_exp: attempt.min(BACKOFF_CAP),
            });
            return;
        }
        if (0..self.cfg.hosts).all(|h| h == host.0 || !f.routes(h)) {
            // No survivor to heal into: the drain is cancelled instead
            // (the host stays a member and finishes the work itself).
            f.membership.abort_drain(host);
            return;
        }
        f.membership.abort_drain(host);
        f.membership.count_escalation();
        f.crashed[host.0] = true;
        self.confirm_death(f, host, out);
    }

    /// Sweeps for drains that reached quiescence: a drainee with empty
    /// queues, a free wire and no transfer in flight touching it departs
    /// — the epoch advances and hop links re-splice past it. Roles that
    /// healing handed *back* to a drainee are re-redistributed first.
    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction; the rescale path is exercised exhaustively by the membership proptest suite")
    fn check_drains(&mut self, f: &mut FaultLedger<P>, out: &mut Vec<Output<P>>) {
        let mut progress = true;
        while progress {
            progress = false;
            for h in 0..self.cfg.hosts {
                let host = HostId(h);
                let quiescent = f.membership.is_draining(host)
                    && !f.crashed[h]
                    && !self.hosts[h].has_work()
                    && !self.hosts[h].has_outgoing()
                    && !self.hosts[h].is_sending()
                    && f.awaiting[h].is_none()
                    && !f.in_flight.values().any(|e| e.to == host || e.from == host);
                if !quiescent || !self.redistribute_roles(f, host, out) {
                    continue;
                }
                let epoch = f.membership.depart(host);
                f.probing[h] = None;
                out.push(Output::Departed { host, epoch });
                self.kick_ring(f, out);
                progress = true;
            }
        }
    }

    /// Kicks every live ring member: a membership change re-splices hop
    /// links, so blocked transmitters and idle join entities must
    /// re-evaluate their routes.
    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction; the rescale path is exercised exhaustively by the membership proptest suite")
    fn kick_ring(&mut self, f: &mut FaultLedger<P>, out: &mut Vec<Output<P>>) {
        for h in 0..self.cfg.hosts {
            if f.routes(h) && !f.crashed[h] {
                self.try_send_fault(f, HostId(h), out);
                self.try_start_join_fault(f, HostId(h), out);
            }
        }
    }

    /// Reliable join start: computes the set of not-yet-visited roles
    /// this host serves, marks them in the exactly-once ledger at join
    /// *start* (joins are atomic units whose output is modeled as durably
    /// streamed at process time), and forwards fully-covered envelopes
    /// without joining.
    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction; the healing path is exercised exhaustively by the chaos and proptest suites")
    fn try_start_join_fault(
        &mut self,
        f: &mut FaultLedger<P>,
        host: HostId,
        out: &mut Vec<Output<P>>,
    ) {
        loop {
            if f.crashed[host.0]
                || f.paused[host.0]
                || f.absorbing[host.0] > 0
                || !self.hosts[host.0].is_ready()
                || self.hosts[host.0].is_processing()
                || !self.hosts[host.0].has_incoming()
            {
                return;
            }
            let mut held = match self.hosts[host.0].pop_incoming() {
                Some(held) => held,
                None => return,
            };
            let apply = f.role_mask(host) & !held.env.visited;
            if apply == 0 {
                // Every partition this host serves already joined this
                // fragment (healed-route pass-through): forward unjoined.
                if held.pooled {
                    self.hosts[host.0].release_slot_for(held.env.query);
                    let prev = f.prev_alive(host);
                    self.try_send_fault(f, prev, out);
                }
                out.push(Output::PassThrough {
                    host,
                    id: held.env.id,
                });
                self.route_onward_fault(f, host, held.env, out);
                continue;
            }
            // Roles already joined before this stop — the fault-mode hop
            // index (routing may bypass healed-over hosts).
            let hop = held.env.visited.count_ones() as usize;
            held.env.mark_visited(apply);
            let roles: Vec<usize> = f.roles[host.0]
                .iter()
                .copied()
                .filter(|r| apply & (1u64 << r) != 0)
                .collect();
            let id = held.env.id;
            let bytes = held.env.bytes();
            self.hosts[host.0].set_processing(held);
            out.push(Output::StartJoin {
                host,
                id,
                hop,
                roles: Some(roles),
                bytes,
            });
            return;
        }
    }

    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction")
    fn on_join_done_fault(
        &mut self,
        f: &mut FaultLedger<P>,
        host: HostId,
        out: &mut Vec<Output<P>>,
    ) {
        if f.crashed[host.0] {
            // The join died with the host; healing salvages its envelope.
            return;
        }
        let Some((env, released)) = self.hosts[host.0].finish_join() else {
            out.push(Output::Teardown {
                reason: "JoinDone without an envelope in processing",
            });
            return;
        };
        if released {
            let prev = f.prev_alive(host);
            self.try_send_fault(f, prev, out);
        }
        out.push(Output::Processed { host, id: env.id });
        self.route_onward_fault(f, host, env, out);
        self.try_start_join_fault(f, host, out);
    }

    /// Retires a fully-visited envelope or queues it for the next hop.
    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction")
    fn route_onward_fault(
        &mut self,
        f: &mut FaultLedger<P>,
        host: HostId,
        env: Envelope<P>,
        out: &mut Vec<Output<P>>,
    ) {
        if env.visited_all(f.full_mask) {
            out.push(Output::Retire {
                host,
                id: env.id,
                salvaged: false,
            });
            self.fragments_completed += 1;
            self.note_fragment_done(f, env.query, out);
            return;
        }
        self.hosts[host.0].queue_outgoing(env);
        self.try_send_fault(f, host, out);
    }

    /// Multi-tenant completion bookkeeping after a retire: counts the
    /// fragment against its query, emits [`Output::QueryDone`] when the
    /// query's last fragment retired, and admits pending queries into the
    /// freed active slots (injecting their envelopes at each origin — or,
    /// when an origin has died or departed, the nearest routable host
    /// after it, mirroring `resend_from_origin`).
    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction; the multiplexed path is exercised by the multi-tenant proptest and chaos suites")
    fn note_fragment_done(&mut self, f: &mut FaultLedger<P>, query: u32, out: &mut Vec<Output<P>>) {
        let mut admissions = Vec::new();
        {
            let Some(q) = self.queries.as_mut() else {
                return;
            };
            if !q.note_completed(query) {
                return;
            }
            let tenant = q.entry(query).map_or(0, |e| e.tenant);
            out.push(Output::QueryDone { query, tenant });
            while let Some(admitted) = q.admit_next() {
                admissions.push(admitted);
            }
        }
        for (query, tenant, batches) in admissions {
            out.push(Output::QueryAdmitted { query, tenant });
            for (h, envs) in batches.into_iter().enumerate() {
                for env in envs {
                    match f.inject_target(HostId(h)) {
                        Some(target) => self.hosts[target.0].inject_local(env),
                        None => {
                            out.push(Output::Teardown {
                                reason: teardown::NO_RESEND_SURVIVOR,
                            });
                            return;
                        }
                    }
                }
            }
            self.kick_ring(f, out);
        }
    }

    /// Reliable transmit: stop-and-wait per sender with the successor
    /// chosen through the healed routing table.
    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction; the healing path is exercised exhaustively by the chaos and proptest suites")
    fn try_send_fault(&mut self, f: &mut FaultLedger<P>, host: HostId, out: &mut Vec<Output<P>>) {
        if self.cfg.hosts == 1 {
            return;
        }
        if f.crashed[host.0] || f.paused[host.0] {
            return;
        }
        if self.hosts[host.0].is_sending()
            || f.awaiting[host.0].is_some()
            || !self.hosts[host.0].has_outgoing()
        {
            return;
        }
        let next = f.next_alive(host);
        if next == host {
            // Sole survivor: remaining rotation work loops back locally.
            while let Some(env) = self.hosts[host.0].pop_outgoing() {
                self.hosts[host.0].inject_local(env);
            }
            self.try_start_join_fault(f, host, out);
            return;
        }
        let mut env = if self.queries.is_some() {
            match self.pick_outgoing_multi(f, host, next, out) {
                Some(env) => env,
                None => return,
            }
        } else {
            if !self.hosts[next.0].has_free_slot() {
                // Blocked on the successor's receive pool. Probe it so a
                // corpse with a full pool is still detected (no data, no
                // ack timeout).
                if f.probing[host.0].is_none() {
                    f.probing[host.0] = Some((next, 1));
                    out.push(Output::ArmTimer {
                        timer: Timer::Probe {
                            from: host,
                            to: next,
                            attempt: 1,
                        },
                        backoff_exp: 0,
                    });
                }
                return;
            }
            f.probing[host.0] = None;
            let env = match self.hosts[host.0].pop_outgoing() {
                Some(env) => env,
                None => return,
            };
            self.hosts[next.0].reserve_slot();
            env
        };
        let tid = f.next_tid;
        f.next_tid += 1;
        // Per-sender wire sequence: the same numbering the live backend's
        // LinkSender stamps, so fault dice agree across backends. In
        // multi-tenant mode the sequence space is per-(sender, query) —
        // query id in the high bits — so each query's dice are private
        // and independent of cross-query interleaving.
        env.seq = match self.queries.as_mut() {
            Some(q) => q.next_seq(host.0, env.query),
            None => {
                f.wire_seq[host.0] += 1;
                f.wire_seq[host.0]
            }
        };
        f.awaiting[host.0] = Some(tid);
        f.in_flight.insert(
            tid,
            InFlight {
                from: host,
                to: next,
                env,
                attempts: 1,
                maybe_live: false,
            },
        );
        self.transmit_attempt(f, tid, out);
    }

    /// Multi-tenant transmit selection: rotates the host's fairness
    /// cursor over the queries with queued envelopes, picks the first
    /// whose credit partition at `next` can take a slot (reserving it),
    /// and charges a deficit tick to every eligible query passed over.
    /// Arms the flow-control probe when *every* queued query is blocked.
    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction; the multiplexed path is exercised by the multi-tenant proptest and chaos suites")
    fn pick_outgoing_multi(
        &mut self,
        f: &mut FaultLedger<P>,
        host: HostId,
        next: HostId,
        out: &mut Vec<Output<P>>,
    ) -> Option<Envelope<P>> {
        let queued = self.hosts[host.0].outgoing_query_set();
        let q = self.queries.as_mut()?;
        let chosen = q
            .send_order(host.0, &queued)
            .into_iter()
            .find(|&qid| self.hosts[next.0].can_accept(qid, q.quota()));
        let Some(qid) = chosen else {
            // Every queued query is blocked on the successor (pool full
            // or partition exhausted): probe so a corpse behind a full
            // pool is still detected.
            if !queued.is_empty() && f.probing[host.0].is_none() {
                f.probing[host.0] = Some((next, 1));
                out.push(Output::ArmTimer {
                    timer: Timer::Probe {
                        from: host,
                        to: next,
                        attempt: 1,
                    },
                    backoff_exp: 0,
                });
            }
            return None;
        };
        f.probing[host.0] = None;
        q.note_served(host.0, qid, &queued);
        let quota = q.quota();
        self.hosts[next.0].reserve_slot_for(qid, quota);
        self.hosts[host.0].pop_outgoing_query(qid)
    }

    /// Emits one attempt of transfer `tid`; the driver rolls the fault
    /// dice for this `(link, seq, attempt)` tuple and reports the fate
    /// back through [`RingProtocol::attempt_fate`].
    // analyze: allow(panic, reason = "transmit of a transfer inserted by the caller; ledger lookups after presence checks")
    fn transmit_attempt(&mut self, f: &mut FaultLedger<P>, tid: u64, out: &mut Vec<Output<P>>) {
        let e = match f.in_flight.get(&tid) {
            Some(e) => e,
            None => return,
        };
        let (from, to, attempt) = (e.from, e.to, e.attempts);
        self.hosts[from.0].set_sending(true);
        out.push(Output::Send {
            from,
            to,
            tid,
            attempt,
            env: e.env.clone(),
        });
        out.push(Output::ArmTimer {
            timer: Timer::Retransmit { tid, attempt },
            backoff_exp: backoff_exponent(attempt),
        });
    }

    /// A peer exhausted its retransmission budget against `dead`: bypass
    /// it, let its successor absorb the orphaned stationary partitions,
    /// and re-send every fragment copy lost in its buffers from the
    /// fragment's origin — mid-revolution ring healing.
    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction; the healing path is exercised exhaustively by the chaos and proptest suites")
    fn confirm_death(&mut self, f: &mut FaultLedger<P>, dead: HostId, out: &mut Vec<Output<P>>) {
        if f.confirmed_dead[dead.0] {
            return;
        }
        if !f.crashed[dead.0] {
            out.push(Output::Teardown {
                reason: teardown::LIVE_HOST_KILLED,
            });
            return;
        }
        f.confirmed_dead[dead.0] = true;
        // A drain the dead host never completed is aborted, not counted:
        // the crash-healing path owns the host now.
        if f.membership.is_draining(dead) {
            f.membership.abort_drain(dead);
        }
        if (0..self.cfg.hosts).all(|h| !f.routes(h)) {
            out.push(Output::Teardown {
                reason: teardown::ALL_HOSTS_DEAD,
            });
            return;
        }
        f.heal_events += 1;
        out.push(Output::Heal { dead });

        // 1. The ring successor absorbs the orphaned stationary
        //    partitions — the exactly-once ledger is the `roles` table:
        //    `take` empties the dead host's entry, so no second survivor
        //    can ever absorb the same role.
        let successor = f.next_alive(dead);
        let orphaned: Vec<usize> = std::mem::take(&mut f.roles[dead.0]);
        if !orphaned.is_empty() {
            f.roles[successor.0].extend(orphaned.iter().copied());
            f.absorbing[successor.0] += 1;
            out.push(Output::Absorb {
                survivor: successor,
                dead,
                roles: orphaned,
            });
        }

        // 2. Salvage every fragment copy lost in the dead host's buffers.
        let mut lost = self.hosts[dead.0].salvage();
        f.awaiting[dead.0] = None;
        f.probing[dead.0] = None;

        // 3. Settle in-flight transfers touching the corpse: transfers
        //    *to* it reroute at their sender; transfers *from* it either
        //    survive at the receiver (only the ack back to the corpse was
        //    lost) or are genuinely gone and join the re-send set.
        let touching: Vec<u64> = f
            .in_flight
            .iter()
            .filter(|(_, e)| e.to == dead || e.from == dead)
            .map(|(tid, _)| *tid)
            .collect();
        for tid in touching {
            let entry = match f.in_flight.remove(&tid) {
                Some(entry) => entry,
                None => continue,
            };
            if entry.to == dead {
                if f.awaiting[entry.from.0] == Some(tid) {
                    f.awaiting[entry.from.0] = None;
                }
                if f.accepted.contains(&tid) {
                    // The corpse accepted this copy before dying (only the
                    // ack back never settled): the copy is in the salvage
                    // set — or already forwarded and alive downstream.
                    // Re-sending from the sender too would fork the
                    // fragment into two live copies.
                } else {
                    f.requeued.insert(tid);
                    self.hosts[entry.from.0].requeue_outgoing_front(entry.env);
                }
            } else if !entry.maybe_live {
                if f.accepted.contains(&tid) {
                    // The receiver accepted an earlier attempt — only the
                    // ack back to the corpse was lost. The copy is alive
                    // downstream; reviving it would fork the fragment.
                } else {
                    // The copy is gone with the wire or the corpse. Free
                    // the receive slot the transfer reserved (the revived
                    // copy reserves its own) and revive the fragment from
                    // the origin below. Any late wire copy of this tid
                    // must die at delivery.
                    self.hosts[entry.to.0].release_slot_for(entry.env.query);
                    f.requeued.insert(tid);
                    lost.push(entry.env);
                }
            }
        }
        for env in lost {
            self.resend_from_origin(f, env, out);
        }

        // 4. Kick every survivor: blocked transmitters now route around
        //    the corpse, and salvaged fragments may be waiting for a join.
        for h in 0..self.cfg.hosts {
            if !f.confirmed_dead[h] && !f.crashed[h] {
                self.try_send_fault(f, HostId(h), out);
                self.try_start_join_fault(f, HostId(h), out);
            }
        }
    }

    /// Re-injects a fragment whose only live copy was lost with a dead
    /// host, from its origin (the fragment's home, which still holds it).
    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction; the healing path is exercised exhaustively by the chaos and proptest suites")
    fn resend_from_origin(
        &mut self,
        f: &mut FaultLedger<P>,
        mut env: Envelope<P>,
        out: &mut Vec<Output<P>>,
    ) {
        if env.visited_all(f.full_mask) {
            // The dead host crashed between starting and finishing the
            // last join; the output is modeled as streamed at process
            // time, so the fragment simply retires.
            out.push(Output::Retire {
                host: env.origin,
                id: env.id,
                salvaged: true,
            });
            self.fragments_completed += 1;
            self.note_fragment_done(f, env.query, out);
            return;
        }
        let Some(target) = f.inject_target(env.origin) else {
            out.push(Output::Teardown {
                reason: teardown::NO_RESEND_SURVIVOR,
            });
            return;
        };
        env.seq = 0;
        f.fragments_resent += 1;
        out.push(Output::Resent { target, id: env.id });
        if f.role_mask(target) & !env.visited != 0 {
            self.hosts[target.0].inject_local(env);
            self.try_start_join_fault(f, target, out);
        } else {
            self.hosts[target.0].queue_outgoing(env);
            self.try_send_fault(f, target, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::FragmentId;
    use crate::protocol::envelope_batches;

    fn ring(hosts: usize, per_host: usize, reliable: bool) -> RingProtocol<Vec<u8>> {
        let cfg = ProtocolConfig {
            hosts,
            buffers_per_host: 2,
            max_retransmits: 4,
            continuous: false,
            reliable,
            standby: 0,
        };
        let payloads: Vec<Vec<Vec<u8>>> = (0..hosts)
            .map(|h| {
                (0..per_host)
                    .map(|i| vec![(h * 10 + i) as u8; 16])
                    .collect()
            })
            .collect();
        RingProtocol::new(cfg, envelope_batches(payloads, hosts))
    }

    /// Converts outputs into the obligations a perfect (lossless) driver
    /// would owe back to the protocol.
    fn fulfill(outputs: Vec<Output<Vec<u8>>>, pending: &mut Vec<Input<Vec<u8>>>) {
        for output in outputs {
            match output {
                Output::StartJoin { host, .. } => pending.push(Input::JoinDone {
                    host,
                    app_finished: false,
                }),
                Output::Send {
                    from, to, tid, env, ..
                } => {
                    pending.push(Input::SendDone { from });
                    pending.push(Input::Delivered { to, env, tid });
                }
                Output::Ack { tid, .. } => pending.push(Input::Ack { tid }),
                Output::Absorb { survivor, .. } => {
                    pending.push(Input::AbsorbDone { host: survivor })
                }
                Output::Handoff { to, .. } => pending.push(Input::AbsorbDone { host: to }),
                Output::Teardown { reason } => panic!("unexpected teardown: {reason}"),
                _ => {}
            }
        }
    }

    /// Drives a protocol until the pending obligations are exhausted,
    /// depth-first, starting from `pending`.
    fn drive_seq(proto: &mut RingProtocol<Vec<u8>>, mut pending: Vec<Input<Vec<u8>>>) {
        let mut steps = 0usize;
        while let Some(input) = pending.pop() {
            steps += 1;
            assert!(steps < 100_000, "protocol did not quiesce");
            fulfill(proto.input(input), &mut pending);
        }
    }

    /// Drives a protocol to completion from a fresh setup.
    fn drive(proto: &mut RingProtocol<Vec<u8>>) {
        let pending: Vec<Input<Vec<u8>>> = (0..proto.config().hosts)
            .map(|h| Input::SetupDone { host: HostId(h) })
            .collect();
        drive_seq(proto, pending);
    }

    #[test]
    fn classic_ring_completes_a_revolution() {
        let mut proto = ring(3, 2, false);
        drive(&mut proto);
        assert_eq!(proto.fragments_completed(), 6);
        for h in 0..3 {
            assert_eq!(proto.host(HostId(h)).fragments_processed(), 6);
            assert_eq!(proto.host(HostId(h)).pool_used(), 0);
        }
    }

    #[test]
    fn reliable_ring_completes_with_acks() {
        let mut proto = ring(3, 2, true);
        drive(&mut proto);
        assert_eq!(proto.fragments_completed(), 6);
        for h in 0..3 {
            assert_eq!(proto.host(HostId(h)).fragments_processed(), 6);
            assert_eq!(proto.retransmits(HostId(h)), 0);
        }
        assert_eq!(proto.heal_events(), 0);
    }

    #[test]
    fn single_host_ring_retires_locally() {
        let mut proto = ring(1, 3, false);
        drive(&mut proto);
        assert_eq!(proto.fragments_completed(), 3);
        assert_eq!(proto.host(HostId(0)).fragments_processed(), 3);
    }

    #[test]
    fn stale_retransmit_timers_are_ignored() {
        let mut proto = ring(2, 1, true);
        let _ = proto.input(Input::SetupDone { host: HostId(0) });
        // A tick for a transfer that was never sent must be a no-op.
        let out = proto.input(Input::Tick {
            timer: Timer::Retransmit {
                tid: 99,
                attempt: 1,
            },
        });
        assert!(out.is_empty());
    }

    #[test]
    fn planned_drain_hands_off_and_departs_mid_run() {
        let mut proto = ring(3, 2, true);
        // LIFO driver: the drain request is processed first, before any
        // host finishes setup — the drainee hands its partition off and
        // then relays its own local fragments until quiescent.
        let mut init: Vec<Input<Vec<u8>>> = (0..3)
            .map(|h| Input::SetupDone { host: HostId(h) })
            .collect();
        init.push(Input::DrainRequest { host: HostId(1) });
        drive_seq(&mut proto, init);
        assert_eq!(proto.fragments_completed(), 6);
        assert_eq!(proto.membership_epoch(), 1);
        assert_eq!(proto.rescale_drains(), 1);
        assert_eq!(proto.rescale_handoffs(), 1, "host 1's one role moved");
        assert_eq!(proto.rescale_escalations(), 0);
        assert_eq!(proto.heal_events(), 0, "a drain is not a fault");
        assert!(!proto.is_member(HostId(1)));
        for h in 0..3 {
            assert_eq!(proto.host(HostId(h)).pool_used(), 0);
        }
    }

    #[test]
    fn standby_join_enters_the_ring() {
        let cfg = ProtocolConfig {
            hosts: 4,
            buffers_per_host: 2,
            max_retransmits: 4,
            continuous: false,
            reliable: true,
            standby: 0b1000,
        };
        let payloads: Vec<Vec<Vec<u8>>> = (0..4)
            .map(|h| {
                if h == 3 {
                    Vec::new()
                } else {
                    (0..2).map(|i| vec![(h * 10 + i) as u8; 16]).collect()
                }
            })
            .collect();
        let mut proto = RingProtocol::new(cfg, envelope_batches(payloads, 4));
        let mut init: Vec<Input<Vec<u8>>> = (0..4)
            .map(|h| Input::SetupDone { host: HostId(h) })
            .collect();
        init.push(Input::JoinRequest { host: HostId(3) });
        drive_seq(&mut proto, init);
        assert_eq!(proto.fragments_completed(), 6);
        assert_eq!(proto.membership_epoch(), 1);
        assert_eq!(proto.rescale_joins(), 1);
        assert!(proto.is_member(HostId(3)));
        // Rendezvous hashing decides which of the three initial roles
        // move to the newcomer; the counter must match that pure
        // function exactly.
        let grown: Vec<HostId> = (0..4).map(HostId).collect();
        let expected = (0..3)
            .filter(|&r| crate::protocol::rendezvous_owner(r, &grown) == Some(HostId(3)))
            .count() as u64;
        assert_eq!(proto.rescale_handoffs(), expected);
    }

    #[test]
    fn draining_the_last_healthy_member_is_refused() {
        let mut proto = ring(3, 1, true);
        let mut init: Vec<Input<Vec<u8>>> = (0..3)
            .map(|h| Input::SetupDone { host: HostId(h) })
            .collect();
        // LIFO: all three drains are requested back-to-back before any
        // setup completes; the third must be refused outright.
        init.push(Input::DrainRequest { host: HostId(0) });
        init.push(Input::DrainRequest { host: HostId(1) });
        init.push(Input::DrainRequest { host: HostId(2) });
        drive_seq(&mut proto, init);
        assert_eq!(proto.fragments_completed(), 3);
        assert_eq!(proto.rescale_drains(), 2);
        assert_eq!(proto.membership_epoch(), 2);
        assert!(proto.is_member(HostId(0)), "last member must stay");
        assert!(!proto.is_member(HostId(1)));
        assert!(!proto.is_member(HostId(2)));
    }

    #[test]
    fn stalled_drain_escalates_into_crash_healing() {
        let mut proto = ring(3, 1, true);
        let mut pending: Vec<Input<Vec<u8>>> = Vec::new();
        // Pause the drainee so it can never relay its way to quiescence,
        // then exhaust the drain deadline's attempt budget.
        fulfill(proto.input(Input::Paused { host: HostId(1) }), &mut pending);
        fulfill(
            proto.input(Input::DrainRequest { host: HostId(1) }),
            &mut pending,
        );
        assert_eq!(proto.rescale_handoffs(), 1, "roles moved at drain start");
        for attempt in 1..=5 {
            let out = proto.input(Input::Tick {
                timer: Timer::DrainDeadline {
                    host: HostId(1),
                    attempt,
                },
            });
            fulfill(out, &mut pending);
        }
        assert_eq!(proto.rescale_escalations(), 1);
        assert_eq!(proto.heal_events(), 1, "the drain degraded into a heal");
        assert_eq!(
            proto.rescale_drains(),
            0,
            "an escalated drain never completed"
        );
        assert_eq!(proto.membership_epoch(), 0);
        for h in 0..3 {
            pending.push(Input::SetupDone { host: HostId(h) });
        }
        drive_seq(&mut proto, pending);
        assert_eq!(proto.fragments_completed(), 3, "healing finishes the join");
    }

    #[test]
    fn envelope_batches_number_globally() {
        let batches = envelope_batches(vec![vec![vec![1u8]], vec![vec![2u8], vec![3u8]]], 2);
        assert_eq!(batches[0][0].id, FragmentId(0));
        assert_eq!(batches[1][0].id, FragmentId(1));
        assert_eq!(batches[1][1].id, FragmentId(2));
        assert_eq!(batches[1][1].origin, HostId(1));
    }
}
