//! Multi-tenant admission and fairness: the per-query ledger of the
//! multiplexed ring.
//!
//! One ring, many in-flight joins. Each query gets its own slice of every
//! host's buffer pool (a *credit partition*: at most `quota` of the
//! `buffers_per_host` elements may hold that query's envelopes), its own
//! completion accounting, and its own retransmit/checksum counters keyed
//! off the `query` field every envelope now carries. Healing, membership
//! epochs and the fault dice stay ring-global — a crash is a property of
//! the ring, not of any one query.
//!
//! Two schedulers live here, both deficit round-robin with quantum 1
//! (which degenerates to round-robin, with the deficit tracked so the
//! fairness bound is a checkable property, not a hope):
//!
//! * **admission**: at most `max_active` queries circulate at once;
//!   pending queries wait in tenant-fair order and are admitted as
//!   active queries complete;
//! * **transmission**: when a host's wire frees up, the next envelope is
//!   chosen by rotating a per-host cursor over the queries with queued
//!   envelopes, skipping queries whose credit partition at the successor
//!   is exhausted. A query skipped while eligible accrues *deficit*;
//!   being served resets it. With round-robin service the deficit of any
//!   query is bounded by the number of competing queries times the
//!   successor's pool depth — the `max_deficit` watermark lets tests
//!   assert a concrete bound.
//!
//! Like everything under `protocol/`, this file is sans-IO (lint L5):
//! the ring coordinator calls in, the driver never does.

use crate::envelope::{Envelope, PayloadBytes};

/// What [`QueryLedger::admit_next`] hands back: the admitted query id,
/// its tenant, and the pre-numbered per-host envelope batches to inject.
pub type AdmittedQuery<P> = (u32, u32, Vec<Vec<Envelope<P>>>);

/// Lifecycle of one multiplexed query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStatus {
    /// Waiting in the admission queue; its envelopes are not on the ring.
    Pending,
    /// Admitted: its envelopes circulate.
    Active,
    /// Every fragment completed its revolution.
    Done,
}

/// One query's slice of the multiplexed ring.
#[derive(Debug, Clone)]
pub struct QueryEntry<P> {
    /// The tenant that submitted the query (fairness key).
    pub tenant: u32,
    /// Lifecycle state.
    pub status: QueryStatus,
    /// Fragments this query injected (fixed at submission).
    pub total: usize,
    /// Fragments that completed their revolution.
    pub completed: usize,
    /// Pre-numbered per-host envelopes, held until admission (drained
    /// into the ring when the query goes active).
    pub batches: Vec<Vec<Envelope<P>>>,
    /// Retransmissions attributed to this query's envelopes.
    pub retransmits: u64,
    /// Corrupted deliveries of this query's envelopes.
    pub checksum_mismatches: u64,
}

/// The multi-tenant coordinator state: admission queue, credit quotas,
/// per-query wire sequences and counters, and the transmit-side
/// fairness cursors.
#[derive(Debug, Clone)]
pub struct QueryLedger<P> {
    queries: Vec<QueryEntry<P>>,
    /// Buffer-pool elements each query may hold at any single host — the
    /// credit partition width.
    quota: usize,
    /// Maximum concurrently active queries.
    max_active: usize,
    active: usize,
    admitted_total: u64,
    completed_total: u64,
    /// Tenant-fair admission cursor: index into `queries` after which the
    /// next pending query is searched (round-robin over submission order
    /// grouped by tenant arrival).
    admit_cursor: usize,
    /// Per-(host, query) wire sequence. Stamped into the low 32 bits of
    /// `env.seq` with the query id in the high bits, so each query's
    /// sequence space is private: the fault dice (keyed on the full seq)
    /// roll identically across backends *per query*, independent of how
    /// the backends interleave queries.
    wire_seq: Vec<Vec<u64>>,
    /// Per-host transmit cursor over query ids.
    send_cursor: Vec<usize>,
    /// Consecutive times each query was skipped by a transmit decision
    /// while it had queued envelopes (reset when served).
    deficit: Vec<u64>,
    /// High-water mark of `deficit` — the fairness bound tests assert.
    max_deficit: u64,
}

impl<P: PayloadBytes + Clone> QueryLedger<P> {
    /// Builds the ledger for `queries` (tenant, pre-numbered per-host
    /// envelope batches), on a ring of `hosts` hosts with
    /// `buffers_per_host` pool elements each, admitting at most
    /// `max_active` queries concurrently.
    ///
    /// # Panics
    ///
    /// Panics on zero queries or a zero `max_active`.
    pub fn new(
        queries: Vec<(u32, Vec<Vec<Envelope<P>>>)>,
        hosts: usize,
        buffers_per_host: usize,
        max_active: usize,
    ) -> Self {
        assert!(!queries.is_empty(), "a multi-tenant ring needs queries");
        assert!(max_active > 0, "max_active must admit at least one query");
        let n = queries.len();
        let quota = (buffers_per_host / max_active.min(n)).max(1);
        QueryLedger {
            queries: queries
                .into_iter()
                .map(|(tenant, batches)| QueryEntry {
                    tenant,
                    status: QueryStatus::Pending,
                    total: batches.iter().map(Vec::len).sum(),
                    completed: 0,
                    batches,
                    retransmits: 0,
                    checksum_mismatches: 0,
                })
                .collect(),
            quota,
            max_active,
            active: 0,
            admitted_total: 0,
            completed_total: 0,
            admit_cursor: 0,
            wire_seq: vec![vec![0; n]; hosts],
            send_cursor: vec![0; hosts],
            deficit: vec![0; n],
            max_deficit: 0,
        }
    }

    /// Number of queries submitted (all lifecycles).
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when no queries were submitted (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The credit-partition width: pool elements per query per host.
    pub fn quota(&self) -> usize {
        self.quota
    }

    /// One query's entry (read-only).
    pub fn entry(&self, query: u32) -> Option<&QueryEntry<P>> {
        self.queries.get(query as usize)
    }

    /// Queries admitted so far.
    pub fn admitted_total(&self) -> u64 {
        self.admitted_total
    }

    /// Queries fully completed so far.
    pub fn completed_total(&self) -> u64 {
        self.completed_total
    }

    /// Have all queries completed?
    pub fn all_done(&self) -> bool {
        self.completed_total as usize == self.queries.len()
    }

    /// The fairness watermark: the most consecutive transmit decisions
    /// any query with queued envelopes sat out.
    pub fn max_deficit(&self) -> u64 {
        self.max_deficit
    }

    /// The admission cursor (fingerprinted: it decides who enters next).
    pub fn admit_cursor(&self) -> usize {
        self.admit_cursor
    }

    /// The per-host transmit cursors (fingerprinted: they decide which
    /// query each host serves next).
    pub fn send_cursors(&self) -> &[usize] {
        &self.send_cursor
    }

    /// Per-query retransmission counter.
    pub fn retransmits(&self, query: u32) -> u64 {
        self.queries
            .get(query as usize)
            .map_or(0, |q| q.retransmits)
    }

    /// Per-query checksum-mismatch counter.
    pub fn checksum_mismatches(&self, query: u32) -> u64 {
        self.queries
            .get(query as usize)
            .map_or(0, |q| q.checksum_mismatches)
    }

    /// Attributes one retransmission to `query`.
    pub fn count_retransmit(&mut self, query: u32) {
        if let Some(q) = self.queries.get_mut(query as usize) {
            q.retransmits += 1;
        }
    }

    /// Attributes one corrupted delivery to `query`.
    pub fn count_checksum_mismatch(&mut self, query: u32) {
        if let Some(q) = self.queries.get_mut(query as usize) {
            q.checksum_mismatches += 1;
        }
    }

    /// Stamps the next wire sequence for (`host`, `query`): the query id
    /// in the high 32 bits, the per-query counter in the low 32.
    // analyze: allow(panic, reason = "host and query ids index tables sized at construction")
    pub fn next_seq(&mut self, host: usize, query: u32) -> u64 {
        let s = &mut self.wire_seq[host][query as usize];
        *s += 1;
        ((query as u64) << 32) | (*s & 0xffff_ffff)
    }

    /// Records one completed fragment revolution for `query`; returns
    /// `true` when that was the query's last fragment (it is now `Done`).
    pub fn note_completed(&mut self, query: u32) -> bool {
        let Some(q) = self.queries.get_mut(query as usize) else {
            return false;
        };
        q.completed += 1;
        if q.status == QueryStatus::Active && q.completed >= q.total {
            q.status = QueryStatus::Done;
            self.active -= 1;
            self.completed_total += 1;
            return true;
        }
        false
    }

    /// Admits the next pending query in tenant-fair rotation, if an
    /// active slot is free. Returns the admitted query id, its tenant,
    /// and its envelope batches for injection.
    pub fn admit_next(&mut self) -> Option<AdmittedQuery<P>> {
        if self.active >= self.max_active {
            return None;
        }
        let n = self.queries.len();
        for step in 0..n {
            let idx = (self.admit_cursor + step) % n;
            let Some(q) = self.queries.get_mut(idx) else {
                continue;
            };
            if q.status == QueryStatus::Pending {
                q.status = QueryStatus::Active;
                let tenant = q.tenant;
                let batches = std::mem::take(&mut q.batches);
                self.admit_cursor = (idx + 1) % n;
                self.active += 1;
                self.admitted_total += 1;
                return Some((idx as u32, tenant, batches));
            }
        }
        None
    }

    /// The transmit-side candidate order for `host`: query ids rotated by
    /// the host's fairness cursor, restricted to `queued` (queries with
    /// envelopes in the host's outgoing queue).
    // analyze: allow(panic, reason = "host ids index tables sized at construction")
    pub fn send_order(&self, host: usize, queued: &[u32]) -> Vec<u32> {
        let n = self.queries.len();
        let start = self.send_cursor[host] % n.max(1);
        (0..n)
            .map(|step| ((start + step) % n) as u32)
            .filter(|q| queued.contains(q))
            .collect()
    }

    /// Records that `host` transmitted for `query`: advances the host's
    /// cursor past it and resets the query's deficit; every *other*
    /// eligible query in `queued` accrues one deficit tick.
    // analyze: allow(panic, reason = "host and query ids index tables sized at construction")
    pub fn note_served(&mut self, host: usize, query: u32, queued: &[u32]) {
        self.send_cursor[host] = (query as usize + 1) % self.queries.len();
        self.deficit[query as usize] = 0;
        for &other in queued {
            if other != query {
                let d = &mut self.deficit[other as usize];
                *d += 1;
                self.max_deficit = self.max_deficit.max(*d);
            }
        }
    }
}
