//! Canonical, payload-free snapshots of the protocol state — the
//! fingerprint the `ring-verify` explicit-state model checker hashes to
//! recognize states it has already explored.
//!
//! A [`StateSnapshot`] captures everything that determines the protocol's
//! *future behavior*: host queues (as [`EnvSnap`]s — fragment identity and
//! routing state, never payload bytes), credit counters, the
//! ack/retransmit ledger, the role and membership ledgers. It deliberately
//! excludes pure metrics (retransmit/mismatch counters, wire sequence
//! numbers, the tid allocator) whose values never feed back into a
//! protocol decision — including them would make every state unique and
//! exhaustive exploration impossible.
//!
//! Two reductions live here because they are properties of the snapshot,
//! not of the search:
//!
//! * **transfer-id canonicalization** ([`StateSnapshot::map_tids`] /
//!   [`StateSnapshot::retain_tids`]): tids are allocated from a monotone
//!   counter, so two behaviorally identical states reached through
//!   different retransmission histories carry different tids; renumbering
//!   the *live* tids densely (and dropping dedup-set entries for tids
//!   that can never appear on a wire again) merges them;
//! * **host-rotation symmetry** ([`StateSnapshot::rotated`]): on a
//!   symmetric configuration (no standbys, no rescale ops, equal
//!   fragments per host, uniform payloads) relabeling hosts by a ring
//!   rotation is an automorphism; the checker keys states on the
//!   lexicographically minimal rotation.

/// A queued or in-flight envelope, reduced to the fields that drive
/// routing decisions. Payload bytes, wire sequence numbers and the
/// origination checksum are excluded: the first two never influence the
/// protocol, and masters held by the protocol are always intact (the
/// checker models corruption on wire *copies*, outside the snapshot).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EnvSnap {
    /// Fragment identity.
    pub id: usize,
    /// Origin host.
    pub origin: usize,
    /// Hop-counting routing state (classic path).
    pub hops_remaining: usize,
    /// Role-bitmask routing state (reliable path).
    pub visited: u64,
}

/// An envelope held by a host, with its credit flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HeldSnap {
    /// The envelope.
    pub env: EnvSnap,
    /// Does it occupy a buffer-pool element?
    pub pooled: bool,
}

/// One host's queues, credit and flags.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostSnap {
    /// Setup complete?
    pub ready: bool,
    /// Wire busy with a transfer?
    pub sending: bool,
    /// Occupied buffer-pool elements.
    pub pool_used: usize,
    /// Multi-tenant credit partitions: pool elements held per query
    /// (empty on single-query rings).
    pub used_by_query: Vec<usize>,
    /// Incoming pool queue, front to back.
    pub incoming: Vec<HeldSnap>,
    /// The processing slot.
    pub processing: Option<HeldSnap>,
    /// Transmitter queue, front to back.
    pub outgoing: Vec<EnvSnap>,
}

/// One entry of the ack/retransmit ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InFlightSnap {
    /// Ledger key.
    pub tid: u64,
    /// Sender.
    pub from: usize,
    /// Receiver (pool slot holder).
    pub to: usize,
    /// Attempts so far.
    pub attempts: u32,
    /// Did the latest attempt put an intact copy toward a live receiver?
    pub maybe_live: bool,
    /// The pristine master.
    pub env: EnvSnap,
}

/// The membership ledger: view sets as bitmasks plus the epoch counters
/// (bounded by the rescale schedule, and checked by invariant I4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MembershipSnap {
    /// In-ring hosts.
    pub active: u64,
    /// Mid-drain hosts.
    pub draining: u64,
    /// Gracefully departed hosts.
    pub departed: u64,
    /// Completed planned transitions.
    pub epoch: u64,
    /// Completed joins.
    pub joins: u64,
    /// Completed drains.
    pub drains: u64,
    /// Roles moved by planned handoffs.
    pub handoffs: u64,
    /// Drains degraded into crash healing.
    pub escalations: u64,
}

/// The reliable-mode fault ledger.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FaultSnap {
    /// Ground-truth crashed hosts.
    pub crashed: u64,
    /// Hosts the failure detector healed around.
    pub confirmed_dead: u64,
    /// Paused hosts.
    pub paused: u64,
    /// Outstanding partition rebuilds per host.
    pub absorbing: Vec<u32>,
    /// Roles per host, each list sorted (the ledger's order of absorption
    /// does not affect behavior — `role_mask` folds them into a bitmask).
    pub roles: Vec<Vec<usize>>,
    /// Membership ledger.
    pub membership: MembershipSnap,
    /// Ack/retransmit ledger, ascending by tid.
    pub in_flight: Vec<InFlightSnap>,
    /// Accepted-transfer dedup set (sorted; retain only live tids).
    pub accepted: Vec<u64>,
    /// Requeued-transfer tombstone set (sorted; retain only live tids).
    pub requeued: Vec<u64>,
    /// Stop-and-wait: the tid each host awaits an ack for.
    pub awaiting: Vec<Option<u64>>,
    /// Outstanding pool-blocked probe per sender: `(target, attempt)`.
    pub probing: Vec<Option<(usize, u32)>>,
}

/// Multi-tenant admission state (behavior-determining slice only: the
/// deficit watermark and per-query fault counters are pure metrics and
/// stay out of the fingerprint).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QueriesSnap {
    /// Per-query lifecycle: 0 = pending, 1 = active, 2 = done.
    pub status: Vec<u8>,
    /// Per-query completed-fragment counts.
    pub completed: Vec<usize>,
    /// The credit-partition width (constant per run).
    pub quota: usize,
    /// Tenant-fair admission cursor.
    pub admit_cursor: usize,
    /// Per-host transmit fairness cursors.
    pub send_cursor: Vec<usize>,
}

/// The full protocol fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateSnapshot {
    /// Per-host queues and credit.
    pub hosts: Vec<HostSnap>,
    /// Fragments that completed their revolution.
    pub fragments_completed: usize,
    /// Continuous mode: application finished?
    pub stopped: bool,
    /// Multi-tenant admission state (`None` on single-query rings).
    pub queries: Option<QueriesSnap>,
    /// Reliable-mode ledger (`None` on the classic path).
    pub fault: Option<FaultSnap>,
}

/// Rotates a host index by `rot` on a ring of `n` hosts.
pub fn rotate_host(h: usize, rot: usize, n: usize) -> usize {
    (h + rot) % n
}

/// Rotates a per-host bitmask by `rot` on a ring of `n` hosts.
pub fn rotate_mask(m: u64, rot: usize, n: usize) -> u64 {
    if rot == 0 || n == 0 || n >= 64 {
        return m;
    }
    let keep = (1u64 << n) - 1;
    ((m << rot) | (m >> (n - rot))) & keep
}

/// Rotates a fragment id under the global h-major numbering of
/// [`super::envelope_batches`] with `per` fragments at every host.
pub fn rotate_frag(id: usize, rot: usize, n: usize, per: usize) -> usize {
    if per == 0 || n == 0 {
        return id;
    }
    rotate_host(id / per, rot, n) * per + id % per
}

impl EnvSnap {
    fn rotated(&self, rot: usize, n: usize, per: usize) -> EnvSnap {
        EnvSnap {
            id: rotate_frag(self.id, rot, n, per),
            origin: rotate_host(self.origin, rot, n),
            hops_remaining: self.hops_remaining,
            visited: rotate_mask(self.visited, rot, n),
        }
    }
}

impl StateSnapshot {
    /// The fingerprint under the host relabeling `h -> (h + rot) % n`,
    /// for symmetric configurations with `per` fragments at every host.
    /// Role lists are re-sorted and the in-flight ledger re-ordered so
    /// the result is canonical for comparison.
    pub fn rotated(&self, rot: usize, per: usize) -> StateSnapshot {
        let n = self.hosts.len();
        let rot = if n == 0 { 0 } else { rot % n };
        let rot_env = |e: &EnvSnap| e.rotated(rot, n, per);
        let mut hosts: Vec<HostSnap> = self
            .hosts
            .iter()
            .map(|h| HostSnap {
                ready: h.ready,
                sending: h.sending,
                pool_used: h.pool_used,
                used_by_query: h.used_by_query.clone(),
                incoming: h
                    .incoming
                    .iter()
                    .map(|held| HeldSnap {
                        env: rot_env(&held.env),
                        pooled: held.pooled,
                    })
                    .collect(),
                processing: h.processing.as_ref().map(|held| HeldSnap {
                    env: rot_env(&held.env),
                    pooled: held.pooled,
                }),
                outgoing: h.outgoing.iter().map(&rot_env).collect(),
            })
            .collect();
        hosts.rotate_right(rot);
        let fault = self.fault.as_ref().map(|f| {
            let mut absorbing = f.absorbing.clone();
            absorbing.rotate_right(rot);
            let mut roles: Vec<Vec<usize>> = f
                .roles
                .iter()
                .map(|rs| {
                    let mut rs: Vec<usize> = rs.iter().map(|&r| rotate_host(r, rot, n)).collect();
                    rs.sort_unstable();
                    rs
                })
                .collect();
            roles.rotate_right(rot);
            let mut awaiting = f.awaiting.clone();
            awaiting.rotate_right(rot);
            let mut probing: Vec<Option<(usize, u32)>> = f
                .probing
                .iter()
                .map(|p| p.map(|(to, a)| (rotate_host(to, rot, n), a)))
                .collect();
            probing.rotate_right(rot);
            let mut in_flight: Vec<InFlightSnap> = f
                .in_flight
                .iter()
                .map(|e| InFlightSnap {
                    tid: e.tid,
                    from: rotate_host(e.from, rot, n),
                    to: rotate_host(e.to, rot, n),
                    attempts: e.attempts,
                    maybe_live: e.maybe_live,
                    env: rot_env(&e.env),
                })
                .collect();
            in_flight.sort_unstable();
            FaultSnap {
                crashed: rotate_mask(f.crashed, rot, n),
                confirmed_dead: rotate_mask(f.confirmed_dead, rot, n),
                paused: rotate_mask(f.paused, rot, n),
                absorbing,
                roles,
                membership: MembershipSnap {
                    active: rotate_mask(f.membership.active, rot, n),
                    draining: rotate_mask(f.membership.draining, rot, n),
                    departed: rotate_mask(f.membership.departed, rot, n),
                    ..f.membership
                },
                in_flight,
                accepted: f.accepted.clone(),
                requeued: f.requeued.clone(),
                awaiting,
                probing,
            }
        });
        StateSnapshot {
            hosts,
            fragments_completed: self.fragments_completed,
            stopped: self.stopped,
            // Rotation symmetry is only sound on single-query symmetric
            // configurations; multi-tenant admission state (keyed on
            // per-host cursors) passes through unrotated, and the checker
            // disables symmetry for multi-query configs.
            queries: self.queries.clone(),
            fault,
        }
    }

    /// Transfer ids that can still influence behavior: ledger keys plus
    /// awaited acks. (The checker unions in the tids of its own pending
    /// wire events and timers before canonicalizing.)
    pub fn live_tids(&self) -> Vec<u64> {
        let mut tids = Vec::new();
        if let Some(f) = &self.fault {
            tids.extend(f.in_flight.iter().map(|e| e.tid));
            tids.extend(f.awaiting.iter().flatten().copied());
        }
        tids.sort_unstable();
        tids.dedup();
        tids
    }

    /// Drops dedup/tombstone entries for transfers that can never appear
    /// on a wire again — they are unreachable garbage that would otherwise
    /// make every retransmission history a distinct state.
    pub fn retain_tids(&mut self, live: &[u64]) {
        if let Some(f) = &mut self.fault {
            f.accepted.retain(|t| live.binary_search(t).is_ok());
            f.requeued.retain(|t| live.binary_search(t).is_ok());
        }
    }

    /// Renumbers every transfer id through `map` (a sorted
    /// `(old, new)` table); ids absent from the table are kept.
    pub fn map_tids(&mut self, map: &[(u64, u64)]) {
        let lookup = |t: u64| -> u64 {
            map.binary_search_by_key(&t, |&(old, _)| old)
                .ok()
                .and_then(|i| map.get(i))
                .map_or(t, |&(_, new)| new)
        };
        if let Some(f) = &mut self.fault {
            for e in &mut f.in_flight {
                e.tid = lookup(e.tid);
            }
            f.in_flight.sort_unstable();
            for t in &mut f.accepted {
                *t = lookup(*t);
            }
            f.accepted.sort_unstable();
            for t in &mut f.requeued {
                *t = lookup(*t);
            }
            f.requeued.sort_unstable();
            for a in f.awaiting.iter_mut().flatten() {
                *a = lookup(*a);
            }
        }
    }
}
