//! Per-hop reliable-transport policy: sequence stamping, retransmission
//! budget and backoff on the sending side; checksum and duplicate
//! classification on the receiving side.
//!
//! Both backends run the same acked stop-and-wait protocol over each hop.
//! The policy — what counts as a duplicate, when a timeout becomes a
//! retransmission and when it exhausts the budget, how fast the backoff
//! grows — lives here exactly once. The mechanism (channels and wall
//! clocks on the live backend, virtual-time events on the simulator)
//! stays with the drivers.

use crate::envelope::{Envelope, PayloadBytes};

/// Cap on the exponential-backoff exponent: beyond attempt 21 the
/// retransmission timeout stays at `ack_timeout × 2^20` instead of
/// overflowing.
pub const BACKOFF_CAP: u32 = 20;

/// Backoff exponent for a send attempt: attempt 1 waits one base
/// timeout, attempt `a` waits `2^(a−1)` of them, capped at
/// [`BACKOFF_CAP`]. Drivers compute the actual duration as
/// `ack_timeout × 2^exp` in their own clock.
pub fn backoff_exponent(attempt: u32) -> u32 {
    attempt.saturating_sub(1).min(BACKOFF_CAP)
}

/// Verdict when a retransmission timer fires with the transfer still
/// unacknowledged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutVerdict {
    /// Retry: retransmit as attempt `attempt`, re-arming the timer with
    /// `backoff_exp`.
    Retry {
        /// The attempt number of the retransmission about to happen.
        attempt: u32,
        /// Backoff exponent for the re-armed timer.
        backoff_exp: u32,
    },
    /// The budget is spent: on a ring where the peer is known alive this
    /// is fatal; with a failure detector it confirms the peer dead.
    Exhausted,
}

/// Decides what an expired retransmission timer means, given the attempt
/// it was armed for and the configured budget. Shared verbatim by the
/// ring coordinator's failure detector and the live backend's
/// stop-and-wait transmitter.
pub fn on_timeout(attempt: u32, max_retransmits: u32) -> TimeoutVerdict {
    if attempt > max_retransmits {
        TimeoutVerdict::Exhausted
    } else {
        let next = attempt + 1;
        TimeoutVerdict::Retry {
            attempt: next,
            backoff_exp: backoff_exponent(next),
        }
    }
}

/// Sending side of one reliable hop: stamps each outgoing envelope with
/// this link's monotonically increasing wire sequence and applies the
/// shared timeout policy.
#[derive(Debug)]
pub struct LinkSender {
    next_seq: u64,
    max_retransmits: u32,
}

impl LinkSender {
    /// A fresh link with the given retransmission budget.
    pub fn new(max_retransmits: u32) -> Self {
        LinkSender {
            next_seq: 0,
            max_retransmits,
        }
    }

    /// Stamps `env` with the next wire sequence number (attempts of the
    /// same transfer reuse it — the stamp identifies the transfer, not
    /// the attempt) and returns it.
    pub fn stamp<P>(&mut self, env: &mut Envelope<P>) -> u64 {
        self.next_seq += 1;
        env.seq = self.next_seq;
        self.next_seq
    }

    /// The link's timeout policy; see [`on_timeout`].
    pub fn on_timeout(&self, attempt: u32) -> TimeoutVerdict {
        on_timeout(attempt, self.max_retransmits)
    }
}

/// Classification of an envelope arriving on a reliable hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Receipt {
    /// Checksum mismatch: discard silently (the sender's timeout turns
    /// the silence into a retransmission). Never acked.
    Corrupt,
    /// Already-delivered transfer (its ack raced the sender's timeout):
    /// re-ack, do not deliver twice.
    Duplicate,
    /// Intact and new: ack *before* depositing into the buffer pool —
    /// receipt is acknowledged at the NIC even when the pool exerts
    /// backpressure — then deliver.
    Deliver,
}

/// Receiving side of one reliable hop: the NIC in front of the buffer
/// pool, verifying checksums and suppressing duplicates by wire
/// sequence.
#[derive(Debug, Default)]
pub struct LinkReceiver {
    last_seq: u64,
}

impl LinkReceiver {
    /// A fresh receiving side (no transfer seen yet).
    pub fn new() -> Self {
        LinkReceiver::default()
    }

    /// Classifies an arriving envelope; advances the duplicate ledger
    /// only on [`Receipt::Deliver`].
    pub fn receive<P: PayloadBytes>(&mut self, env: &Envelope<P>) -> Receipt {
        if !env.checksum_ok() {
            return Receipt::Corrupt;
        }
        if env.seq <= self.last_seq {
            return Receipt::Duplicate;
        }
        self.last_seq = env.seq;
        Receipt::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::FragmentId;
    use simnet::topology::HostId;

    fn env(bytes: Vec<u8>) -> Envelope<Vec<u8>> {
        Envelope::new(FragmentId(0), HostId(0), 2, bytes)
    }

    #[test]
    fn backoff_doubles_and_caps() {
        assert_eq!(backoff_exponent(1), 0);
        assert_eq!(backoff_exponent(2), 1);
        assert_eq!(backoff_exponent(5), 4);
        assert_eq!(backoff_exponent(100), BACKOFF_CAP);
    }

    #[test]
    fn budget_exhausts_after_max_retransmits() {
        let link = LinkSender::new(3);
        assert!(matches!(
            link.on_timeout(1),
            TimeoutVerdict::Retry { attempt: 2, .. }
        ));
        assert!(matches!(link.on_timeout(3), TimeoutVerdict::Retry { .. }));
        assert_eq!(link.on_timeout(4), TimeoutVerdict::Exhausted);
    }

    #[test]
    fn sequences_are_monotonic_per_link() {
        let mut link = LinkSender::new(1);
        let mut a = env(vec![1]);
        let mut b = env(vec![2]);
        assert_eq!(link.stamp(&mut a), 1);
        assert_eq!(link.stamp(&mut b), 2);
        assert_eq!(a.seq, 1);
        assert_eq!(b.seq, 2);
    }

    #[test]
    fn receiver_classifies_corrupt_duplicate_and_fresh() {
        let mut link = LinkSender::new(1);
        let mut rx = LinkReceiver::new();
        let mut fresh = env(vec![3; 16]);
        link.stamp(&mut fresh);
        let mut corrupt = fresh.clone();
        corrupt.checksum = !corrupt.checksum;
        assert_eq!(rx.receive(&corrupt), Receipt::Corrupt);
        assert_eq!(rx.receive(&fresh), Receipt::Deliver);
        assert_eq!(rx.receive(&fresh), Receipt::Duplicate);
        let mut next = env(vec![4; 16]);
        link.stamp(&mut next);
        assert_eq!(rx.receive(&next), Receipt::Deliver);
    }

    #[test]
    fn corruption_does_not_advance_the_duplicate_ledger() {
        let mut link = LinkSender::new(1);
        let mut rx = LinkReceiver::new();
        let mut first = env(vec![5; 8]);
        link.stamp(&mut first);
        let mut corrupt = first.clone();
        corrupt.checksum = !corrupt.checksum;
        assert_eq!(rx.receive(&corrupt), Receipt::Corrupt);
        // The retransmission of the same transfer must still deliver.
        assert_eq!(rx.receive(&first), Receipt::Deliver);
    }
}
