//! Planned ring membership: epoch-numbered views and the
//! rendezvous-hashed repartitioning behind `Input::{JoinRequest,
//! DrainRequest}`.
//!
//! The [`MembershipLedger`] is the membership counterpart of the fault
//! ledger's role table: it records which hosts are inside the ring
//! (standbys and departed hosts are outside), which are mid-drain, and
//! numbers every *completed* planned transition with a monotonically
//! increasing epoch. Crash healing never advances the epoch — an
//! unplanned death is a fault, not a membership change — which is what
//! makes the epoch and the `rescale_*` counters pure functions of the
//! rescale schedule and therefore byte-identical across the simulated,
//! threaded and TCP drivers.
//!
//! Role placement on a rescale uses rendezvous (highest-random-weight)
//! hashing: [`rendezvous_owner`] is a pure function of `(role,
//! candidate set)`, so every backend computes the same handoffs without
//! any coordination, and activating or draining one host moves only the
//! roles that rendezvous hashing assigns to (or away from) it.

use simnet::topology::HostId;

/// The membership side of the reliable-mode ledger. All methods are pure
/// state transitions; the ring coordinator decides *when* they fire.
#[derive(Debug, Clone)]
pub struct MembershipLedger {
    /// Inside the ring and routed to (standbys start `false`; departed
    /// hosts return to `false`).
    active: Vec<bool>,
    /// Drain requested but not yet departed (still relaying).
    draining: Vec<bool>,
    /// Completed a graceful departure (may not re-join).
    departed: Vec<bool>,
    epoch: u64,
    joins: u64,
    drains: u64,
    handoffs: u64,
    escalations: u64,
}

impl MembershipLedger {
    /// A ledger for `hosts` ring slots of which the bits of `standby`
    /// start outside the ring.
    pub fn new(hosts: usize, standby: u64) -> Self {
        MembershipLedger {
            active: (0..hosts).map(|h| standby & (1u64 << h) == 0).collect(),
            draining: vec![false; hosts],
            departed: vec![false; hosts],
            epoch: 0,
            joins: 0,
            drains: 0,
            handoffs: 0,
            escalations: 0,
        }
    }

    /// Is `host` inside the ring (routed to by its neighbors)? Draining
    /// hosts remain inside until they depart.
    pub fn in_ring(&self, host: HostId) -> bool {
        self.active.get(host.0).copied().unwrap_or(false)
    }

    /// Is `host` a standby that may still be activated?
    pub fn is_standby(&self, host: HostId) -> bool {
        !self.in_ring(host) && !self.departed.get(host.0).copied().unwrap_or(true)
    }

    /// Is `host` mid-drain?
    pub fn is_draining(&self, host: HostId) -> bool {
        self.draining.get(host.0).copied().unwrap_or(false)
    }

    /// Activates a standby: it enters the ring and the epoch advances.
    /// Returns the new epoch.
    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction")
    pub fn activate(&mut self, host: HostId) -> u64 {
        self.active[host.0] = true;
        self.joins += 1;
        self.epoch += 1;
        self.epoch
    }

    /// Marks `host` as draining (it stays in the ring as a relay).
    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction")
    pub fn begin_drain(&mut self, host: HostId) {
        self.draining[host.0] = true;
    }

    /// Completes a drain: the host leaves the ring and the epoch
    /// advances. Returns the new epoch.
    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction")
    pub fn depart(&mut self, host: HostId) -> u64 {
        self.active[host.0] = false;
        self.draining[host.0] = false;
        self.departed[host.0] = true;
        self.drains += 1;
        self.epoch += 1;
        self.epoch
    }

    /// Cancels a drain without an epoch bump — the drainee crashed (or
    /// its deadline escalated) and the crash-healing path owns it now.
    // analyze: allow(panic, reason = "host ids index per-ring tables sized at construction")
    pub fn abort_drain(&mut self, host: HostId) {
        self.draining[host.0] = false;
    }

    /// Counts one drain→heal escalation.
    pub fn count_escalation(&mut self) {
        self.escalations += 1;
    }

    /// Counts `n` role handoffs.
    pub fn count_handoffs(&mut self, n: u64) {
        self.handoffs += n;
    }

    /// The current membership epoch (completed planned transitions).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Completed planned host joins.
    pub fn joins(&self) -> u64 {
        self.joins
    }

    /// Completed graceful drains.
    pub fn drains(&self) -> u64 {
        self.drains
    }

    /// Stationary partitions moved by planned handoffs.
    pub fn handoffs(&self) -> u64 {
        self.handoffs
    }

    /// Drains that stalled past their deadline and degraded into crash
    /// healing.
    pub fn escalations(&self) -> u64 {
        self.escalations
    }

    /// The in-ring set as a bitmask (bit `h` = host `h` active).
    pub fn active_mask(&self) -> u64 {
        mask_of(&self.active)
    }

    /// The mid-drain set as a bitmask.
    pub fn draining_mask(&self) -> u64 {
        mask_of(&self.draining)
    }

    /// The gracefully-departed set as a bitmask.
    pub fn departed_mask(&self) -> u64 {
        mask_of(&self.departed)
    }
}

/// Packs a per-host boolean table into a bitmask (bit `h` = entry `h`).
fn mask_of(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |m, (h, &b)| if b { m | (1u64 << h) } else { m })
}

/// Rendezvous (highest-random-weight) owner of `role` among
/// `candidates`: the candidate maximizing a seeded hash of `(role,
/// host)`. Pure, so every backend places roles identically without
/// coordination; `None` only when `candidates` is empty.
pub fn rendezvous_owner(role: usize, candidates: &[HostId]) -> Option<HostId> {
    candidates
        .iter()
        .copied()
        .max_by_key(|h| (rendezvous_weight(role, *h), usize::MAX - h.0))
}

/// The splitmix64 finalizer over the packed `(role, host)` pair — the
/// same mixing the fault plans use for their dice, reused here so the
/// placement is seedless but well spread.
fn rendezvous_weight(role: usize, host: HostId) -> u64 {
    let mut x = (role as u64)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((host.0 as u64) << 32)
        .wrapping_add(host.0 as u64);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_advances_only_on_completed_transitions() {
        let mut m = MembershipLedger::new(4, 0b1000);
        assert!(m.is_standby(HostId(3)));
        assert!(!m.in_ring(HostId(3)));
        assert_eq!(m.epoch(), 0);
        assert_eq!(m.activate(HostId(3)), 1);
        assert!(m.in_ring(HostId(3)));
        m.begin_drain(HostId(1));
        assert!(m.is_draining(HostId(1)));
        assert_eq!(m.epoch(), 1, "a begun drain has not completed");
        assert_eq!(m.depart(HostId(1)), 2);
        assert!(!m.in_ring(HostId(1)));
        assert!(!m.is_standby(HostId(1)), "departed hosts may not re-join");
        assert_eq!(m.joins(), 1);
        assert_eq!(m.drains(), 1);
    }

    #[test]
    fn aborted_drains_leave_the_epoch_alone() {
        let mut m = MembershipLedger::new(3, 0);
        m.begin_drain(HostId(2));
        m.abort_drain(HostId(2));
        m.count_escalation();
        assert!(!m.is_draining(HostId(2)));
        assert_eq!(m.epoch(), 0);
        assert_eq!(m.drains(), 0);
        assert_eq!(m.escalations(), 1);
    }

    #[test]
    fn rendezvous_owner_is_stable_and_minimal() {
        let all: Vec<HostId> = (0..5).map(HostId).collect();
        let owners: Vec<HostId> = (0..16)
            .map(|r| rendezvous_owner(r, &all).expect("non-empty"))
            .collect();
        // Removing one candidate only moves the roles it owned.
        let without3: Vec<HostId> = all.iter().copied().filter(|h| h.0 != 3).collect();
        for (r, owner) in owners.iter().enumerate() {
            let re = rendezvous_owner(r, &without3).expect("non-empty");
            if owner.0 != 3 {
                assert_eq!(re, *owner, "role {r} moved although its owner stayed");
            } else {
                assert_ne!(re.0, 3);
            }
        }
        assert_eq!(rendezvous_owner(0, &[]), None);
    }

    #[test]
    fn rendezvous_spreads_roles() {
        let all: Vec<HostId> = (0..8).map(HostId).collect();
        let mut seen = std::collections::HashSet::new();
        for r in 0..64 {
            seen.insert(rendezvous_owner(r, &all).expect("non-empty"));
        }
        assert!(seen.len() >= 6, "64 roles should reach most of 8 hosts");
    }
}
