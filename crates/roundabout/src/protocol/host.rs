//! Per-host protocol state: the receiver/join/transmitter entities of one
//! host, expressed as queues and credit — no IO.
//!
//! A [`HostProtocol`] is what both backends consult for every per-host
//! decision: whether an arriving envelope may occupy a buffer element
//! (credit), which envelope joins next, and whether a processed envelope
//! forwards to the successor or retires ([`Route`]). The simulated
//! backend drives a whole vector of these through
//! [`super::RingProtocol`]; the threaded backend embeds one inside each
//! join-entity thread and lets its channels play the wires.

use std::collections::VecDeque;

use simnet::topology::HostId;

use crate::envelope::{Envelope, FragmentId, PayloadBytes};

/// An envelope held by a host, remembering whether it occupies one of the
/// host's buffer-pool elements (`pooled`) or is a local fragment that
/// never consumed ring credit.
#[derive(Debug, Clone)]
pub struct Held<P> {
    /// The envelope itself.
    pub env: Envelope<P>,
    /// True when the envelope sits in a reserved buffer-pool slot that
    /// must be released (crediting the predecessor) once processing
    /// finishes.
    pub pooled: bool,
}

/// What [`HostProtocol::begin_join`] committed to: the join the driver
/// must now run and time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinTicket {
    /// Fragment entering the join.
    pub id: FragmentId,
    /// Hop index: how many hosts processed this envelope before (0 = the
    /// origin visit).
    pub hop: usize,
    /// True when the envelope came off the ring (it records a receive in
    /// traces and frees pool credit when done), false for a local
    /// fragment.
    pub received: bool,
}

/// Routing verdict for a processed envelope on the hop-counting path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// The revolution is incomplete: forward to the ring successor.
    Forward,
    /// Every host has processed the envelope: it retires here.
    Retire,
}

/// One host's protocol state machine.
///
/// Owns the three entity queues (incoming pool, the single processing
/// slot, outgoing) and the credit accounting for the host's buffer pool.
/// All methods are pure state transitions; blocking, timing and cost are
/// the driver's business.
#[derive(Debug, Clone)]
pub struct HostProtocol<P> {
    host: HostId,
    ring_size: usize,
    buffers: usize,
    incoming: VecDeque<Held<P>>,
    processing: Option<Held<P>>,
    outgoing: VecDeque<Envelope<P>>,
    pool_used: usize,
    /// Multi-tenant credit partitions: pool elements held per query.
    /// Empty on single-query rings (tracking off); when enabled, the
    /// per-query entries always sum to `pool_used` — the credit-partition
    /// invariant the model checker verifies.
    used_by_query: Vec<usize>,
    ready: bool,
    sending: bool,
    fragments_processed: usize,
}

impl<P: PayloadBytes> HostProtocol<P> {
    /// A fresh host on a ring of `ring_size` hosts with `buffers` pool
    /// elements.
    pub fn new(host: HostId, ring_size: usize, buffers: usize) -> Self {
        HostProtocol {
            host,
            ring_size,
            buffers,
            incoming: VecDeque::new(),
            processing: None,
            outgoing: VecDeque::new(),
            pool_used: 0,
            used_by_query: Vec::new(),
            ready: false,
            sending: false,
            fragments_processed: 0,
        }
    }

    /// This host's ring position.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Marks application setup complete; joins may start.
    pub fn set_ready(&mut self) {
        self.ready = true;
    }

    /// Has setup completed?
    pub fn is_ready(&self) -> bool {
        self.ready
    }

    /// Queues a local fragment (back of the incoming queue, no pool
    /// credit — locals never occupied a ring buffer element).
    pub fn inject_local(&mut self, env: Envelope<P>) {
        self.incoming.push_back(Held { env, pooled: false });
    }

    /// Accepts an envelope off the ring into the buffer pool (FIFO).
    ///
    /// `reserved` says whether the sender already reserved the pool slot
    /// (the simulated driver reserves at send time via
    /// [`HostProtocol::reserve_slot`]); when false the slot is taken now.
    pub fn deliver(&mut self, env: Envelope<P>, reserved: bool) {
        if !reserved {
            self.pool_used = (self.pool_used + 1).min(self.buffers);
            if let Some(u) = self.used_by_query.get_mut(env.query as usize) {
                *u += 1;
            }
        }
        self.incoming.push_back(Held { env, pooled: true });
    }

    /// Sender-side credit check-and-take: reserves one pool element if
    /// any is free. The matching release happens when the envelope's
    /// join completes ([`HostProtocol::finish_join`]).
    pub fn reserve_slot(&mut self) -> bool {
        if self.pool_used >= self.buffers {
            return false;
        }
        self.pool_used += 1;
        true
    }

    /// Switches on multi-tenant credit partitioning for `queries`
    /// concurrent queries (all counters start at zero).
    pub fn enable_query_tracking(&mut self, queries: usize) {
        self.used_by_query = vec![0; queries];
    }

    /// Multi-tenant credit check-and-take: reserves one pool element for
    /// `query` if the pool has a free element *and* the query's credit
    /// partition (`quota` elements wide) is not exhausted here.
    pub fn reserve_slot_for(&mut self, query: u32, quota: usize) -> bool {
        if !self.can_accept(query, quota) {
            return false;
        }
        self.pool_used += 1;
        if let Some(u) = self.used_by_query.get_mut(query as usize) {
            *u += 1;
        }
        true
    }

    /// Could a `reserve_slot_for(query, quota)` succeed right now?
    pub fn can_accept(&self, query: u32, quota: usize) -> bool {
        self.pool_used < self.buffers
            && self
                .used_by_query
                .get(query as usize)
                .is_none_or(|&u| u < quota)
    }

    /// Multi-tenant release: returns one pool element held by `query`
    /// without a join having run (pass-through, or settling a transfer
    /// whose copy died with a corpse).
    pub fn release_slot_for(&mut self, query: u32) {
        self.pool_used = self.pool_used.saturating_sub(1);
        if let Some(u) = self.used_by_query.get_mut(query as usize) {
            *u = u.saturating_sub(1);
        }
    }

    /// Per-query pool occupancy (empty unless query tracking is on).
    pub fn used_by_query(&self) -> &[usize] {
        &self.used_by_query
    }

    /// Is at least one buffer element free?
    pub fn has_free_slot(&self) -> bool {
        self.pool_used < self.buffers
    }

    /// Currently occupied pool elements.
    pub fn pool_used(&self) -> usize {
        self.pool_used
    }

    /// Pool capacity.
    pub fn buffers(&self) -> usize {
        self.buffers
    }

    /// Does the host hold any unprocessed envelope (queued or mid-join)?
    pub fn has_work(&self) -> bool {
        !self.incoming.is_empty() || self.processing.is_some()
    }

    /// Anything queued for a join (excluding the processing slot)?
    pub fn has_incoming(&self) -> bool {
        !self.incoming.is_empty()
    }

    /// Takes the head of the incoming queue *without* committing it to
    /// the processing slot — the fault-tolerant coordinator inspects the
    /// envelope's `visited` mask first and may forward it unjoined.
    pub fn pop_incoming(&mut self) -> Option<Held<P>> {
        self.incoming.pop_front()
    }

    /// Returns one pool element without a join having run (pass-through
    /// of an already-fully-joined envelope on a healed route).
    pub fn release_slot(&mut self) {
        self.pool_used = self.pool_used.saturating_sub(1);
    }

    /// Places an envelope taken via [`HostProtocol::pop_incoming`] into
    /// the processing slot (the caller already checked the gates).
    pub fn set_processing(&mut self, held: Held<P>) {
        debug_assert!(self.processing.is_none(), "one join at a time");
        self.processing = Some(held);
    }

    /// Is an envelope currently in the processing slot?
    pub fn is_processing(&self) -> bool {
        self.processing.is_some()
    }

    /// Commits the head of the incoming queue to the processing slot.
    ///
    /// Returns `None` when setup is incomplete, a join is already
    /// running, or nothing is queued. The hop index is derived from the
    /// envelope's remaining-hop count, exactly as both backends did.
    pub fn begin_join(&mut self) -> Option<JoinTicket> {
        if !self.ready || self.processing.is_some() {
            return None;
        }
        let held = self.incoming.pop_front()?;
        let ticket = JoinTicket {
            id: held.env.id,
            hop: self.ring_size.saturating_sub(held.env.hops_remaining),
            received: held.pooled,
        };
        self.processing = Some(held);
        Some(ticket)
    }

    /// The payload currently being joined (for the driver to hand to the
    /// application callback).
    pub fn processing_payload(&self) -> Option<&P> {
        self.processing.as_ref().map(|h| &h.env.payload)
    }

    /// The envelope currently being joined.
    pub fn processing_env(&self) -> Option<&Envelope<P>> {
        self.processing.as_ref().map(|h| &h.env)
    }

    /// Completes the running join: counts the fragment, releases the
    /// pool element if the envelope was pooled, and hands the envelope
    /// back for routing. Returns the envelope and whether a pool slot
    /// was freed (the ring coordinator kicks the predecessor's sender on
    /// a freed slot).
    pub fn finish_join(&mut self) -> Option<(Envelope<P>, bool)> {
        let held = self.processing.take()?;
        self.fragments_processed += 1;
        if held.pooled {
            // Saturating: a driver that delivers without reservation and
            // releases twice must not wrap the credit counter.
            self.pool_used = self.pool_used.saturating_sub(1);
            if let Some(u) = self.used_by_query.get_mut(held.env.query as usize) {
                *u = u.saturating_sub(1);
            }
        }
        Some((held.env, held.pooled))
    }

    /// Hop-count routing: one more host has processed the envelope; does
    /// it continue around the ring or retire here?
    pub fn route(&self, env: &mut Envelope<P>) -> Route {
        if env.consume_hop() {
            Route::Forward
        } else {
            Route::Retire
        }
    }

    /// Queues a processed envelope for the transmitter.
    pub fn queue_outgoing(&mut self, env: Envelope<P>) {
        self.outgoing.push_back(env);
    }

    /// Re-queues an envelope at the transmitter's front (healing rewinds
    /// an un-acked transfer so it retries toward the new successor).
    pub fn requeue_outgoing_front(&mut self, env: Envelope<P>) {
        self.outgoing.push_front(env);
    }

    /// Next envelope to transmit, if the wire is free to take one.
    pub fn pop_outgoing(&mut self) -> Option<Envelope<P>> {
        self.outgoing.pop_front()
    }

    /// The distinct queries with envelopes in the transmitter queue, in
    /// first-queued order (the fairness scheduler's candidate set).
    pub fn outgoing_query_set(&self) -> Vec<u32> {
        let mut qs = Vec::new();
        for env in &self.outgoing {
            if !qs.contains(&env.query) {
                qs.push(env.query);
            }
        }
        qs
    }

    /// Removes and returns the first queued envelope belonging to
    /// `query` (the fairness scheduler picked it over the queue head).
    pub fn pop_outgoing_query(&mut self, query: u32) -> Option<Envelope<P>> {
        let idx = self.outgoing.iter().position(|e| e.query == query)?;
        self.outgoing.remove(idx)
    }

    /// Anything queued for the transmitter?
    pub fn has_outgoing(&self) -> bool {
        !self.outgoing.is_empty()
    }

    /// Is the host's wire currently carrying a transfer?
    pub fn is_sending(&self) -> bool {
        self.sending
    }

    /// Marks the wire busy (a transfer was put on it) or free again.
    pub fn set_sending(&mut self, sending: bool) {
        self.sending = sending;
    }

    /// Fragments this host has processed so far.
    pub fn fragments_processed(&self) -> usize {
        self.fragments_processed
    }

    /// Read-only walk of the incoming pool queue, front to back (the
    /// model checker's fingerprint and invariant passes).
    pub fn incoming_held(&self) -> impl Iterator<Item = &Held<P>> {
        self.incoming.iter()
    }

    /// The envelope in the processing slot, with its pooled flag.
    pub fn processing_held(&self) -> Option<&Held<P>> {
        self.processing.as_ref()
    }

    /// Read-only walk of the transmitter queue, front to back.
    pub fn outgoing_queue(&self) -> impl Iterator<Item = &Envelope<P>> {
        self.outgoing.iter()
    }

    /// Drains every queued envelope (incoming, processing, outgoing) for
    /// salvage when this host is confirmed dead, resetting its credit
    /// and wire state. Order matters for determinism: incoming first,
    /// then the interrupted join, then outgoing.
    pub fn salvage(&mut self) -> Vec<Envelope<P>> {
        let mut lost: Vec<Envelope<P>> = self.incoming.drain(..).map(|h| h.env).collect();
        if let Some(held) = self.processing.take() {
            lost.push(held.env);
        }
        lost.extend(self.outgoing.drain(..));
        self.pool_used = 0;
        self.used_by_query.iter_mut().for_each(|u| *u = 0);
        self.sending = false;
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(id: usize, ring: usize) -> Envelope<Vec<u8>> {
        Envelope::new(FragmentId(id), HostId(0), ring, vec![0u8; 8])
    }

    #[test]
    fn credit_is_reserved_and_released() {
        let mut h = HostProtocol::new(HostId(0), 3, 2);
        h.set_ready();
        assert!(h.reserve_slot());
        assert!(h.reserve_slot());
        assert!(!h.reserve_slot(), "pool of 2 must reject a third slot");
        h.deliver(env(0, 3), true);
        let ticket = h.begin_join().unwrap();
        assert!(ticket.received);
        let (_, released) = h.finish_join().unwrap();
        assert!(released, "pooled envelope must free its slot");
        assert_eq!(h.pool_used(), 1);
    }

    #[test]
    fn locals_do_not_consume_credit() {
        let mut h = HostProtocol::new(HostId(1), 3, 1);
        h.set_ready();
        h.inject_local(env(0, 3));
        assert_eq!(h.pool_used(), 0);
        let ticket = h.begin_join().unwrap();
        assert!(!ticket.received);
        assert_eq!(ticket.hop, 0, "a local fragment is at its origin visit");
        let (_, released) = h.finish_join().unwrap();
        assert!(!released);
    }

    #[test]
    fn joins_are_serialized() {
        let mut h = HostProtocol::new(HostId(0), 2, 1);
        h.set_ready();
        h.inject_local(env(0, 2));
        h.inject_local(env(1, 2));
        assert!(h.begin_join().is_some());
        assert!(h.begin_join().is_none(), "one join at a time");
        h.finish_join().unwrap();
        assert!(h.begin_join().is_some());
    }

    #[test]
    fn not_ready_blocks_joins() {
        let mut h = HostProtocol::new(HostId(0), 2, 1);
        h.inject_local(env(0, 2));
        assert!(h.begin_join().is_none(), "setup gates the first join");
        h.set_ready();
        assert!(h.begin_join().is_some());
    }

    #[test]
    fn route_follows_the_hop_count() {
        let h: HostProtocol<Vec<u8>> = HostProtocol::new(HostId(0), 2, 1);
        let mut e = env(0, 2);
        assert_eq!(h.route(&mut e), Route::Forward);
        assert_eq!(h.route(&mut e), Route::Retire);
    }

    #[test]
    fn salvage_drains_every_queue() {
        let mut h = HostProtocol::new(HostId(0), 3, 2);
        h.set_ready();
        h.deliver(env(0, 3), false);
        h.deliver(env(1, 3), false);
        h.begin_join().unwrap();
        h.queue_outgoing(env(2, 3));
        let lost = h.salvage();
        assert_eq!(lost.len(), 3);
        assert_eq!(h.pool_used(), 0);
        assert!(!h.has_work());
    }
}
