//! The sans-IO ring-protocol core shared by every Data Roundabout backend.
//!
//! The paper's protocol — receiver/join/transmitter entities, credit-based
//! flow control over bounded buffer pools, acked stop-and-wait hops, and
//! mid-revolution ring healing — is *one* state machine. This module is
//! that state machine, expressed without any IO: no channels, no threads,
//! no sockets, no clocks. A backend ("driver") feeds typed [`Input`]s and
//! maps the returned [`Output`]s onto whatever transport and timer
//! mechanism it owns:
//!
//! * the simulated driver ([`crate::sim_backend::SimRing`]) maps outputs
//!   onto `simnet` events and cost-model charges in virtual time;
//! * the threaded driver ([`crate::thread_backend::RingDriver`]) maps them
//!   onto `sync::mpmc` channels and real OS threads;
//! * the TCP driver ([`crate::tcp_backend::TcpRingDriver`]) maps them
//!   onto length-prefixed frames over real loopback sockets.
//!
//! Time never appears here directly. Where the protocol needs a timer it
//! emits [`Output::ArmTimer`] carrying a backoff *exponent*; the driver
//! multiplies its own `ack_timeout` by `2^exp` in whatever clock it has.
//! Randomness never appears either: fault dice are rolled by the driver
//! (they belong to the medium, not the protocol), and the attempt's fate
//! is reported back via [`RingProtocol::attempt_fate`].
//!
//! Layering:
//!
//! * [`HostProtocol`] — one host's entities: incoming/processing/outgoing
//!   queues, buffer-pool credit, the hop ledger that decides forward vs
//!   retire;
//! * [`LinkSender`] / [`LinkReceiver`] — one hop's reliable-transport
//!   policy: sequence stamping, retransmission budget, checksum and
//!   duplicate classification;
//! * [`RingProtocol`] — the ring-level coordinator: routes envelopes
//!   between hosts, owns the ack/retransmit ledger, the exactly-once
//!   role-takeover ledger, and the healing transitions.
//!
//! This file layout is enforced by the repo's own `xtask` lint **L5**:
//! nothing under `protocol/` may import `std::net`, `std::thread`,
//! `crate::sync`, or `simnet::time`, or spawn anything.

use simnet::topology::HostId;

use crate::envelope::{Envelope, FragmentId, PayloadBytes};

pub mod admission;
mod host;
mod link;
mod membership;
mod ring;
pub mod snapshot;

pub use admission::{QueryEntry, QueryLedger, QueryStatus};
pub use host::{Held, HostProtocol, JoinTicket, Route};
pub use link::{backoff_exponent, LinkReceiver, LinkSender, Receipt, TimeoutVerdict, BACKOFF_CAP};
pub use membership::{rendezvous_owner, MembershipLedger};
pub use ring::RingProtocol;
pub use snapshot::StateSnapshot;

/// The protocol-visible slice of the ring configuration: everything the
/// state machine needs to make decisions, and nothing a driver owns
/// (durations, rates and cost models stay outside).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolConfig {
    /// Number of hosts on the ring.
    pub hosts: usize,
    /// Buffer-pool elements per host — the credit budget of each hop.
    pub buffers_per_host: usize,
    /// Retransmission budget per transfer before the peer is declared
    /// dead (reliable mode only).
    pub max_retransmits: u32,
    /// Continuous rotation: envelopes re-enter the ring after a full
    /// revolution until the application reports itself finished.
    pub continuous: bool,
    /// Acked stop-and-wait transport on every hop (fault-plan runs).
    pub reliable: bool,
    /// Bitmask of hosts provisioned as *standbys*: present in every
    /// per-host table but outside the ring (no stationary partition, no
    /// local fragments, not routed to) until an [`Input::JoinRequest`]
    /// activates them. Requires `reliable` when non-zero.
    pub standby: u64,
}

/// An observation a driver feeds into the protocol core.
///
/// Every input is an *event that already happened* in the driver's world:
/// a wire delivery, a completed join, an expired timer. The protocol
/// never asks the driver for anything; it reacts to inputs with
/// [`Output`]s.
#[derive(Debug)]
pub enum Input<P> {
    /// Host finished its application setup and may start joining.
    SetupDone {
        /// The host that became ready.
        host: HostId,
    },
    /// An envelope arrived intact-or-not at a host (the driver does not
    /// pre-filter: corruption and duplicates are classified here).
    Delivered {
        /// Receiving host.
        to: HostId,
        /// The envelope as it came off the wire.
        env: Envelope<P>,
        /// The transfer id from the matching [`Output::Send`] (0 on the
        /// classic, non-reliable path).
        tid: u64,
    },
    /// The join computation started by [`Output::StartJoin`] completed.
    JoinDone {
        /// Host whose join finished.
        host: HostId,
        /// Continuous mode: did the application just report itself
        /// finished? (The driver samples `RingApp::finished`; the
        /// protocol cannot call the app.)
        app_finished: bool,
    },
    /// The wire (or NIC send queue) that carried the last
    /// [`Output::Send`] from this host is free again.
    SendDone {
        /// Sending host whose wire freed up.
        from: HostId,
    },
    /// An acknowledgement for transfer `tid` reached its sender.
    Ack {
        /// Acknowledged transfer.
        tid: u64,
    },
    /// A timer armed by [`Output::ArmTimer`] fired.
    Tick {
        /// Which timer.
        timer: Timer,
    },
    /// The driver observed a host die (fault-plan crash). Ground truth
    /// only: routing keeps using the host until the failure detector
    /// confirms the death through an exhausted retransmission budget.
    PeerDead {
        /// The crashed host.
        host: HostId,
    },
    /// A host was paused by the fault plan (stops joining and sending;
    /// its pool still accepts deliveries).
    Paused {
        /// The paused host.
        host: HostId,
    },
    /// A paused host resumed.
    Resumed {
        /// The resumed host.
        host: HostId,
    },
    /// The role-absorption work scheduled by [`Output::Absorb`] or
    /// [`Output::Handoff`] finished.
    AbsorbDone {
        /// The survivor that finished absorbing.
        host: HostId,
    },
    /// Planned rescale: a provisioned standby host asks to enter the
    /// ring. The membership ledger activates it, re-splices the hop links
    /// around it and hands it the stationary partitions rendezvous
    /// hashing assigns it (see [`Output::Activate`] /
    /// [`Output::Handoff`]). Invalid requests (not a standby, crashed)
    /// are ignored.
    JoinRequest {
        /// The standby host entering the ring.
        host: HostId,
    },
    /// Planned rescale: an active host asks to leave the ring. Its
    /// stationary partitions hand off immediately; the host keeps
    /// relaying until it is quiescent, then departs
    /// ([`Output::Departed`]). A drain that stalls past its deadline
    /// degrades into the crash-healing path. Invalid requests (standby,
    /// already draining, sole ring member, crashed) are ignored.
    DrainRequest {
        /// The host leaving the ring.
        host: HostId,
    },
}

/// A timer the protocol asked a driver to arm via [`Output::ArmTimer`].
///
/// The protocol has no clock; it only names the timer and the driver
/// echoes it back in [`Input::Tick`] when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Timer {
    /// Retransmission timeout for an in-flight transfer.
    Retransmit {
        /// Transfer the timeout guards.
        tid: u64,
        /// The attempt number the timeout was armed for (stale ticks —
        /// where the ledger has moved past this attempt — are ignored).
        attempt: u32,
    },
    /// Flow-control probe: the sender found its successor's pool full
    /// and polls until a slot frees (or the successor is declared dead).
    Probe {
        /// The blocked sender.
        from: HostId,
        /// The successor being probed.
        to: HostId,
        /// Probe attempt number (drives the backoff once the target is
        /// suspected dead).
        attempt: u32,
    },
    /// Deadline for a draining host to reach quiescence. Re-armed with
    /// backoff while the drain makes progress; once the attempt budget
    /// (the retransmission budget) is exhausted the drain *escalates*
    /// into the crash-healing path so a sick drainee can never wedge the
    /// ring.
    DrainDeadline {
        /// The draining host.
        host: HostId,
        /// Deadline attempt number (drives the backoff and the
        /// escalation decision).
        attempt: u32,
    },
}

/// An action the protocol instructs its driver to perform.
///
/// Outputs are emitted in the exact order the driver must apply them;
/// drivers map each onto their own transport/timer/cost mechanism and
/// report the resulting observations back as [`Input`]s.
#[derive(Debug, Clone)]
pub enum Output<P> {
    /// Begin the join computation for the envelope now at the head of
    /// `host`'s processing slot. The driver runs the application (via
    /// [`RingProtocol::processing_payload`]), charges its cost model,
    /// and feeds [`Input::JoinDone`] when the work completes.
    StartJoin {
        /// Host that starts joining.
        host: HostId,
        /// Fragment being joined.
        id: FragmentId,
        /// How many hosts have already visited this envelope (0 = its
        /// origin visit).
        hop: usize,
        /// Healing mode: the specific logical roles this host applies
        /// (its own plus any absorbed from dead hosts, minus those
        /// already applied). `None` on the classic hop-counting path.
        roles: Option<Vec<usize>>,
        /// Payload size, for the driver's cost model.
        bytes: u64,
    },
    /// Healing mode: every role this host covers was already applied to
    /// the envelope (it was processed here before a takeover) — the
    /// envelope skips the join and is routed onward without cost.
    PassThrough {
        /// Host the envelope passed through.
        host: HostId,
        /// The envelope's fragment.
        id: FragmentId,
    },
    /// A join completed and the envelope is being routed onward (emitted
    /// before the [`Output::Send`] / [`Output::Retire`] it leads to).
    Processed {
        /// Host that finished the join.
        host: HostId,
        /// The processed fragment.
        id: FragmentId,
    },
    /// Put an envelope on the wire from `from` to `to`. In reliable mode
    /// the driver rolls its fault dice for this attempt, reports the fate
    /// via [`RingProtocol::attempt_fate`], and arms the retransmission
    /// timer the following [`Output::ArmTimer`] requests.
    Send {
        /// Sending host.
        from: HostId,
        /// Receiving host (the ring successor, post-healing).
        to: HostId,
        /// Transfer id: key into the ack/retransmit ledger. Unlike the
        /// per-sender wire sequence stamped in `env.seq`, the tid is
        /// unique per transfer across the whole ring.
        tid: u64,
        /// Attempt number (1 = first transmission, >1 = retransmission).
        attempt: u32,
        /// The envelope to put on the wire. Reliable mode: a pristine
        /// copy (the master stays in the ledger for retransmission) —
        /// the driver may corrupt this copy's checksum per its dice.
        env: Envelope<P>,
    },
    /// Deliver an acknowledgement for `tid` back to the transfer's
    /// sender `to` (reliable mode; ack-before-deposit).
    Ack {
        /// The original sender awaiting the ack.
        to: HostId,
        /// The acknowledged transfer.
        tid: u64,
    },
    /// Arm (or re-arm) a timer: fire [`Input::Tick`] after the driver's
    /// base ack timeout scaled by `2^backoff_exp`.
    ArmTimer {
        /// Timer identity to echo back on expiry.
        timer: Timer,
        /// Exponential-backoff exponent (capped at [`BACKOFF_CAP`]).
        backoff_exp: u32,
    },
    /// An envelope was accepted into `host`'s buffer pool (intact,
    /// not a duplicate). The driver charges its receive cost here.
    Delivered {
        /// Receiving host.
        host: HostId,
        /// Delivered fragment.
        id: FragmentId,
        /// Payload size, for the driver's cost model.
        bytes: u64,
    },
    /// A duplicate of an already-accepted transfer arrived and was
    /// dropped (its ack raced the sender's timeout); the ack was re-sent.
    DuplicateDropped {
        /// Receiving host.
        host: HostId,
        /// The duplicated fragment.
        id: FragmentId,
    },
    /// An envelope failed checksum verification on receive and was
    /// discarded silently — the sender's timeout repairs the loss.
    ChecksumMismatch {
        /// Receiving host.
        host: HostId,
        /// The corrupted fragment.
        id: FragmentId,
    },
    /// An envelope completed its revolution and leaves the ring.
    Retire {
        /// Host where the revolution completed.
        host: HostId,
        /// Retired fragment.
        id: FragmentId,
        /// True when the retirement was discovered while salvaging a
        /// dead host's queues (the revolution was already complete).
        salvaged: bool,
    },
    /// The failure detector confirmed `dead` crashed: the ring is being
    /// healed around it.
    Heal {
        /// The confirmed-dead host.
        dead: HostId,
    },
    /// The ring successor takes over the dead host's logical roles. The
    /// driver runs the application's absorb work and feeds
    /// [`Input::AbsorbDone`] when it completes.
    Absorb {
        /// Surviving successor that absorbs.
        survivor: HostId,
        /// The dead host whose roles move.
        dead: HostId,
        /// The orphaned roles (exactly-once: the ledger guarantees no
        /// role is ever absorbed twice).
        roles: Vec<usize>,
    },
    /// Planned rescale: a standby host entered the ring. The membership
    /// epoch advanced; hop links re-splice around the new member. The
    /// [`Output::Handoff`]s that follow move its stationary partitions.
    Activate {
        /// The activated host.
        host: HostId,
        /// The new membership epoch.
        epoch: u64,
    },
    /// Planned rescale: stationary partitions move from `from` to `to`
    /// (rendezvous-hashed, exactly-once — the ledger moves each role
    /// atomically, so no role is ever served by two hosts). The driver
    /// runs the application's partition rebuild at `to` and feeds
    /// [`Input::AbsorbDone`] when it completes; until then `to` relays
    /// without joining.
    Handoff {
        /// The host giving up the roles (a drainee, or a donor to a
        /// freshly activated host).
        from: HostId,
        /// The host receiving them.
        to: HostId,
        /// The roles that move.
        roles: Vec<usize>,
    },
    /// Planned rescale: a drained host reached quiescence and left the
    /// ring. The membership epoch advanced; hop links re-splice past it
    /// (the TCP driver severs its sockets here).
    Departed {
        /// The departed host.
        host: HostId,
        /// The new membership epoch.
        epoch: u64,
    },
    /// A fragment lost with a dead host was re-injected from its origin.
    Resent {
        /// Host the fragment was re-injected at.
        target: HostId,
        /// The re-sent fragment.
        id: FragmentId,
    },
    /// Continuous mode: the application reported itself finished — the
    /// driver stops the rotation.
    Finished {
        /// The host whose join observed the finish.
        host: HostId,
    },
    /// Multi-tenant mode: a pending query was admitted onto the ring —
    /// its envelopes now circulate. Emitted at construction for the
    /// initially admitted queries and whenever a completion frees an
    /// active slot.
    QueryAdmitted {
        /// The admitted query.
        query: u32,
        /// The tenant that submitted it.
        tenant: u32,
    },
    /// Multi-tenant mode: every fragment of `query` completed its
    /// revolution.
    QueryDone {
        /// The completed query.
        query: u32,
        /// The tenant that submitted it.
        tenant: u32,
    },
    /// A fatal protocol invariant was violated; the driver must abort
    /// the run, surfacing `reason` (see [`teardown`]).
    Teardown {
        /// The invariant that failed.
        reason: &'static str,
    },
}

/// Teardown reasons and root-cause classification, shared by both
/// backends so the cascade constants cannot diverge again.
///
/// A worker dying mid-run provokes a wave of secondary failures (closed
/// channels, vanished pools). [`is_root_cause`] tells error collectors
/// which reasons are primary so the run reports the first *cause*, not
/// the loudest symptom.
pub mod teardown {
    /// Root cause: the user-supplied `process` callback panicked.
    pub const CALLBACK_PANICKED: &str = "join callback panicked";
    /// Root cause: a transfer ran out of retransmission attempts on a
    /// ring where every host is alive.
    pub const BUDGET_EXHAUSTED: &str = "retransmission budget exhausted on a live ring — raise \
                                        ack_timeout or max_retransmits, or lower the loss rate";
    /// Cascade: a join entity's channels closed with fragments
    /// outstanding.
    pub const RING_CLOSED: &str = "ring closed while fragments were still outstanding";
    /// Cascade: the successor's buffer pool vanished under a
    /// transmitter.
    pub const POOL_CLOSED: &str = "successor dropped its receive pool early";
    /// Cascade: the successor's receiver thread exited mid-transfer.
    pub const RECEIVER_GONE: &str = "successor's receiver exited early";
    /// Cascade: a host's own transmitter exited before its join entity.
    pub const TX_GONE: &str = "transmitter exited early";
    /// A worker panicked outside the guarded callback (should not
    /// happen).
    pub const WORKER_PANICKED: &str = "ring worker panicked";
    /// Fatal: the failure detector exhausted a retransmission budget
    /// against a host that never crashed.
    pub const LIVE_HOST_KILLED: &str =
        "retransmission budget exhausted against a live host — raise max_retransmits or lower \
         the corruption rate; the failure detector must not kill live hosts";
    /// Fatal: every host on the ring crashed; healing has no survivor.
    pub const ALL_HOSTS_DEAD: &str = "every host died — nothing left to heal the ring";
    /// Fatal: a lost fragment cannot be re-sent because no host
    /// survives.
    pub const NO_RESEND_SURVIVOR: &str =
        "every host crashed — no survivor left to re-send lost fragments";

    /// Is `reason` a primary failure (as opposed to the channel-teardown
    /// cascade a primary failure provokes in neighboring workers)?
    pub fn is_root_cause(reason: &str) -> bool {
        reason == CALLBACK_PANICKED || reason == BUDGET_EXHAUSTED
    }
}

/// Numbers `fragments[h]` (host `h`'s local payloads) into ring
/// envelopes with globally sequential [`FragmentId`]s — the one
/// numbering scheme both backends share.
pub fn envelope_batches<P: PayloadBytes>(
    fragments: Vec<Vec<P>>,
    ring_size: usize,
) -> Vec<Vec<Envelope<P>>> {
    let mut next_id = 0usize;
    fragments
        .into_iter()
        .enumerate()
        .map(|(h, locals)| {
            locals
                .into_iter()
                .map(|payload| {
                    let id = FragmentId(next_id);
                    next_id += 1;
                    Envelope::new(id, HostId(h), ring_size, payload)
                })
                .collect()
        })
        .collect()
}

/// Numbers the fragments of many concurrent queries into ring envelopes:
/// [`FragmentId`]s stay *globally* sequential across queries (so the
/// exactly-once ledgers and the verify invariants keep one id space) and
/// each envelope is stamped with its query id. `queries[q]` is
/// `(tenant, fragments)` with `fragments[h]` host `h`'s local payloads.
pub fn query_batches<P: PayloadBytes>(
    queries: Vec<(u32, Vec<Vec<P>>)>,
    ring_size: usize,
) -> Vec<(u32, Vec<Vec<Envelope<P>>>)> {
    let mut next_id = 0usize;
    queries
        .into_iter()
        .enumerate()
        .map(|(q, (tenant, fragments))| {
            let batches = fragments
                .into_iter()
                .enumerate()
                .map(|(h, locals)| {
                    locals
                        .into_iter()
                        .map(|payload| {
                            let id = FragmentId(next_id);
                            next_id += 1;
                            let mut env = Envelope::new(id, HostId(h), ring_size, payload);
                            env.query = q as u32;
                            env
                        })
                        .collect()
                })
                .collect();
            (tenant, batches)
        })
        .collect()
}
