//! The statically allocated, registered ring-buffer element pool.
//!
//! RDMA can only DMA into memory that was registered (pinned, translated)
//! with the NIC ahead of time, and registration is expensive enough that
//! on-demand allocation is infeasible at speed (§III-C). Data Roundabout
//! therefore sizes and registers its whole pool of ring-buffer elements
//! once, at startup, and reuses the elements for the entire join execution
//! (§III-D). [`RegisteredPool`] models that pool and prices its one-time
//! registration cost, which cyclo-join charges into the setup phase.

use serde::{Deserialize, Serialize};
use simnet::rnic::RnicConfig;
use simnet::time::SimDuration;

/// A host's pool of registered ring-buffer elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegisteredPool {
    elements: usize,
    element_bytes: u64,
}

impl RegisteredPool {
    /// A pool of `elements` buffer elements of `element_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(elements: usize, element_bytes: u64) -> Self {
        assert!(elements > 0, "pool needs at least one element");
        assert!(element_bytes > 0, "elements must have a positive size");
        RegisteredPool {
            elements,
            element_bytes,
        }
    }

    /// Number of buffer elements.
    pub fn elements(&self) -> usize {
        self.elements
    }

    /// Size of one element in bytes.
    pub fn element_bytes(&self) -> u64 {
        self.element_bytes
    }

    /// Total registered bytes.
    pub fn total_bytes(&self) -> u64 {
        self.elements as u64 * self.element_bytes
    }

    /// One-time CPU cost of registering the whole pool with the RNIC.
    pub fn registration_cost(&self, rnic: &RnicConfig) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for _ in 0..self.elements {
            total += rnic.registration_cost(self.element_bytes);
        }
        total
    }

    /// What registering this pool *per transfer* would cost if it were done
    /// on demand instead — the cost the static design avoids. Provided for
    /// the documentation benches; equals the per-element registration cost.
    pub fn on_demand_cost_per_transfer(&self, rnic: &RnicConfig) -> SimDuration {
        rnic.registration_cost(self.element_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_dimensions() {
        let pool = RegisteredPool::new(2, 16 << 20);
        assert_eq!(pool.elements(), 2);
        assert_eq!(pool.element_bytes(), 16 << 20);
        assert_eq!(pool.total_bytes(), 32 << 20);
    }

    #[test]
    #[should_panic(expected = "at least one element")]
    fn zero_elements_rejected() {
        let _ = RegisteredPool::new(0, 1024);
    }

    #[test]
    fn registration_cost_scales_with_elements_and_size() {
        let rnic = RnicConfig::paper_t3();
        let small = RegisteredPool::new(2, 1 << 20).registration_cost(&rnic);
        let more = RegisteredPool::new(4, 1 << 20).registration_cost(&rnic);
        let bigger = RegisteredPool::new(2, 4 << 20).registration_cost(&rnic);
        assert!(more > small);
        assert!(bigger > small);
    }

    #[test]
    fn static_registration_beats_on_demand_quickly() {
        // Registering once and reusing beats re-registering per transfer
        // as soon as more than `elements` transfers happen.
        let rnic = RnicConfig::paper_t3();
        let pool = RegisteredPool::new(2, 16 << 20);
        let static_cost = pool.registration_cost(&rnic);
        let per_transfer = pool.on_demand_cost_per_transfer(&rnic);
        let transfers = 100u64;
        assert!(static_cost < per_transfer * transfers);
    }
}
