//! The simulated ring backend: Data Roundabout inside a discrete-event
//! simulation.
//!
//! Every host runs the paper's three asynchronous entities (§III-D):
//!
//! * the **receiver** accepts envelopes into pre-reserved ring-buffer
//!   elements (an RDMA receive requires a pre-posted buffer, so the slot
//!   is reserved at the *sender's* send time, not at arrival);
//! * the **join entity** processes one buffer at a time, FIFO;
//! * the **transmitter** forwards processed envelopes clockwise, but only
//!   when the successor has a free buffer element (credit-based flow
//!   control) — this is the mechanism that lets a slow host "borrow" time
//!   from the ring without stalling it immediately (§V-D).
//!
//! Time and CPU model:
//!
//! * transfers occupy the hop link for their serialization time (chunk-size
//!   curve of Figure 5); software TCP is additionally capped by what one
//!   transmitter thread can push through the kernel (§V-G);
//! * per transferred envelope, the transport's CPU cost model charges both
//!   endpoints (Figure 3 categories);
//! * join durations come from the application; under TCP they are inflated
//!   by cache pollution and — when the join threads plus communication
//!   demand exceed the cores — by CPU contention:
//!   `d_eff = pollution × max(d, (threads·d + comm_cpu) / cores)`.
//!   Under RDMA, `d_eff = d`: the join "is never interrupted by the
//!   network".

use std::collections::{BTreeMap, HashSet, VecDeque};

use simnet::cpu::{CostCategory, CpuAccount};
use simnet::engine::Simulation;
use simnet::fault::FaultPlan;
use simnet::link::Link;
use simnet::rnic::{Completion, MemoryRegion, QueuePair, Rnic, WorkRequest};
use simnet::span::{counter, SpanKind, SpanTracer, Track};
use simnet::throughput::{Bandwidth, ChunkThroughput};
use simnet::time::{SimDuration, SimTime};
use simnet::topology::{HostId, RingNetwork};
use simnet::trace::Tracer;
use simnet::transport::TransportModel;

use crate::app::RingApp;
use crate::config::RingConfig;
use crate::envelope::{Envelope, PayloadBytes};
use crate::metrics::{HostMetrics, RingMetrics};

/// Safety valve: no legitimate run needs more events than this per fragment
/// and host.
const EVENT_BUDGET_PER_UNIT: u64 = 64;

/// Event budget for continuous (Data Cyclotron) rotations, which end when
/// the application says so rather than when fragments retire.
const CONTINUOUS_EVENT_BUDGET: u64 = 50_000_000;

/// The reliable transport's fault path needs room for acks, timeouts,
/// retransmissions and probes on top of the classic event stream.
const FAULT_BUDGET_FACTOR: u64 = 8;
const FAULT_BUDGET_SLACK: u64 = 100_000;

/// Wire size of a per-hop acknowledgement (a control message riding the
/// backward direction of the full-duplex hop link).
const ACK_BYTES: u64 = 64;

/// The outcome of a simulated ring run.
#[derive(Debug)]
pub struct SimOutcome<A> {
    /// Timing and CPU metrics.
    pub metrics: RingMetrics,
    /// The application, with whatever state it accumulated.
    pub app: A,
    /// The event trace (empty unless tracing was enabled).
    pub trace: Tracer,
    /// Structured spans, instant events and counters (disabled unless
    /// tracing was enabled); exportable as Chrome trace-event JSON.
    pub spans: SpanTracer,
}

/// An envelope at the join entity, remembering whether it occupies a slot
/// of the host's receive pool (locally injected fragments live in local
/// memory and do not). Zero-copy processing reads the buffer element in
/// place, so the slot stays held *through* the join and is released when
/// the join entity finishes with it; the transmit path then stages from
/// the processed element, so forwarding never holds receive credit. That
/// is what makes the credit scheme deadlock-free: every held slot is
/// released after a bounded amount of join work, never while waiting for
/// downstream credit.
#[derive(Debug)]
struct Held<P> {
    env: Envelope<P>,
    pooled: bool,
}

#[derive(Debug)]
struct HostState<P> {
    incoming: VecDeque<Held<P>>,
    processing: Option<Held<P>>,
    outgoing: VecDeque<Envelope<P>>,
    /// Receive-pool slots in use (reserved for in-flight transfers or
    /// occupied by received envelopes still on this host).
    pool_used: usize,
    /// Transmitter busy with an in-flight send.
    sending: bool,
    setup_done: Option<SimTime>,
    last_join_done: SimTime,
    join_busy: SimDuration,
    join_cpu: CpuAccount,
    fragments_processed: usize,
    bytes_forwarded: u64,
}

impl<P> HostState<P> {
    fn new() -> Self {
        HostState {
            incoming: VecDeque::new(),
            processing: None,
            outgoing: VecDeque::new(),
            pool_used: 0,
            sending: false,
            setup_done: None,
            last_join_done: SimTime::ZERO,
            join_busy: SimDuration::ZERO,
            join_cpu: CpuAccount::new(),
            fragments_processed: 0,
            bytes_forwarded: 0,
        }
    }
}

enum RingEvent<P> {
    SetupDone {
        host: HostId,
    },
    JoinDone {
        host: HostId,
    },
    Arrived {
        to: HostId,
        env: Envelope<P>,
    },
    SendDone {
        from: HostId,
        completion: Option<Completion>,
    },
    /// The receiver's NIC acknowledged transfer `seq` (fault mode only).
    AckArrived {
        seq: u64,
    },
    /// The sender's retransmission timer for attempt `attempt` of transfer
    /// `seq` fired (stale if the transfer was acked or re-attempted since).
    AckTimeout {
        seq: u64,
        attempt: u32,
    },
    /// A sender blocked on its successor's full receive pool probes it.
    ProbeTimeout {
        from: HostId,
        to: HostId,
        attempt: u32,
    },
    /// Scheduled adversity from the fault plan.
    Crash {
        host: HostId,
    },
    Pause {
        host: HostId,
    },
    Resume {
        host: HostId,
    },
    /// The ring-healing successor finished rebuilding the absorbed
    /// stationary partitions and may join again.
    AbsorbDone {
        host: HostId,
    },
}

/// One unacknowledged transfer of the reliable transport.
struct InFlight<P> {
    from: HostId,
    to: HostId,
    /// Pristine copy for retransmission (corruption is injected on the
    /// transmitted clone, never on this master).
    env: Envelope<P>,
    /// Send attempts made so far (1 = the initial transmission).
    attempts: u32,
    /// Whether the most recent attempt put an intact copy on the wire
    /// toward a then-live receiver. Consulted during healing to decide
    /// between "the receiver has it" and "lost — re-send from origin".
    maybe_live: bool,
}

/// Bookkeeping of the fault-tolerant transport, present only when a
/// [`FaultPlan`] is attached. The classic path never touches it, so runs
/// without a plan are byte-identical to the pre-fault backend.
struct FaultCtx<P> {
    plan: FaultPlan,
    /// Ground truth: the host stopped acting (its buffers are retained
    /// until healing salvages them).
    crashed: Vec<bool>,
    /// Routing truth: a peer exhausted its retransmission budget and the
    /// ring now bypasses this host.
    confirmed_dead: Vec<bool>,
    paused: Vec<bool>,
    /// Successor busy rebuilding absorbed partitions (joins gated).
    absorbing: Vec<bool>,
    /// Logical stationary partitions (`S_i` roles) each host serves;
    /// starts as `roles[h] == [h]` and grows through healing.
    roles: Vec<Vec<usize>>,
    next_seq: u64,
    in_flight: BTreeMap<u64, InFlight<P>>,
    /// Transfers accepted by some receiver — dedupes the copies that
    /// spurious retransmissions deliver twice.
    accepted_seqs: HashSet<u64>,
    /// Transfers rerouted at their sender after the receiver's death was
    /// confirmed; a late arrival of the original copy at the corpse must
    /// not be salvaged a second time.
    requeued: HashSet<u64>,
    /// Stop-and-wait: the transfer each host is awaiting an ack for.
    awaiting: Vec<Option<u64>>,
    /// Outstanding pool-blocked probe per sender: `(target, attempt)`.
    probing: Vec<Option<(HostId, u32)>>,
    retransmits: Vec<u64>,
    checksum_mismatches: Vec<u64>,
    heal_events: usize,
    fragments_resent: usize,
    detection_latency: SimDuration,
    /// `visited` mask covering every logical role.
    full_mask: u64,
    /// Last instant of real progress (setup, join, retirement, absorb) —
    /// the fault-mode wall clock, so trailing ack chatter does not pad the
    /// reported runtime.
    last_progress: SimTime,
}

impl<P> FaultCtx<P> {
    fn new(plan: FaultPlan, hosts: usize) -> Self {
        FaultCtx {
            plan,
            crashed: vec![false; hosts],
            confirmed_dead: vec![false; hosts],
            paused: vec![false; hosts],
            absorbing: vec![false; hosts],
            roles: (0..hosts).map(|h| vec![h]).collect(),
            next_seq: 1,
            in_flight: BTreeMap::new(),
            accepted_seqs: HashSet::new(),
            requeued: HashSet::new(),
            awaiting: vec![None; hosts],
            probing: vec![None; hosts],
            retransmits: vec![0; hosts],
            checksum_mismatches: vec![0; hosts],
            heal_events: 0,
            fragments_resent: 0,
            detection_latency: SimDuration::ZERO,
            full_mask: if hosts >= 64 {
                u64::MAX
            } else {
                (1u64 << hosts) - 1
            },
            last_progress: SimTime::ZERO,
        }
    }

    /// Bitmask of the roles `host` currently serves.
    // analyze: allow(panic, reason = "protocol invariant: host ids index per-ring tables sized at construction; the healing path is exercised exhaustively by the chaos and loom suites")
    fn role_mask(&self, host: HostId) -> u64 {
        self.roles[host.0].iter().fold(0u64, |m, r| m | (1u64 << r))
    }

    /// The nearest clockwise successor the ring still routes to (`host`
    /// itself when it is the sole survivor).
    // analyze: allow(panic, reason = "protocol invariant: host ids index per-ring tables sized at construction; the healing path is exercised exhaustively by the chaos and loom suites")
    fn next_alive(&self, host: HostId) -> HostId {
        let n = self.confirmed_dead.len();
        for step in 1..=n {
            let h = (host.0 + step) % n;
            if !self.confirmed_dead[h] {
                return HostId(h);
            }
        }
        host
    }

    /// The nearest counterclockwise predecessor still routed to.
    // analyze: allow(panic, reason = "protocol invariant: host ids index per-ring tables sized at construction; the healing path is exercised exhaustively by the chaos and loom suites")
    fn prev_alive(&self, host: HostId) -> HostId {
        let n = self.confirmed_dead.len();
        for step in 1..=n {
            let h = (host.0 + n - (step % n)) % n;
            if !self.confirmed_dead[h] {
                return HostId(h);
            }
        }
        host
    }

    /// Where a salvaged fragment re-enters the ring: its origin, or (when
    /// the origin itself crashed) the nearest not-crashed host after it.
    ///
    /// # Panics
    ///
    /// Panics when every host crashed — there is nobody left to re-send.
    // analyze: allow(panic, reason = "protocol invariant: host ids index per-ring tables sized at construction; the healing path is exercised exhaustively by the chaos and loom suites")
    fn inject_target(&self, origin: HostId) -> HostId {
        let n = self.crashed.len();
        for step in 0..n {
            let h = (origin.0 + step) % n;
            if !self.crashed[h] {
                return HostId(h);
            }
        }
        panic!("every host crashed — no survivor left to re-send lost fragments");
    }
}

/// A configured, ready-to-run simulated ring.
pub struct SimRing<P, A> {
    config: RingConfig,
    fragments: Vec<Vec<P>>,
    app: A,
    trace: bool,
    continuous: bool,
    host_speed: Option<Vec<f64>>,
    fault_plan: Option<FaultPlan>,
}

impl<P: PayloadBytes + Clone, A: RingApp<P>> SimRing<P, A> {
    /// Prepares a run: `fragments[h]` are the local fragments host `h`
    /// contributes to the rotation.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `fragments.len()` differs
    /// from the configured host count.
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    pub fn new(config: RingConfig, fragments: Vec<Vec<P>>, app: A) -> Self {
        config.validate().expect("invalid ring configuration");
        assert_eq!(
            fragments.len(),
            config.hosts,
            "need one fragment list per host ({} hosts, {} lists)",
            config.hosts,
            fragments.len()
        );
        SimRing {
            config,
            fragments,
            app,
            trace: false,
            continuous: false,
            host_speed: None,
            fault_plan: None,
        }
    }

    /// Attaches a deterministic [`FaultPlan`] and switches the transport
    /// into its reliable mode: sequence-numbered, checksummed envelopes
    /// with per-hop acknowledgement, timeout-driven retransmission with
    /// bounded exponential backoff, and mid-revolution ring healing when a
    /// host's death is confirmed. Attaching even a quiet plan changes the
    /// protocol (acks flow); omitting the plan keeps the classic path
    /// byte-identical to the unreliable backend.
    ///
    /// # Panics
    ///
    /// `run` panics if the plan is combined with continuous rotation, if a
    /// crash is scheduled on a single-host ring (there is nobody left to
    /// heal), or if the ring has more than 64 hosts (the exactly-once
    /// ledger is a 64-bit role bitmask).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Makes hosts heterogeneous: host `h`'s join durations are divided by
    /// `speed[h]` (1.0 = nominal, 0.5 = half speed). The paper's §V-D
    /// observes that "the ring buffer mechanism of Data Roundabout
    /// balances differences in the execution speeds of the participating
    /// hosts" — this knob lets benchmarks inject exactly such differences.
    ///
    /// # Panics
    ///
    /// `run` panics if the vector length differs from the host count or
    /// any factor is not finite and positive.
    pub fn with_host_speeds(mut self, speed: Vec<f64>) -> Self {
        self.host_speed = Some(speed);
        self
    }

    /// Enables event tracing for this run.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Switches to *continuous* rotation — the Data Cyclotron mode:
    /// envelopes never retire (they keep circulating after a full
    /// revolution) and the run ends when the application's
    /// [`RingApp::finished`] hook returns `true`.
    ///
    /// # Panics
    ///
    /// `run` panics if the app never finishes within the event budget —
    /// a safety valve against rotations that spin forever.
    pub fn continuous(mut self) -> Self {
        self.continuous = true;
        self
    }

    /// Runs the ring to quiescence and returns metrics, app and trace.
    ///
    /// # Panics
    ///
    /// Panics if the run ends with unfinished fragments (which would mean
    /// a flow-control deadlock — a bug, not a configuration problem).
    pub fn run(self) -> SimOutcome<A> {
        Runner::new(self).run()
    }
}

/// The effective hop link: RDMA runs at the RNIC-saturated goodput curve;
/// software TCP is capped by its transmitter thread's per-core rate.
fn effective_link(config: &RingConfig) -> Link {
    let peak = match config.transport {
        TransportModel::Rdma(_) => config.link_bandwidth,
        TransportModel::KernelTcp(m) | TransportModel::Toe(m) => {
            let cpu_cap = m.per_core_rate(config.cpu);
            if cpu_cap.bytes_per_sec() < config.link_bandwidth.bytes_per_sec() {
                cpu_cap
            } else {
                config.link_bandwidth
            }
        }
    };
    Link::new(
        ChunkThroughput::new(peak, config.per_message_overhead),
        config.link_latency,
    )
}

struct Runner<P, A> {
    config: RingConfig,
    app: A,
    continuous: bool,
    stopped: bool,
    network: RingNetwork,
    hosts: Vec<HostState<P>>,
    /// Per-host RNIC state (RDMA transport only): the NIC, its send queue
    /// pair, and the registered region backing the ring-buffer pool.
    /// Transfers are posted as work requests against the registered
    /// region, exactly as on real hardware; the registration *cost* is
    /// charged by the application layer during setup (it owns the
    /// setup-phase accounting).
    rnics: Vec<Option<(Rnic, QueuePair, MemoryRegion)>>,
    host_speed: Option<Vec<f64>>,
    next_wr_id: u64,
    fragments_total: usize,
    fragments_completed: usize,
    wall_clock: SimTime,
    tracer: Tracer,
    spans: SpanTracer,
    /// Per-host end of the last busy interval (join or absorb), used only
    /// for emitting `Sync` spans: the gap from here to the next join start
    /// is exactly the idle time `RingMetrics` reports as `sync`.
    busy_until: Vec<SimTime>,
    fault: Option<FaultCtx<P>>,
}

impl<P: PayloadBytes + Clone, A: RingApp<P>> Runner<P, A> {
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn new(ring: SimRing<P, A>) -> Self {
        let n = ring.config.hosts;
        if let Some(speed) = &ring.host_speed {
            assert_eq!(speed.len(), n, "need one speed factor per host");
            assert!(
                speed.iter().all(|s| s.is_finite() && *s > 0.0),
                "host speed factors must be finite and positive"
            );
        }
        if let Some(plan) = &ring.fault_plan {
            assert!(
                !ring.continuous,
                "fault injection requires run-to-retirement mode, not continuous rotation"
            );
            assert!(
                n <= 64,
                "the exactly-once role bitmask supports at most 64 hosts"
            );
            assert!(
                n > 1 || plan.crashes().is_empty(),
                "cannot heal a single-host ring around a crash"
            );
        }
        let network = RingNetwork::new(n, effective_link(&ring.config));
        let mut hosts: Vec<HostState<P>> = (0..n).map(|_| HostState::new()).collect();
        let mut next_id = 0usize;
        let fragments_total: usize = ring.fragments.iter().map(Vec::len).sum();
        let max_fragment_bytes = ring
            .fragments
            .iter()
            .flat_map(|f| f.iter())
            .map(PayloadBytes::payload_bytes)
            .max()
            .unwrap_or(0)
            .max(1);
        let rnics: Vec<Option<(Rnic, QueuePair, MemoryRegion)>> = (0..n)
            .map(|_| match ring.config.transport {
                TransportModel::Rdma(cfg) => {
                    let mut rnic = Rnic::new(cfg);
                    let (region, _cost) = rnic.register(
                        SimTime::ZERO,
                        max_fragment_bytes * ring.config.buffers_per_host as u64,
                    );
                    Some((rnic, QueuePair::new(), region))
                }
                _ => None,
            })
            .collect();
        for (h, frags) in ring.fragments.into_iter().enumerate() {
            for payload in frags {
                let env =
                    Envelope::new(crate::envelope::FragmentId(next_id), HostId(h), n, payload);
                next_id += 1;
                // Local fragments enter the join queue directly; they live
                // in local memory, not in the receive pool.
                hosts[h].incoming.push_back(Held { env, pooled: false });
            }
        }
        Runner {
            config: ring.config,
            app: ring.app,
            continuous: ring.continuous,
            stopped: false,
            network,
            hosts,
            rnics,
            host_speed: ring.host_speed,
            next_wr_id: 0,
            fragments_total,
            fragments_completed: 0,
            wall_clock: SimTime::ZERO,
            tracer: if ring.trace {
                Tracer::enabled()
            } else {
                Tracer::disabled()
            },
            spans: if ring.trace {
                SpanTracer::enabled()
            } else {
                SpanTracer::disabled()
            },
            busy_until: vec![SimTime::ZERO; n],
            fault: ring.fault_plan.map(|plan| FaultCtx::new(plan, n)),
        }
    }

    fn run(mut self) -> SimOutcome<A> {
        let mut budget = if self.continuous {
            // Continuous rotations are open-ended; give them a generous
            // but finite budget so a never-finishing app fails loudly.
            CONTINUOUS_EVENT_BUDGET
        } else {
            EVENT_BUDGET_PER_UNIT
                * (self.fragments_total as u64 + 1)
                * (self.config.hosts as u64 + 1)
        };
        if self.fault.is_some() {
            budget = budget * FAULT_BUDGET_FACTOR + FAULT_BUDGET_SLACK;
        }
        let mut sim: Simulation<RingEvent<P>> = Simulation::new().with_event_limit(budget);
        for h in 0..self.config.hosts {
            let d = self.app.setup(HostId(h));
            sim.schedule_in(d, RingEvent::SetupDone { host: HostId(h) });
        }
        if let Some(f) = &self.fault {
            for c in f.plan.crashes() {
                sim.schedule_at(c.at, RingEvent::Crash { host: c.host });
            }
            for p in f.plan.pauses() {
                sim.schedule_at(p.at, RingEvent::Pause { host: p.host });
                sim.schedule_at(p.at + p.duration, RingEvent::Resume { host: p.host });
            }
        }
        while let Some(ev) = sim.step() {
            self.handle(&mut sim, ev);
            if self.stopped {
                break;
            }
        }
        self.wall_clock = match &self.fault {
            // Trailing ack/timeout chatter after the last retirement must
            // not pad the reported runtime.
            Some(f) => f.last_progress,
            None => sim.now(),
        };
        if self.continuous {
            assert!(
                self.stopped || self.fragments_total == 0,
                "continuous rotation drained its event queue without the app                  declaring itself finished — the ring stalled"
            );
        } else {
            assert_eq!(
                self.fragments_completed, self.fragments_total,
                "ring run quiesced with unfinished fragments — flow-control deadlock"
            );
        }
        self.finish()
    }

    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn handle(&mut self, sim: &mut Simulation<RingEvent<P>>, ev: RingEvent<P>) {
        if self.fault.is_some() {
            // Temporarily take the fault context so handlers can borrow it
            // alongside the host states.
            let mut f = self.fault.take().expect("checked is_some");
            self.handle_fault(sim, &mut f, ev);
            self.fault = Some(f);
            return;
        }
        match ev {
            RingEvent::SetupDone { host } => {
                self.hosts[host.0].setup_done = Some(sim.now());
                self.hosts[host.0].last_join_done = sim.now();
                self.busy_until[host.0] = sim.now();
                self.tracer.record(sim.now(), host, "setup done");
                self.spans.span(
                    host.0,
                    SpanKind::Setup,
                    "setup",
                    SimTime::ZERO,
                    sim.now().saturating_duration_since(SimTime::ZERO),
                );
                self.try_start_join(sim, host);
            }
            RingEvent::JoinDone { host } => {
                self.on_join_done(sim, host);
            }
            RingEvent::Arrived { to, env } => {
                self.on_arrived(sim, to, env);
            }
            RingEvent::SendDone { from, completion } => {
                self.on_send_done(sim, from, completion);
            }
            RingEvent::AckArrived { .. }
            | RingEvent::AckTimeout { .. }
            | RingEvent::ProbeTimeout { .. }
            | RingEvent::Crash { .. }
            | RingEvent::Pause { .. }
            | RingEvent::Resume { .. }
            | RingEvent::AbsorbDone { .. } => {
                unreachable!("fault-mode event scheduled without a fault plan")
            }
        }
    }

    // analyze: allow(panic, reason = "protocol invariant: host ids index per-ring tables sized at construction; the healing path is exercised exhaustively by the chaos and loom suites")
    fn handle_fault(
        &mut self,
        sim: &mut Simulation<RingEvent<P>>,
        f: &mut FaultCtx<P>,
        ev: RingEvent<P>,
    ) {
        match ev {
            RingEvent::SetupDone { host } => {
                if f.crashed[host.0] {
                    return;
                }
                self.hosts[host.0].setup_done = Some(sim.now());
                self.hosts[host.0].last_join_done = sim.now();
                self.busy_until[host.0] = sim.now();
                f.last_progress = f.last_progress.max(sim.now());
                self.tracer.record(sim.now(), host, "setup done");
                self.spans.span(
                    host.0,
                    SpanKind::Setup,
                    "setup",
                    SimTime::ZERO,
                    sim.now().saturating_duration_since(SimTime::ZERO),
                );
                self.try_start_join_fault(sim, f, host);
            }
            RingEvent::JoinDone { host } => self.on_join_done_fault(sim, f, host),
            RingEvent::Arrived { to, env } => self.on_arrived_fault(sim, f, to, env),
            RingEvent::SendDone { from, completion } => {
                self.hosts[from.0].sending = false;
                if let (Some(c), Some((_, qp, _))) = (completion, self.rnics[from.0].as_mut()) {
                    // Retransmissions can leave several completions queued;
                    // reap leniently rather than insisting on strict pairing.
                    qp.complete(c);
                    let _ = qp.poll_cq();
                }
                if !f.crashed[from.0] {
                    self.try_send_fault(sim, f, from);
                }
            }
            RingEvent::AckArrived { seq } => self.on_ack_arrived(sim, f, seq),
            RingEvent::AckTimeout { seq, attempt } => self.on_ack_timeout(sim, f, seq, attempt),
            RingEvent::ProbeTimeout { from, to, attempt } => {
                self.on_probe_timeout(sim, f, from, to, attempt)
            }
            RingEvent::Crash { host } => {
                if f.crashed[host.0] {
                    return;
                }
                f.crashed[host.0] = true;
                self.tracer.record(sim.now(), host, "crashed");
                self.spans
                    .event(Some(host.0), Track::Control, "crashed", sim.now());
            }
            RingEvent::Pause { host } => {
                if f.crashed[host.0] {
                    return;
                }
                f.paused[host.0] = true;
                self.tracer.record(sim.now(), host, "paused");
                self.spans
                    .event(Some(host.0), Track::Control, "paused", sim.now());
            }
            RingEvent::Resume { host } => {
                if f.crashed[host.0] {
                    return;
                }
                f.paused[host.0] = false;
                self.tracer.record(sim.now(), host, "resumed");
                self.spans
                    .event(Some(host.0), Track::Control, "resumed", sim.now());
                self.try_start_join_fault(sim, f, host);
                self.try_send_fault(sim, f, host);
            }
            RingEvent::AbsorbDone { host } => {
                if f.crashed[host.0] {
                    return;
                }
                f.absorbing[host.0] = false;
                f.last_progress = f.last_progress.max(sim.now());
                self.tracer.record(sim.now(), host, "absorb complete");
                self.try_start_join_fault(sim, f, host);
                self.try_send_fault(sim, f, host);
            }
        }
    }

    /// Fault-mode receive: NIC-level checksum verification, duplicate
    /// suppression and acknowledgement, all active even while the host's
    /// software is paused. A crashed host's NIC is a black hole.
    // analyze: allow(panic, reason = "protocol invariant: host ids index per-ring tables sized at construction; the healing path is exercised exhaustively by the chaos and loom suites")
    fn on_arrived_fault(
        &mut self,
        sim: &mut Simulation<RingEvent<P>>,
        f: &mut FaultCtx<P>,
        to: HostId,
        env: Envelope<P>,
    ) {
        let seq = env.seq;
        if f.crashed[to.0] {
            if let Some(entry) = f.in_flight.get_mut(&seq) {
                // The sender still tracks this transfer; its timeout path
                // will retransmit or reroute. The copy itself dies here.
                entry.maybe_live = false;
            } else if !f.requeued.remove(&seq) {
                // The sender healed past this transfer believing the copy
                // delivered — salvage it from the wire.
                self.resend_from_origin(sim, f, env);
            }
            return;
        }
        if !env.checksum_ok() {
            f.checksum_mismatches[to.0] += 1;
            self.tracer
                .record(sim.now(), to, format!("checksum mismatch on {}", env.id));
            if self.spans.is_enabled() {
                self.spans.event(
                    Some(to.0),
                    Track::Receiver,
                    format!("checksum mismatch {}", env.id),
                    sim.now(),
                );
                self.spans.count(counter::CHECKSUM_MISMATCHES, 1);
            }
            // No ack: the sender's timeout drives the retransmission.
            return;
        }
        // Ack at NIC level on the backward channel of the sender's link, so
        // acks never contend with payload and paused hosts still answer.
        if let Some(entry) = f.in_flight.get(&seq) {
            let ack = self
                .network
                .reserve_hop_back(sim.now(), entry.from, ACK_BYTES);
            sim.schedule_at(ack.arrival, RingEvent::AckArrived { seq });
        }
        if !f.accepted_seqs.insert(seq) {
            // A spurious retransmission delivered a second copy.
            self.tracer
                .record(sim.now(), to, format!("duplicate {} dropped", env.id));
            return;
        }
        let cost = match self.config.transport {
            TransportModel::Rdma(cfg) => {
                let mut acc = CpuAccount::new();
                acc.charge(CostCategory::Driver, cfg.completion_overhead);
                acc
            }
            _ => self
                .config
                .transport
                .comm_cpu(self.config.cpu, env.bytes(), 1),
        };
        self.hosts[to.0].join_cpu.merge(&cost);
        self.tracer.record(
            sim.now(),
            to,
            format!("received {} ({} B)", env.id, env.bytes()),
        );
        if self.spans.is_enabled() {
            self.spans.event(
                Some(to.0),
                Track::Receiver,
                format!("recv {}", env.id),
                sim.now(),
            );
            self.spans.count(counter::ENVELOPES_RECEIVED, 1);
        }
        self.hosts[to.0]
            .incoming
            .push_back(Held { env, pooled: true });
        self.try_start_join_fault(sim, f, to);
    }

    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn on_ack_arrived(
        &mut self,
        sim: &mut Simulation<RingEvent<P>>,
        f: &mut FaultCtx<P>,
        seq: u64,
    ) {
        let Some(entry) = f.in_flight.remove(&seq) else {
            return; // transfer already settled (healed or superseded)
        };
        if f.awaiting[entry.from.0] == Some(seq) {
            f.awaiting[entry.from.0] = None;
        }
        if !f.crashed[entry.from.0] {
            self.try_send_fault(sim, f, entry.from);
        }
    }

    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn on_ack_timeout(
        &mut self,
        sim: &mut Simulation<RingEvent<P>>,
        f: &mut FaultCtx<P>,
        seq: u64,
        attempt: u32,
    ) {
        let (from, to, attempts) = match f.in_flight.get(&seq) {
            Some(e) => (e.from, e.to, e.attempts),
            None => return, // acked or rerouted in the meantime
        };
        if attempts != attempt {
            return; // stale timer of an earlier attempt
        }
        if f.crashed[from.0] {
            return; // dead senders do not retransmit; healing recovers this
        }
        if f.confirmed_dead[to.0] {
            // Someone else confirmed the death first: reroute this transfer
            // to the head of the queue so it takes the healed path next.
            let entry = f.in_flight.remove(&seq).expect("looked up above");
            f.requeued.insert(seq);
            if f.awaiting[from.0] == Some(seq) {
                f.awaiting[from.0] = None;
            }
            self.hosts[from.0].outgoing.push_front(entry.env);
            self.try_send_fault(sim, f, from);
            return;
        }
        if attempts > self.config.max_retransmits {
            // Budget exhausted: the successor is dead. (A live receiver
            // always acks eventually — corruption rerolls per attempt.)
            self.confirm_death(sim, f, to);
            return;
        }
        let entry = f.in_flight.get_mut(&seq).expect("looked up above");
        entry.attempts += 1;
        f.retransmits[from.0] += 1;
        let id = entry.env.id;
        self.tracer.record(
            sim.now(),
            from,
            format!("retransmit {id} (attempt {})", attempt + 1),
        );
        if self.spans.is_enabled() {
            self.spans.event(
                Some(from.0),
                Track::Transmitter,
                format!("retransmit {id} attempt {}", attempt + 1),
                sim.now(),
            );
            self.spans.count(counter::RETRANSMITS, 1);
        }
        self.transmit_attempt(sim, f, seq);
    }

    // analyze: allow(panic, reason = "protocol invariant: host ids index per-ring tables sized at construction; the healing path is exercised exhaustively by the chaos and loom suites")
    fn on_probe_timeout(
        &mut self,
        sim: &mut Simulation<RingEvent<P>>,
        f: &mut FaultCtx<P>,
        from: HostId,
        to: HostId,
        attempt: u32,
    ) {
        if f.probing[from.0] != Some((to, attempt)) {
            return; // stale probe
        }
        if f.crashed[from.0] {
            f.probing[from.0] = None;
            return;
        }
        let blocked = !self.hosts[from.0].outgoing.is_empty()
            && !self.hosts[from.0].sending
            && f.awaiting[from.0].is_none()
            && !f.confirmed_dead[to.0]
            && f.next_alive(from) == to
            && self.hosts[to.0].pool_used >= self.config.buffers_per_host;
        if !blocked {
            f.probing[from.0] = None;
            self.try_send_fault(sim, f, from);
            return;
        }
        if f.crashed[to.0] {
            // The probe went unanswered: a crashed NIC. Count attempts with
            // the same budget and backoff as data retransmissions.
            if attempt > self.config.max_retransmits {
                f.probing[from.0] = None;
                self.confirm_death(sim, f, to);
            } else {
                f.probing[from.0] = Some((to, attempt + 1));
                let backoff = self.config.ack_timeout * (1u64 << attempt.min(20));
                sim.schedule_in(
                    backoff,
                    RingEvent::ProbeTimeout {
                        from,
                        to,
                        attempt: attempt + 1,
                    },
                );
            }
        } else {
            // The successor's NIC answered: alive, just slow or paused.
            // Keep watching at the base interval.
            f.probing[from.0] = Some((to, 1));
            sim.schedule_in(
                self.config.ack_timeout,
                RingEvent::ProbeTimeout {
                    from,
                    to,
                    attempt: 1,
                },
            );
        }
    }

    /// Fault-mode join start: computes the set of not-yet-visited roles
    /// this host serves, marks them in the exactly-once ledger at join
    /// *start* (joins are atomic units whose output is modeled as durably
    /// streamed at process time), and forwards fully-covered envelopes
    /// without joining.
    // analyze: allow(panic, reason = "protocol invariant: host ids index per-ring tables sized at construction; the healing path is exercised exhaustively by the chaos and loom suites")
    fn try_start_join_fault(
        &mut self,
        sim: &mut Simulation<RingEvent<P>>,
        f: &mut FaultCtx<P>,
        host: HostId,
    ) {
        loop {
            let state = &self.hosts[host.0];
            if f.crashed[host.0]
                || f.paused[host.0]
                || f.absorbing[host.0]
                || state.setup_done.is_none()
                || state.processing.is_some()
                || state.incoming.is_empty()
            {
                return;
            }
            let mut held = self.hosts[host.0]
                .incoming
                .pop_front()
                .expect("checked non-empty");
            let apply = f.role_mask(host) & !held.env.visited;
            if apply == 0 {
                // Every partition this host serves already joined this
                // fragment (healed-route pass-through): forward unjoined.
                if held.pooled {
                    self.hosts[host.0].pool_used -= 1;
                    let prev = f.prev_alive(host);
                    self.try_send_fault(sim, f, prev);
                }
                self.tracer
                    .record(sim.now(), host, format!("pass-through {}", held.env.id));
                if self.spans.is_enabled() {
                    self.spans.event(
                        Some(host.0),
                        Track::Join,
                        format!("pass-through {}", held.env.id),
                        sim.now(),
                    );
                }
                self.route_onward_fault(sim, f, host, held.env);
                continue;
            }
            // Roles already joined before this stop — the fault-mode hop
            // index (routing may bypass healed-over hosts).
            let hop = held.env.visited.count_ones() as usize;
            held.env.mark_visited(apply);
            let roles: Vec<usize> = f.roles[host.0]
                .iter()
                .copied()
                .filter(|r| apply & (1u64 << r) != 0)
                .collect();
            let d_base = self
                .app
                .process_roles(host, &roles, sim.now(), &held.env.payload);
            let d_base = match &self.host_speed {
                Some(speed) => d_base * (1.0 / speed[host.0]),
                None => d_base,
            };
            let slowdown = f.plan.slowdown(host);
            let d_base = if slowdown == 1.0 {
                d_base
            } else {
                d_base * (1.0 / slowdown)
            };
            let d_eff = self.effective_join_duration(d_base, held.env.bytes());
            let state = &mut self.hosts[host.0];
            state.join_cpu.charge(
                CostCategory::Compute,
                d_base * self.config.join_threads as u64,
            );
            state.join_busy += d_eff;
            self.tracer.record(
                sim.now(),
                host,
                format!("join start {} for {}", held.env.id, d_eff),
            );
            if self.spans.is_enabled() {
                self.record_sync_gap(host, sim.now());
                self.spans.span_with_hop(
                    host.0,
                    SpanKind::Join,
                    format!("join {}", held.env.id),
                    sim.now(),
                    d_eff,
                    Some(hop),
                );
                self.busy_until[host.0] = sim.now() + d_eff;
            }
            self.hosts[host.0].processing = Some(held);
            sim.schedule_in(d_eff, RingEvent::JoinDone { host });
            return;
        }
    }

    // analyze: allow(panic, reason = "protocol invariant: host ids index per-ring tables sized at construction; the healing path is exercised exhaustively by the chaos and loom suites")
    fn on_join_done_fault(
        &mut self,
        sim: &mut Simulation<RingEvent<P>>,
        f: &mut FaultCtx<P>,
        host: HostId,
    ) {
        if f.crashed[host.0] {
            // The join died with the host; healing salvages its envelope.
            return;
        }
        let held = self.hosts[host.0]
            .processing
            .take()
            .expect("JoinDone without an envelope in processing");
        let state = &mut self.hosts[host.0];
        state.fragments_processed += 1;
        state.last_join_done = sim.now();
        f.last_progress = f.last_progress.max(sim.now());
        if held.pooled {
            state.pool_used -= 1;
            let prev = f.prev_alive(host);
            self.try_send_fault(sim, f, prev);
        }
        self.tracer.record(
            sim.now(),
            host,
            format!("processed {}, routing onward", held.env.id),
        );
        self.route_onward_fault(sim, f, host, held.env);
        self.try_start_join_fault(sim, f, host);
    }

    /// Retires a fully-visited envelope or queues it for the next hop.
    // analyze: allow(panic, reason = "protocol invariant: host ids index per-ring tables sized at construction; the healing path is exercised exhaustively by the chaos and loom suites")
    fn route_onward_fault(
        &mut self,
        sim: &mut Simulation<RingEvent<P>>,
        f: &mut FaultCtx<P>,
        host: HostId,
        env: Envelope<P>,
    ) {
        let id = env.id;
        if env.visited_all(f.full_mask) {
            self.tracer.record(sim.now(), host, format!("retired {id}"));
            if self.spans.is_enabled() {
                self.spans.event(
                    Some(host.0),
                    Track::Join,
                    format!("retired {id}"),
                    sim.now(),
                );
                self.spans.count(counter::FRAGMENTS_RETIRED, 1);
            }
            self.fragments_completed += 1;
            f.last_progress = f.last_progress.max(sim.now());
            return;
        }
        self.hosts[host.0].outgoing.push_back(env);
        self.try_send_fault(sim, f, host);
    }

    /// Fault-mode transmit: stop-and-wait per sender with the successor
    /// chosen through the healed routing table.
    // analyze: allow(panic, reason = "protocol invariant: host ids index per-ring tables sized at construction; the healing path is exercised exhaustively by the chaos and loom suites")
    fn try_send_fault(
        &mut self,
        sim: &mut Simulation<RingEvent<P>>,
        f: &mut FaultCtx<P>,
        host: HostId,
    ) {
        if self.config.hosts == 1 {
            return;
        }
        if f.crashed[host.0] || f.paused[host.0] {
            return;
        }
        if self.hosts[host.0].sending
            || f.awaiting[host.0].is_some()
            || self.hosts[host.0].outgoing.is_empty()
        {
            return;
        }
        let next = f.next_alive(host);
        if next == host {
            // Sole survivor: remaining rotation work loops back locally.
            while let Some(env) = self.hosts[host.0].outgoing.pop_front() {
                self.hosts[host.0]
                    .incoming
                    .push_back(Held { env, pooled: false });
            }
            self.try_start_join_fault(sim, f, host);
            return;
        }
        if self.hosts[next.0].pool_used >= self.config.buffers_per_host {
            // Blocked on the successor's receive pool. Probe it so a corpse
            // with a full pool is still detected (no data, no ack timeout).
            if f.probing[host.0].is_none() {
                f.probing[host.0] = Some((next, 1));
                sim.schedule_in(
                    self.config.ack_timeout,
                    RingEvent::ProbeTimeout {
                        from: host,
                        to: next,
                        attempt: 1,
                    },
                );
            }
            return;
        }
        f.probing[host.0] = None;
        let mut env = self.hosts[host.0]
            .outgoing
            .pop_front()
            .expect("checked non-empty");
        // Counted once per envelope here; each wire attempt (including
        // retransmissions) gets its own `Send` span in `transmit_attempt`.
        self.spans.count(counter::ENVELOPES_SENT, 1);
        self.hosts[next.0].pool_used += 1;
        let seq = f.next_seq;
        f.next_seq += 1;
        env.seq = seq;
        f.awaiting[host.0] = Some(seq);
        f.in_flight.insert(
            seq,
            InFlight {
                from: host,
                to: next,
                env,
                attempts: 1,
                maybe_live: false,
            },
        );
        self.transmit_attempt(sim, f, seq);
    }

    /// Puts one attempt of transfer `seq` on the wire, rolling the fault
    /// plan's dice for this `(link, seq, attempt)` tuple.
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn transmit_attempt(
        &mut self,
        sim: &mut Simulation<RingEvent<P>>,
        f: &mut FaultCtx<P>,
        seq: u64,
    ) {
        let (from, to, bytes, attempt) = {
            let e = f.in_flight.get(&seq).expect("transmit of unknown transfer");
            (e.from, e.to, e.env.bytes(), e.attempts)
        };
        let dropped = f.plan.should_drop(from, seq, attempt);
        let corrupt = !dropped && f.plan.should_corrupt(from, seq, attempt);
        let spike = f.plan.delay_spike(from, seq, attempt);
        let sent = {
            let e = f.in_flight.get_mut(&seq).expect("looked up above");
            e.maybe_live = !dropped && !corrupt && !f.crashed[to.0];
            let mut s = e.env.clone();
            if corrupt {
                // In-flight bit flips: the receiver's checksum verification
                // rejects the copy and withholds the ack.
                s.checksum = !s.checksum;
            }
            s
        };
        let mut pending_completion = None;
        let reservation = if let Some((rnic, qp, region)) = self.rnics[from.0].as_mut() {
            let wr = WorkRequest {
                wr_id: self.next_wr_id,
                region: region.id,
                bytes,
            };
            self.next_wr_id += 1;
            let link = self
                .network
                .outgoing_link_mut(from)
                .expect("multi-host ring has links");
            let outcome = qp.post_send(rnic, link, sim.now(), simnet::link::Direction::Forward, wr);
            self.hosts[from.0]
                .join_cpu
                .charge(CostCategory::Driver, outcome.post_cpu);
            pending_completion = Some(outcome.completion);
            outcome.reservation
        } else {
            let cost = self.config.transport.comm_cpu(self.config.cpu, bytes, 1);
            self.hosts[from.0].join_cpu.merge(&cost);
            self.network.reserve_hop(sim.now(), from, bytes)
        };
        self.hosts[from.0].sending = true;
        self.hosts[from.0].bytes_forwarded += bytes;
        self.tracer.record(
            sim.now(),
            from,
            format!("send {} ({} B) → {}", sent.id, bytes, to),
        );
        if self.spans.is_enabled() {
            self.spans.span(
                from.0,
                SpanKind::Send,
                format!("send {}", sent.id),
                sim.now(),
                reservation.wire_free.saturating_duration_since(sim.now()),
            );
        }
        sim.schedule_at(
            reservation.wire_free,
            RingEvent::SendDone {
                from,
                completion: pending_completion,
            },
        );
        if !dropped {
            sim.schedule_at(
                reservation.arrival + spike,
                RingEvent::Arrived { to, env: sent },
            );
        }
        let rto = self.config.ack_timeout * (1u64 << (attempt - 1).min(20));
        sim.schedule_in(rto, RingEvent::AckTimeout { seq, attempt });
    }

    /// A peer exhausted its retransmission budget against `dead`: bypass
    /// it, let its successor absorb the orphaned stationary partitions, and
    /// re-send every fragment copy lost in its buffers from the fragment's
    /// origin — mid-revolution ring healing.
    // analyze: allow(panic, reason = "protocol invariant: host ids index per-ring tables sized at construction; the healing path is exercised exhaustively by the chaos and loom suites")
    fn confirm_death(
        &mut self,
        sim: &mut Simulation<RingEvent<P>>,
        f: &mut FaultCtx<P>,
        dead: HostId,
    ) {
        if f.confirmed_dead[dead.0] {
            return;
        }
        assert!(
            f.crashed[dead.0],
            "retransmission budget exhausted against a live host — raise max_retransmits \
             or lower the corruption rate; the failure detector must not kill live hosts"
        );
        f.confirmed_dead[dead.0] = true;
        assert!(
            f.confirmed_dead.iter().any(|d| !d),
            "every host died — nothing left to heal the ring"
        );
        f.heal_events += 1;
        let crash_at = f
            .plan
            .crash_time(dead)
            .expect("confirmed host has a scheduled crash");
        let latency = sim.now().saturating_duration_since(crash_at);
        f.detection_latency = f.detection_latency.max(latency);
        self.tracer.record(
            sim.now(),
            dead,
            format!("confirmed dead ({latency} after crash); healing ring"),
        );
        if self.spans.is_enabled() {
            self.spans.event(
                None,
                Track::Control,
                format!("heal: host {} confirmed dead", dead.0),
                sim.now(),
            );
            self.spans.count(counter::HEAL_EVENTS, 1);
        }

        // 1. The ring successor absorbs the orphaned stationary partitions.
        let successor = f.next_alive(dead);
        let orphaned: Vec<usize> = std::mem::take(&mut f.roles[dead.0]);
        let mut absorb_cost = SimDuration::ZERO;
        for &r in &orphaned {
            absorb_cost += self.app.absorb(successor, HostId(r));
            f.roles[successor.0].push(r);
            self.tracer
                .record(sim.now(), successor, format!("absorbed role S{r}"));
        }
        if !orphaned.is_empty() {
            self.hosts[successor.0]
                .join_cpu
                .charge(CostCategory::Compute, absorb_cost);
            self.hosts[successor.0].join_busy += absorb_cost;
            if self.spans.is_enabled() {
                self.record_sync_gap(successor, sim.now());
                self.spans.span(
                    successor.0,
                    SpanKind::Absorb,
                    format!("absorb {} role(s) of host {}", orphaned.len(), dead.0),
                    sim.now(),
                    absorb_cost,
                );
                self.busy_until[successor.0] = sim.now() + absorb_cost;
            }
            f.absorbing[successor.0] = true;
            sim.schedule_in(absorb_cost, RingEvent::AbsorbDone { host: successor });
        }

        // 2. Salvage every fragment copy lost in the dead host's buffers.
        let mut lost: Vec<Envelope<P>> = Vec::new();
        let dead_state = &mut self.hosts[dead.0];
        lost.extend(dead_state.incoming.drain(..).map(|h| h.env));
        lost.extend(dead_state.processing.take().map(|h| h.env));
        lost.extend(dead_state.outgoing.drain(..));
        dead_state.pool_used = 0;
        dead_state.sending = false;
        f.awaiting[dead.0] = None;
        f.probing[dead.0] = None;

        // 3. Settle in-flight transfers touching the corpse: transfers *to*
        //    it reroute at their sender; transfers *from* it either survive
        //    at the receiver (only the ack back to the corpse was lost) or
        //    are genuinely gone and join the re-send set.
        let touching: Vec<u64> = f
            .in_flight
            .iter()
            .filter(|(_, e)| e.to == dead || e.from == dead)
            .map(|(s, _)| *s)
            .collect();
        for seq in touching {
            let entry = f.in_flight.remove(&seq).expect("listed above");
            if entry.to == dead {
                f.requeued.insert(seq);
                if f.awaiting[entry.from.0] == Some(seq) {
                    f.awaiting[entry.from.0] = None;
                }
                self.hosts[entry.from.0].outgoing.push_front(entry.env);
            } else if !entry.maybe_live {
                lost.push(entry.env);
            }
        }
        for env in lost {
            self.resend_from_origin(sim, f, env);
        }

        // 4. Kick every survivor: blocked transmitters now route around the
        //    corpse, and salvaged fragments may be waiting to be joined.
        for h in 0..self.config.hosts {
            if !f.confirmed_dead[h] && !f.crashed[h] {
                self.try_send_fault(sim, f, HostId(h));
                self.try_start_join_fault(sim, f, HostId(h));
            }
        }
    }

    /// Re-injects a fragment whose only live copy was lost with a dead
    /// host, from its origin (the fragment's home, which still holds it).
    // analyze: allow(panic, reason = "protocol invariant: host ids index per-ring tables sized at construction; the healing path is exercised exhaustively by the chaos and loom suites")
    fn resend_from_origin(
        &mut self,
        sim: &mut Simulation<RingEvent<P>>,
        f: &mut FaultCtx<P>,
        mut env: Envelope<P>,
    ) {
        if env.visited_all(f.full_mask) {
            // The dead host crashed between starting and finishing the last
            // join; the output is modeled as streamed at process time, so
            // the fragment simply retires.
            self.tracer.record(
                sim.now(),
                env.origin,
                format!("retired {} (salvaged)", env.id),
            );
            if self.spans.is_enabled() {
                self.spans.event(
                    Some(env.origin.0),
                    Track::Join,
                    format!("retired {} (salvaged)", env.id),
                    sim.now(),
                );
                self.spans.count(counter::FRAGMENTS_RETIRED, 1);
            }
            self.fragments_completed += 1;
            f.last_progress = f.last_progress.max(sim.now());
            return;
        }
        let target = f.inject_target(env.origin);
        env.seq = 0;
        f.fragments_resent += 1;
        self.tracer
            .record(sim.now(), target, format!("re-sent {} from origin", env.id));
        if self.spans.is_enabled() {
            self.spans.event(
                Some(target.0),
                Track::Control,
                format!("re-sent {} from origin", env.id),
                sim.now(),
            );
            self.spans.count(counter::FRAGMENTS_RESENT, 1);
        }
        if f.role_mask(target) & !env.visited != 0 {
            self.hosts[target.0]
                .incoming
                .push_back(Held { env, pooled: false });
            self.try_start_join_fault(sim, f, target);
        } else {
            self.hosts[target.0].outgoing.push_back(env);
            self.try_send_fault(sim, f, target);
        }
    }

    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn on_arrived(&mut self, sim: &mut Simulation<RingEvent<P>>, to: HostId, env: Envelope<P>) {
        // Receiver-side CPU cost of the transfer. For RDMA this is only
        // reaping the completion of the pre-posted receive; for TCP it is
        // the full copy/stack/interrupt bill.
        let cost = match self.config.transport {
            TransportModel::Rdma(cfg) => {
                let mut acc = CpuAccount::new();
                acc.charge(CostCategory::Driver, cfg.completion_overhead);
                acc
            }
            _ => self
                .config
                .transport
                .comm_cpu(self.config.cpu, env.bytes(), 1),
        };
        self.hosts[to.0].join_cpu.merge(&cost);
        self.tracer.record(
            sim.now(),
            to,
            format!("received {} ({} B)", env.id, env.bytes()),
        );
        if self.spans.is_enabled() {
            self.spans.event(
                Some(to.0),
                Track::Receiver,
                format!("recv {}", env.id),
                sim.now(),
            );
            self.spans.count(counter::ENVELOPES_RECEIVED, 1);
        }
        self.hosts[to.0]
            .incoming
            .push_back(Held { env, pooled: true });
        self.try_start_join(sim, to);
    }

    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn on_join_done(&mut self, sim: &mut Simulation<RingEvent<P>>, host: HostId) {
        let held = self.hosts[host.0]
            .processing
            .take()
            .expect("JoinDone without an envelope in processing");
        let state = &mut self.hosts[host.0];
        state.fragments_processed += 1;
        state.last_join_done = sim.now();
        if held.pooled {
            // The join entity is done reading the buffer element in place;
            // its receive credit returns and may unblock our predecessor.
            state.pool_used -= 1;
            let prev = self.network.prev(host);
            self.try_send(sim, prev);
        }
        let mut env = held.env;
        let id = env.id;
        if self.continuous {
            if self.app.finished() {
                self.tracer
                    .record(sim.now(), host, "application finished — stopping rotation");
                self.stopped = true;
                return;
            }
            // The hot set never retires: reset the hop budget and keep it
            // circulating (single-host "rings" just requeue locally).
            env.hops_remaining = self.config.hosts.max(2);
            if self.config.hosts == 1 {
                self.hosts[host.0]
                    .incoming
                    .push_back(Held { env, pooled: false });
            } else {
                self.hosts[host.0].outgoing.push_back(env);
                self.try_send(sim, host);
            }
        } else if env.consume_hop() {
            self.tracer
                .record(sim.now(), host, format!("processed {id}, queueing forward"));
            self.hosts[host.0].outgoing.push_back(env);
            self.try_send(sim, host);
        } else {
            self.tracer.record(sim.now(), host, format!("retired {id}"));
            if self.spans.is_enabled() {
                self.spans.event(
                    Some(host.0),
                    Track::Join,
                    format!("retired {id}"),
                    sim.now(),
                );
                self.spans.count(counter::FRAGMENTS_RETIRED, 1);
            }
            self.fragments_completed += 1;
        }
        self.try_start_join(sim, host);
    }

    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn on_send_done(
        &mut self,
        sim: &mut Simulation<RingEvent<P>>,
        from: HostId,
        completion: Option<Completion>,
    ) {
        self.hosts[from.0].sending = false;
        if let (Some(completion), Some((_, qp, _))) = (completion, self.rnics[from.0].as_mut()) {
            // Reap the send completion from the CQ — the signal that the
            // buffer element may be reused.
            qp.complete(completion);
            let reaped = qp.poll_cq();
            debug_assert_eq!(reaped.map(|c| c.wr_id), Some(completion.wr_id));
        }
        self.try_send(sim, from);
    }

    /// Starts the join entity on the next queued envelope, if idle.
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn try_start_join(&mut self, sim: &mut Simulation<RingEvent<P>>, host: HostId) {
        let state = &self.hosts[host.0];
        if state.setup_done.is_none() || state.processing.is_some() || state.incoming.is_empty() {
            return;
        }
        let held = self.hosts[host.0]
            .incoming
            .pop_front()
            .expect("checked non-empty");
        let d_base = self.app.process(host, sim.now(), &held.env.payload);
        let d_base = match &self.host_speed {
            Some(speed) => d_base * (1.0 / speed[host.0]),
            None => d_base,
        };
        let d_eff = self.effective_join_duration(d_base, held.env.bytes());
        let state = &mut self.hosts[host.0];
        state.join_cpu.charge(
            CostCategory::Compute,
            d_base * self.config.join_threads as u64,
        );
        state.join_busy += d_eff;
        self.tracer.record(
            sim.now(),
            host,
            format!("join start {} for {}", held.env.id, d_eff),
        );
        if self.spans.is_enabled() {
            self.record_sync_gap(host, sim.now());
            let hop = self.config.hosts.saturating_sub(held.env.hops_remaining);
            self.spans.span_with_hop(
                host.0,
                SpanKind::Join,
                format!("join {}", held.env.id),
                sim.now(),
                d_eff,
                Some(hop),
            );
            self.busy_until[host.0] = sim.now() + d_eff;
        }
        self.hosts[host.0].processing = Some(held);
        sim.schedule_in(d_eff, RingEvent::JoinDone { host });
    }

    /// Emits a `Sync` span covering the idle gap (if any) between the end
    /// of this host's previous busy interval and `now`. The gaps between
    /// consecutive joins partition the join window's non-busy time, so
    /// their sum reconciles with the `sync` phase of `RingMetrics`.
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn record_sync_gap(&mut self, host: HostId, now: SimTime) {
        let gap = now.saturating_duration_since(self.busy_until[host.0]);
        if gap > SimDuration::ZERO {
            self.spans
                .span(host.0, SpanKind::Sync, "sync", self.busy_until[host.0], gap);
        }
    }

    /// Applies the transport's interference model to a base join duration.
    fn effective_join_duration(&self, d_base: SimDuration, bytes: u64) -> SimDuration {
        let pollution = self.config.transport.pollution_factor();
        if self.config.transport.is_rdma() || self.config.hosts == 1 {
            return d_base;
        }
        // Per processed envelope the host both receives and sends one
        // envelope of comparable size.
        let comm_cpu = self
            .config
            .transport
            .comm_cpu(self.config.cpu, bytes, 1)
            .total_busy()
            * 2;
        let threads = self.config.join_threads as u64;
        let cores = self.config.cpu.cores as u64;
        let contended = (d_base * threads + comm_cpu) / cores;
        d_base.max(contended) * pollution
    }

    /// Forwards the next outgoing envelope if the transmitter is free and
    /// the successor has a free buffer element.
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn try_send(&mut self, sim: &mut Simulation<RingEvent<P>>, host: HostId) {
        if self.config.hosts == 1 {
            return;
        }
        let next = self.network.next(host);
        if self.hosts[host.0].sending
            || self.hosts[host.0].outgoing.is_empty()
            || self.hosts[next.0].pool_used >= self.config.buffers_per_host
        {
            return;
        }
        let env = self.hosts[host.0]
            .outgoing
            .pop_front()
            .expect("checked non-empty");
        let bytes = env.bytes();
        // Pre-post the receive buffer at the successor.
        self.hosts[next.0].pool_used += 1;
        let mut pending_completion = None;
        let reservation = if let Some((rnic, qp, region)) = self.rnics[host.0].as_mut() {
            // RDMA: post a work request against the registered region; the
            // RNIC moves the data autonomously. Host CPU pays only the
            // posting cost.
            let wr = WorkRequest {
                wr_id: self.next_wr_id,
                region: region.id,
                bytes,
            };
            self.next_wr_id += 1;
            let link = self
                .network
                .outgoing_link_mut(host)
                .expect("multi-host ring has links");
            let outcome = qp.post_send(rnic, link, sim.now(), simnet::link::Direction::Forward, wr);
            self.hosts[host.0]
                .join_cpu
                .charge(CostCategory::Driver, outcome.post_cpu);
            pending_completion = Some(outcome.completion);
            outcome.reservation
        } else {
            // Software TCP: the kernel does the moving; charge the full
            // per-byte CPU bill to the sender.
            let cost = self.config.transport.comm_cpu(self.config.cpu, bytes, 1);
            self.hosts[host.0].join_cpu.merge(&cost);
            self.network.reserve_hop(sim.now(), host, bytes)
        };
        self.hosts[host.0].sending = true;
        self.hosts[host.0].bytes_forwarded += bytes;
        self.tracer.record(
            sim.now(),
            host,
            format!("send {} ({} B) → {}", env.id, bytes, next),
        );
        if self.spans.is_enabled() {
            self.spans.span(
                host.0,
                SpanKind::Send,
                format!("send {}", env.id),
                sim.now(),
                reservation.wire_free.saturating_duration_since(sim.now()),
            );
            self.spans.count(counter::ENVELOPES_SENT, 1);
        }
        sim.schedule_at(
            reservation.wire_free,
            RingEvent::SendDone {
                from: host,
                completion: pending_completion,
            },
        );
        sim.schedule_at(reservation.arrival, RingEvent::Arrived { to: next, env });
    }

    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn finish(mut self) -> SimOutcome<A> {
        // Materialise the well-known counters so "observed zero" shows up
        // in exports even on runs that never exercised a protocol path.
        for name in [
            counter::ENVELOPES_SENT,
            counter::ENVELOPES_RECEIVED,
            counter::FRAGMENTS_RETIRED,
            counter::RETRANSMITS,
            counter::CHECKSUM_MISMATCHES,
            counter::HEAL_EVENTS,
            counter::FRAGMENTS_RESENT,
        ] {
            self.spans.count(name, 0);
        }
        let fault = self.fault.as_ref();
        let hosts: Vec<HostMetrics> = self
            .hosts
            .iter()
            .enumerate()
            .map(|(i, h)| {
                let setup_done = h.setup_done.unwrap_or(SimTime::ZERO);
                let window = h.last_join_done.saturating_duration_since(setup_done);
                HostMetrics {
                    setup: setup_done.saturating_duration_since(SimTime::ZERO),
                    join_busy: h.join_busy,
                    sync: window.saturating_sub(h.join_busy),
                    join_window: window,
                    cpu: h.join_cpu,
                    fragments_processed: h.fragments_processed,
                    bytes_forwarded: h.bytes_forwarded,
                    retransmits: fault.map_or(0, |f| f.retransmits[i]),
                    checksum_mismatches: fault.map_or(0, |f| f.checksum_mismatches[i]),
                }
            })
            .collect();
        let metrics = RingMetrics {
            hosts,
            wall_clock: self.wall_clock.saturating_duration_since(SimTime::ZERO),
            fragments_completed: self.fragments_completed,
            heal_events: fault.map_or(0, |f| f.heal_events),
            detection_latency: fault.map_or(SimDuration::ZERO, |f| f.detection_latency),
            fragments_resent: fault.map_or(0, |f| f.fragments_resent),
        };
        SimOutcome {
            metrics,
            app: self.app,
            trace: self.tracer,
            spans: self.spans,
        }
    }
}

/// Bandwidth helper re-exported for harness code that wants to express the
/// configured TCP cap.
pub fn tcp_wire_cap(config: &RingConfig) -> Bandwidth {
    effective_link(config).throughput().peak()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::FixedCostApp;

    fn payloads(hosts: usize, per_host: usize, bytes: usize) -> Vec<Vec<Vec<u8>>> {
        (0..hosts)
            .map(|_| (0..per_host).map(|_| vec![0u8; bytes]).collect())
            .collect()
    }

    fn small_config(hosts: usize) -> RingConfig {
        RingConfig::paper(hosts)
    }

    #[test]
    fn every_host_processes_every_fragment() {
        let hosts = 4;
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
        );
        let out = SimRing::new(small_config(hosts), payloads(hosts, 3, 1 << 20), app).run();
        assert_eq!(out.metrics.fragments_completed, 12);
        for h in &out.metrics.hosts {
            assert_eq!(h.fragments_processed, 12, "each host sees all fragments");
        }
        assert_eq!(out.app.processed, vec![12; hosts]);
    }

    #[test]
    fn single_host_ring_needs_no_network() {
        let app = FixedCostApp::new(1, SimDuration::from_millis(5), SimDuration::from_millis(10));
        let out = SimRing::new(small_config(1), payloads(1, 4, 1 << 20), app).run();
        assert_eq!(out.metrics.fragments_completed, 4);
        assert_eq!(out.metrics.hosts[0].bytes_forwarded, 0);
        // 5 ms setup + 4 × 10 ms joins.
        assert_eq!(out.metrics.wall_clock, SimDuration::from_millis(45));
        assert_eq!(out.metrics.sync_time(), SimDuration::ZERO);
    }

    #[test]
    fn communication_overlaps_computation_with_rdma() {
        // Joins slow enough to hide transfers: no sync time expected.
        let hosts = 3;
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_millis(50),
        );
        let out = SimRing::new(small_config(hosts), payloads(hosts, 2, 1 << 20), app).run();
        // A 1 MB transfer takes ~0.85 ms — far below the 50 ms join.
        let sync = out.metrics.sync_time();
        assert!(
            sync < SimDuration::from_millis(5),
            "sync should be hidden, got {sync}"
        );
    }

    #[test]
    fn fast_joins_expose_sync_time() {
        // Joins much faster than transfers: the join entity must wait.
        let hosts = 3;
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_micros(100),
        );
        let out = SimRing::new(small_config(hosts), payloads(hosts, 4, 16 << 20), app).run();
        // A 16 MB transfer takes ~13 ms; joins take 0.1 ms.
        let sync = out.metrics.sync_time();
        assert!(
            sync > SimDuration::from_millis(20),
            "transfers must dominate, got sync {sync}"
        );
    }

    #[test]
    fn tcp_runs_slower_than_rdma() {
        let hosts = 4;
        let mk_app = || {
            FixedCostApp::new(
                hosts,
                SimDuration::from_millis(1),
                SimDuration::from_millis(5),
            )
        };
        let rdma = SimRing::new(small_config(hosts), payloads(hosts, 3, 4 << 20), mk_app()).run();
        let tcp = SimRing::new(
            RingConfig::paper_tcp(hosts),
            payloads(hosts, 3, 4 << 20),
            mk_app(),
        )
        .run();
        assert!(
            tcp.metrics.join_time() > rdma.metrics.join_time(),
            "TCP join phase ({}) must exceed RDMA ({})",
            tcp.metrics.join_time(),
            rdma.metrics.join_time()
        );
    }

    #[test]
    fn tcp_charges_communication_cpu() {
        let hosts = 2;
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_millis(5),
        );
        let out = SimRing::new(
            RingConfig::paper_tcp(hosts),
            payloads(hosts, 2, 4 << 20),
            app,
        )
        .run();
        let copy = out.metrics.hosts[0].cpu.busy(CostCategory::DataCopy);
        assert!(copy > SimDuration::ZERO, "TCP must charge data-copy CPU");
        let rdma_out = SimRing::new(
            small_config(hosts),
            payloads(hosts, 2, 4 << 20),
            FixedCostApp::new(
                hosts,
                SimDuration::from_millis(1),
                SimDuration::from_millis(5),
            ),
        )
        .run();
        assert_eq!(
            rdma_out.metrics.hosts[0].cpu.busy(CostCategory::DataCopy),
            SimDuration::ZERO,
            "RDMA must not copy payload on the CPU"
        );
    }

    #[test]
    fn buffer_depth_one_still_completes() {
        let hosts = 3;
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
        );
        let cfg = small_config(hosts).with_buffers(1);
        let out = SimRing::new(cfg, payloads(hosts, 4, 1 << 20), app).run();
        assert_eq!(out.metrics.fragments_completed, 12);
    }

    #[test]
    fn deeper_buffers_reduce_sync() {
        let hosts = 4;
        let run = |buffers: usize| {
            let app = FixedCostApp::new(
                hosts,
                SimDuration::from_millis(1),
                SimDuration::from_millis(8),
            );
            let cfg = small_config(hosts).with_buffers(buffers);
            SimRing::new(cfg, payloads(hosts, 4, 8 << 20), app)
                .run()
                .metrics
        };
        let shallow = run(1);
        let deep = run(3);
        assert!(
            deep.join_time() <= shallow.join_time(),
            "deep buffers {} vs shallow {}",
            deep.join_time(),
            shallow.join_time()
        );
    }

    #[test]
    fn uneven_fragment_distribution_completes() {
        let hosts = 3;
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
        );
        let mut frags = payloads(hosts, 0, 0);
        frags[0] = (0..5).map(|_| vec![0u8; 1 << 20]).collect();
        let out = SimRing::new(small_config(hosts), frags, app).run();
        assert_eq!(out.metrics.fragments_completed, 5);
        for h in &out.metrics.hosts {
            assert_eq!(h.fragments_processed, 5);
        }
    }

    #[test]
    fn empty_run_finishes_after_setup() {
        let hosts = 2;
        let app = FixedCostApp::new(hosts, SimDuration::from_millis(3), SimDuration::ZERO);
        let out = SimRing::new(small_config(hosts), payloads(hosts, 0, 0), app).run();
        assert_eq!(out.metrics.fragments_completed, 0);
        assert_eq!(out.metrics.wall_clock, SimDuration::from_millis(3));
    }

    #[test]
    fn trace_records_the_protocol() {
        let hosts = 2;
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
        );
        let out = SimRing::new(small_config(hosts), payloads(hosts, 1, 1 << 20), app)
            .with_trace(true)
            .run();
        assert!(out.trace.matching("setup done").count() == 2);
        assert!(out.trace.matching("send").count() >= 1);
        assert!(out.trace.matching("retired").count() == 2);
    }

    #[test]
    fn determinism_same_inputs_same_schedule() {
        let hosts = 3;
        let run = || {
            let app = FixedCostApp::new(
                hosts,
                SimDuration::from_millis(1),
                SimDuration::from_millis(2),
            );
            SimRing::new(small_config(hosts), payloads(hosts, 3, 2 << 20), app)
                .run()
                .metrics
        };
        assert_eq!(run(), run());
    }

    /// App for continuous-mode tests: finishes after a target number of
    /// processed buffers.
    struct CountingApp {
        processed: usize,
        target: usize,
    }

    impl RingApp<Vec<u8>> for CountingApp {
        fn setup(&mut self, _host: HostId) -> SimDuration {
            SimDuration::from_micros(10)
        }

        fn process(
            &mut self,
            _host: HostId,
            _now: simnet::time::SimTime,
            _payload: &Vec<u8>,
        ) -> SimDuration {
            self.processed += 1;
            SimDuration::from_micros(50)
        }

        fn finished(&self) -> bool {
            self.processed >= self.target
        }
    }

    #[test]
    fn continuous_mode_circulates_past_one_revolution() {
        let hosts = 3;
        let per_host = 2;
        // One revolution = hosts × total fragments = 18 processings; ask
        // for several revolutions' worth.
        let target = hosts * hosts * per_host * 4;
        let app = CountingApp {
            processed: 0,
            target,
        };
        let out = SimRing::new(small_config(hosts), payloads(hosts, per_host, 4096), app)
            .continuous()
            .run();
        assert!(out.app.processed >= target);
        // Every host kept processing well beyond a single revolution.
        for h in &out.metrics.hosts {
            assert!(h.fragments_processed > hosts * per_host);
        }
    }

    #[test]
    fn continuous_mode_stops_promptly_when_finished() {
        let hosts = 2;
        let app = CountingApp {
            processed: 0,
            target: 1,
        };
        let out = SimRing::new(small_config(hosts), payloads(hosts, 3, 1024), app)
            .continuous()
            .run();
        // Stopped at (or just past) the first processed buffer.
        assert!(out.app.processed <= 2, "got {}", out.app.processed);
    }

    #[test]
    fn continuous_single_host_requeues_locally() {
        let app = CountingApp {
            processed: 0,
            target: 10,
        };
        let out = SimRing::new(small_config(1), payloads(1, 2, 1024), app)
            .continuous()
            .run();
        assert!(out.app.processed >= 10);
        assert_eq!(out.metrics.hosts[0].bytes_forwarded, 0);
    }

    #[test]
    #[should_panic(expected = "one fragment list per host")]
    fn fragment_list_shape_is_validated() {
        let app = FixedCostApp::new(2, SimDuration::ZERO, SimDuration::ZERO);
        let _ = SimRing::new(small_config(2), payloads(3, 1, 10), app);
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    use simnet::fault::FaultPlan;
    use simnet::time::SimTime;

    fn fixed_app(hosts: usize) -> FixedCostApp {
        FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
        )
    }

    #[test]
    fn quiet_plan_reports_zero_fault_counters() {
        let hosts = 4;
        let classic = SimRing::new(
            small_config(hosts),
            payloads(hosts, 3, 1 << 20),
            fixed_app(hosts),
        )
        .run();
        let reliable = SimRing::new(
            small_config(hosts),
            payloads(hosts, 3, 1 << 20),
            fixed_app(hosts),
        )
        .with_fault_plan(FaultPlan::seeded(9))
        .run();
        assert!(reliable.metrics.fault_free(), "{:?}", reliable.metrics);
        assert_eq!(reliable.metrics.fragments_completed, 12);
        assert_eq!(reliable.app.processed, classic.app.processed);
        // The acknowledged transport is stop-and-wait per hop; acks are tiny
        // backward-direction messages, so the slowdown stays marginal.
        let base = classic.metrics.wall_clock.as_secs_f64();
        let rel = reliable.metrics.wall_clock.as_secs_f64();
        assert!(
            rel <= base * 1.10,
            "quiet reliable transport must stay within 10% of classic: {rel} vs {base}"
        );
    }

    #[test]
    fn crash_mid_revolution_heals_and_completes() {
        let hosts = 4;
        let plan = FaultPlan::seeded(5).crash_host(HostId(2), SimTime::from_nanos(5_000_000));
        let cfg = small_config(hosts)
            .with_ack_timeout(SimDuration::from_millis(5))
            .with_max_retransmits(3);
        let out = SimRing::new(cfg, payloads(hosts, 2, 1 << 20), fixed_app(hosts))
            .with_fault_plan(plan)
            .with_trace(true)
            .run();
        // Every fragment still completes a logical full revolution: the
        // successor absorbed the dead host's role, and origin re-sends
        // replaced whatever died in H2's buffers.
        assert_eq!(
            out.metrics.fragments_completed, 8,
            "trace:\n{:?}",
            out.trace
        );
        assert_eq!(out.metrics.heal_events, 1);
        assert!(out.metrics.detection_latency > SimDuration::ZERO);
        assert!(
            out.metrics.total_retransmits() > 0,
            "death is detected via timeouts"
        );
        assert!(out.trace.matching("confirmed dead").count() >= 1);
        assert!(out.trace.matching("absorbed role").count() >= 1);
        assert!(out.metrics.hosts[2].fragments_processed < 8);
    }

    #[test]
    fn crash_is_deterministic() {
        let run = || {
            let hosts = 4;
            let plan = FaultPlan::seeded(5).crash_host(HostId(1), SimTime::from_nanos(4_000_000));
            let cfg = small_config(hosts)
                .with_ack_timeout(SimDuration::from_millis(5))
                .with_max_retransmits(3);
            SimRing::new(cfg, payloads(hosts, 2, 1 << 20), fixed_app(hosts))
                .with_fault_plan(plan)
                .run()
                .metrics
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn lossy_link_retransmits_until_delivery() {
        let hosts = 3;
        let plan = FaultPlan::seeded(42).lossy_link(HostId(0), 0.3);
        let cfg = small_config(hosts).with_ack_timeout(SimDuration::from_millis(5));
        let out = SimRing::new(cfg, payloads(hosts, 4, 1 << 20), fixed_app(hosts))
            .with_fault_plan(plan)
            .run();
        assert_eq!(out.metrics.fragments_completed, 12);
        assert_eq!(out.app.processed, vec![12; hosts]);
        assert!(out.metrics.hosts[0].retransmits > 0);
        assert_eq!(
            out.metrics.heal_events, 0,
            "losses alone must not kill hosts"
        );
    }

    #[test]
    fn corrupt_link_counts_mismatches_at_the_receiver() {
        let hosts = 3;
        let plan = FaultPlan::seeded(7).corrupt_link(HostId(1), 0.5);
        let cfg = small_config(hosts).with_ack_timeout(SimDuration::from_millis(5));
        let out = SimRing::new(cfg, payloads(hosts, 4, 1 << 20), fixed_app(hosts))
            .with_fault_plan(plan)
            .run();
        assert_eq!(out.metrics.fragments_completed, 12);
        assert!(
            out.metrics.hosts[2].checksum_mismatches > 0,
            "{:?}",
            out.metrics
        );
        assert!(out.metrics.hosts[1].retransmits > 0);
    }

    #[test]
    fn paused_host_backpressures_without_dying() {
        let hosts = 3;
        let plan = FaultPlan::seeded(0).pause_host(
            HostId(1),
            SimTime::from_nanos(2_000_000),
            SimDuration::from_millis(40),
        );
        let quiet = SimRing::new(
            small_config(hosts),
            payloads(hosts, 2, 1 << 20),
            fixed_app(hosts),
        )
        .with_fault_plan(FaultPlan::seeded(0))
        .run();
        let out = SimRing::new(
            small_config(hosts),
            payloads(hosts, 2, 1 << 20),
            fixed_app(hosts),
        )
        .with_fault_plan(plan)
        .with_trace(true)
        .run();
        assert_eq!(out.metrics.fragments_completed, 6);
        assert_eq!(out.app.processed, vec![6; hosts]);
        // The NIC keeps acknowledging while the software is frozen, so the
        // failure detector must not fire.
        assert_eq!(out.metrics.heal_events, 0);
        assert!(out.trace.matching("paused").count() >= 1);
        assert!(out.trace.matching("resumed").count() >= 1);
        assert!(
            out.metrics.wall_clock > quiet.metrics.wall_clock,
            "a 40 ms freeze must stretch the run: {} vs {}",
            out.metrics.wall_clock,
            quiet.metrics.wall_clock
        );
    }

    #[test]
    fn straggler_slowdown_stretches_the_join_phase() {
        let hosts = 3;
        let run = |plan: FaultPlan| {
            SimRing::new(
                small_config(hosts),
                payloads(hosts, 3, 1 << 20),
                fixed_app(hosts),
            )
            .with_fault_plan(plan)
            .run()
            .metrics
        };
        let quiet = run(FaultPlan::seeded(0));
        let slow = run(FaultPlan::seeded(0).slow_host(HostId(1), 0.25));
        assert_eq!(slow.fragments_completed, 9);
        assert!(
            slow.hosts[1].join_busy > quiet.hosts[1].join_busy,
            "a 4× straggler must be busy longer"
        );
        assert!(slow.wall_clock > quiet.wall_clock);
    }

    #[test]
    fn delay_spikes_are_absorbed() {
        let hosts = 3;
        let plan = FaultPlan::seeded(3).delay_spikes(HostId(0), 0.5, SimDuration::from_millis(1));
        let out = SimRing::new(
            small_config(hosts),
            payloads(hosts, 3, 1 << 20),
            fixed_app(hosts),
        )
        .with_fault_plan(plan)
        .run();
        assert_eq!(out.metrics.fragments_completed, 9);
        assert_eq!(out.app.processed, vec![9; hosts]);
    }

    #[test]
    #[should_panic(expected = "run-to-retirement")]
    fn continuous_mode_rejects_fault_plans() {
        let app = CountingApp {
            processed: 0,
            target: 5,
        };
        let _ = SimRing::new(small_config(2), payloads(2, 1, 1024), app)
            .continuous()
            .with_fault_plan(FaultPlan::seeded(0))
            .run();
    }

    #[test]
    #[should_panic(expected = "single-host ring")]
    fn single_host_crash_is_rejected() {
        let plan = FaultPlan::seeded(0).crash_host(HostId(0), SimTime::from_nanos(1));
        let _ = SimRing::new(small_config(1), payloads(1, 1, 1024), fixed_app(1))
            .with_fault_plan(plan)
            .run();
    }

    // ------------------------------------------------------------------
    // Structured span tracing
    // ------------------------------------------------------------------

    use simnet::span::{counter, SpanKind};

    #[test]
    fn traced_run_reconciles_spans_with_metrics() {
        let hosts = 3;
        let per_host = 2;
        let out = SimRing::new(
            small_config(hosts),
            payloads(hosts, per_host, 1 << 20),
            fixed_app(hosts),
        )
        .with_trace(true)
        .run();
        assert!(out.spans.is_enabled());
        // Span totals must reconcile *exactly*: both sides are bookkept in
        // virtual time from the same event sites.
        for (h, m) in out.metrics.hosts.iter().enumerate() {
            assert_eq!(
                out.spans.total(h, SpanKind::Setup),
                m.setup,
                "host {h} setup"
            );
            assert_eq!(out.spans.busy_total(h), m.join_busy, "host {h} join_busy");
            assert_eq!(out.spans.total(h, SpanKind::Sync), m.sync, "host {h} sync");
        }
        let c = out.spans.counters();
        assert_eq!(
            c.get(counter::FRAGMENTS_RETIRED) as usize,
            out.metrics.fragments_completed
        );
        // Every fragment crosses hosts-1 wires, each crossing received once.
        assert_eq!(
            c.get(counter::ENVELOPES_SENT) as usize,
            out.metrics.fragments_completed * (hosts - 1)
        );
        assert_eq!(
            c.get(counter::ENVELOPES_SENT),
            c.get(counter::ENVELOPES_RECEIVED)
        );
        assert_eq!(c.get(counter::RETRANSMITS), 0);
        assert_eq!(c.get(counter::HEAL_EVENTS), 0);
        // Every join span carries a hop annotation within the ring size.
        for s in out
            .spans
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Join)
        {
            assert!(
                matches!(s.hop, Some(h) if h < hosts),
                "join span without hop: {s:?}"
            );
        }
        let json = out.spans.to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn untraced_run_keeps_spans_disabled() {
        let hosts = 2;
        let out = SimRing::new(
            small_config(hosts),
            payloads(hosts, 1, 1 << 20),
            fixed_app(hosts),
        )
        .run();
        assert!(!out.spans.is_enabled());
        assert!(out.spans.spans().is_empty());
        assert!(out.spans.events().is_empty());
    }

    #[test]
    fn traced_lossy_run_reconciles_protocol_counters() {
        let hosts = 3;
        let plan = FaultPlan::seeded(42).lossy_link(HostId(0), 0.3);
        let cfg = small_config(hosts).with_ack_timeout(SimDuration::from_millis(5));
        let out = SimRing::new(cfg, payloads(hosts, 4, 1 << 20), fixed_app(hosts))
            .with_fault_plan(plan)
            .with_trace(true)
            .run();
        let c = out.spans.counters();
        assert_eq!(c.get(counter::RETRANSMITS), out.metrics.total_retransmits());
        assert!(c.get(counter::RETRANSMITS) > 0);
        assert!(out.spans.count_events("retransmit") > 0);
        assert_eq!(
            c.get(counter::FRAGMENTS_RETIRED) as usize,
            out.metrics.fragments_completed
        );
        // join_busy is incremented at the same sites that emit Join/Absorb
        // spans, so busy totals stay exact even under faults.
        for (h, m) in out.metrics.hosts.iter().enumerate() {
            assert_eq!(out.spans.busy_total(h), m.join_busy, "host {h} join_busy");
        }
    }

    #[test]
    fn traced_heal_run_records_absorb_and_heal_events() {
        let hosts = 4;
        let plan = FaultPlan::seeded(5).crash_host(HostId(2), SimTime::from_nanos(5_000_000));
        let cfg = small_config(hosts)
            .with_ack_timeout(SimDuration::from_millis(5))
            .with_max_retransmits(3);
        let out = SimRing::new(cfg, payloads(hosts, 2, 1 << 20), fixed_app(hosts))
            .with_fault_plan(plan)
            .with_trace(true)
            .run();
        let c = out.spans.counters();
        assert_eq!(
            c.get(counter::HEAL_EVENTS) as usize,
            out.metrics.heal_events
        );
        assert_eq!(
            c.get(counter::FRAGMENTS_RESENT) as usize,
            out.metrics.fragments_resent
        );
        assert!(out.spans.count_events("heal:") >= 1);
        // The successor's absorb shows up as an Absorb span (zero-duration
        // here: FixedCostApp absorbs for free), and its join_busy — which
        // includes the absorb cost — still reconciles.
        assert!(out
            .spans
            .spans()
            .iter()
            .any(|s| s.kind == SpanKind::Absorb && s.host == 3));
        for (h, m) in out.metrics.hosts.iter().enumerate() {
            assert_eq!(out.spans.busy_total(h), m.join_busy, "host {h} join_busy");
        }
    }
}
