//! The simulated ring backend: Data Roundabout inside a discrete-event
//! simulation.
//!
//! Every protocol decision — credit flow control, ack/retransmit ledger,
//! healing — lives in the sans-IO [`crate::protocol`] core. This file is
//! only the *driver*: it maps [`Output`]s onto `simnet` events, link and
//! RNIC reservations, CPU cost charges and trace spans, and feeds the
//! resulting observations back as [`Input`]s.
//!
//! Time and CPU model:
//!
//! * transfers occupy the hop link for their serialization time (chunk-size
//!   curve of Figure 5); software TCP is additionally capped by what one
//!   transmitter thread can push through the kernel (§V-G);
//! * per transferred envelope, the transport's CPU cost model charges both
//!   endpoints (Figure 3 categories);
//! * join durations come from the application; under TCP they are inflated
//!   by cache pollution and — when the join threads plus communication
//!   demand exceed the cores — by CPU contention:
//!   `d_eff = pollution × max(d, (threads·d + comm_cpu) / cores)`.
//!   Under RDMA, `d_eff = d`: the join "is never interrupted by the
//!   network".
//!
//! Output order is the protocol's contract: outputs are applied strictly
//! in emission order, which reproduces the event-scheduling sequence of
//! the pre-extraction backend — determinism tests pin this.

use simnet::cpu::{CostCategory, CpuAccount};
use simnet::engine::Simulation;
use simnet::fault::{FaultPlan, RescalePlan};
use simnet::link::Link;
use simnet::rnic::{Completion, MemoryRegion, QueuePair, Rnic, WorkRequest};
use simnet::span::{counter, SpanKind, SpanTracer, Track};
use simnet::throughput::{Bandwidth, ChunkThroughput};
use simnet::time::{SimDuration, SimTime};
use simnet::topology::{HostId, RingNetwork};
use simnet::trace::Tracer;
use simnet::transport::TransportModel;

use crate::app::RingApp;
use crate::config::RingConfig;
use crate::envelope::{Envelope, PayloadBytes};
use crate::metrics::{HostMetrics, RingMetrics};
use crate::protocol::{
    envelope_batches, query_batches, Input, Output, ProtocolConfig, RingProtocol, Timer,
};

/// Safety valve: no legitimate run needs more events than this per fragment
/// and host.
const EVENT_BUDGET_PER_UNIT: u64 = 64;

/// Event budget for continuous (Data Cyclotron) rotations, which end when
/// the application says so rather than when fragments retire.
const CONTINUOUS_EVENT_BUDGET: u64 = 50_000_000;

/// The reliable transport's fault path needs room for acks, timeouts,
/// retransmissions and probes on top of the classic event stream.
const FAULT_BUDGET_FACTOR: u64 = 8;
const FAULT_BUDGET_SLACK: u64 = 100_000;

/// Wire size of a per-hop acknowledgement (a control message riding the
/// backward direction of the full-duplex hop link).
const ACK_BYTES: u64 = 64;

/// The outcome of a simulated ring run.
#[derive(Debug)]
pub struct SimOutcome<A> {
    /// Timing and CPU metrics.
    pub metrics: RingMetrics,
    /// The application, with whatever state it accumulated.
    pub app: A,
    /// The event trace (empty unless tracing was enabled).
    pub trace: Tracer,
    /// Structured spans, instant events and counters (disabled unless
    /// tracing was enabled); exportable as Chrome trace-event JSON.
    pub spans: SpanTracer,
}

/// Per-host *driver* state: the timing/cost bookkeeping the metrics are
/// built from. Queues, credit and ledgers live in the protocol core.
#[derive(Debug)]
struct DriverHost {
    setup_done: Option<SimTime>,
    last_join_done: SimTime,
    join_busy: SimDuration,
    join_cpu: CpuAccount,
    bytes_forwarded: u64,
}

impl DriverHost {
    fn new() -> Self {
        DriverHost {
            setup_done: None,
            last_join_done: SimTime::ZERO,
            join_busy: SimDuration::ZERO,
            join_cpu: CpuAccount::new(),
            bytes_forwarded: 0,
        }
    }
}

enum RingEvent<P> {
    SetupDone {
        host: HostId,
    },
    JoinDone {
        host: HostId,
    },
    Arrived {
        to: HostId,
        env: Envelope<P>,
        /// Transfer id from the matching [`Output::Send`] (0 on the
        /// classic path, which has no ack ledger).
        tid: u64,
    },
    SendDone {
        from: HostId,
        completion: Option<Completion>,
    },
    /// The receiver's NIC acknowledged transfer `tid` (fault mode only).
    AckArrived {
        tid: u64,
    },
    /// The sender's retransmission timer for attempt `attempt` of transfer
    /// `tid` fired (stale if the transfer was acked or re-attempted since).
    AckTimeout {
        tid: u64,
        attempt: u32,
    },
    /// A sender blocked on its successor's full receive pool probes it.
    ProbeTimeout {
        from: HostId,
        to: HostId,
        attempt: u32,
    },
    /// Scheduled adversity from the fault plan.
    Crash {
        host: HostId,
    },
    Pause {
        host: HostId,
    },
    Resume {
        host: HostId,
    },
    /// The ring-healing successor finished rebuilding the absorbed
    /// stationary partitions and may join again. Also marks the end of a
    /// planned-handoff rebuild (the recipient side of [`Output::Handoff`]).
    AbsorbDone {
        host: HostId,
    },
    /// Scheduled membership change from the rescale plan.
    JoinRequest {
        host: HostId,
    },
    DrainRequest {
        host: HostId,
    },
    /// The drain deadline of attempt `attempt` fired (stale if the drain
    /// completed or was aborted since).
    DrainTimeout {
        host: HostId,
        attempt: u32,
    },
}

/// Multi-tenant submission list: `(tenant, per-host fragment lists)`
/// per query, in query-id order.
pub type QuerySpecs<P> = Vec<(u32, Vec<Vec<P>>)>;

/// A configured, ready-to-run simulated ring.
pub struct SimRing<P, A> {
    config: RingConfig,
    fragments: Vec<Vec<P>>,
    /// Multi-tenant mode: the submitted queries plus the admission
    /// bound. `fragments` stays empty in this mode.
    queries: Option<(QuerySpecs<P>, usize)>,
    app: A,
    trace: bool,
    continuous: bool,
    host_speed: Option<Vec<f64>>,
    fault_plan: Option<FaultPlan>,
    rescale_plan: Option<RescalePlan>,
}

impl<P: PayloadBytes + Clone, A: RingApp<P>> SimRing<P, A> {
    /// Prepares a run: `fragments[h]` are the local fragments host `h`
    /// contributes to the rotation.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `fragments.len()` differs
    /// from the configured host count.
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    pub fn new(config: RingConfig, fragments: Vec<Vec<P>>, app: A) -> Self {
        config.validate().expect("invalid ring configuration");
        assert_eq!(
            fragments.len(),
            config.hosts,
            "need one fragment list per host ({} hosts, {} lists)",
            config.hosts,
            fragments.len()
        );
        SimRing {
            config,
            fragments,
            queries: None,
            app,
            trace: false,
            continuous: false,
            host_speed: None,
            fault_plan: None,
            rescale_plan: None,
        }
    }

    /// Prepares a *multi-tenant* run: several queries multiplexed over one
    /// ring. `queries[q]` is `(tenant, fragments)` where `fragments[h]`
    /// are the local fragments host `h` contributes to query `q`; at most
    /// `max_active` queries circulate concurrently, the rest wait in the
    /// admission queue. Multi-tenant rotation always runs the reliable
    /// transport (a quiet fault plan is synthesized when none is
    /// attached), so per-query exactly-once delivery holds even when no
    /// adversity is scheduled.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, any query's fragment list
    /// count differs from the host count, `queries` is empty or
    /// `max_active` is zero (checks shared with [`RingProtocol::new_multi`]).
    // analyze: allow(panic, reason = "construction-time shape checks, mirroring SimRing::new")
    pub fn new_queries(
        config: RingConfig,
        queries: QuerySpecs<P>,
        max_active: usize,
        app: A,
    ) -> Self {
        config.validate().expect("invalid ring configuration");
        assert!(!queries.is_empty(), "a multi-tenant ring needs queries");
        for (q, (_, fragments)) in queries.iter().enumerate() {
            assert_eq!(
                fragments.len(),
                config.hosts,
                "query {q} needs one fragment list per host ({} hosts, {} lists)",
                config.hosts,
                fragments.len()
            );
        }
        SimRing {
            config,
            fragments: Vec::new(),
            queries: Some((queries, max_active)),
            app,
            trace: false,
            continuous: false,
            host_speed: None,
            fault_plan: None,
            rescale_plan: None,
        }
    }

    /// Attaches a deterministic [`FaultPlan`] and switches the transport
    /// into its reliable mode: sequence-numbered, checksummed envelopes
    /// with per-hop acknowledgement, timeout-driven retransmission with
    /// bounded exponential backoff, and mid-revolution ring healing when a
    /// host's death is confirmed. Attaching even a quiet plan changes the
    /// protocol (acks flow); omitting the plan keeps the classic path
    /// byte-identical to the unreliable backend.
    ///
    /// # Panics
    ///
    /// `run` panics if the plan is combined with continuous rotation, if a
    /// crash is scheduled on a single-host ring (there is nobody left to
    /// heal), or if the ring has more than 64 hosts (the exactly-once
    /// ledger is a 64-bit role bitmask).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Attaches a planned [`RescalePlan`]: standby hosts joining the ring
    /// and members draining out mid-workload, with the stationary roles
    /// repartitioned by rendezvous hashing at each transition. Hosts with
    /// a scheduled join start as provisioned standbys *outside* the ring
    /// and must contribute no fragments. Attaching a rescale plan switches
    /// the transport into its reliable mode (handoff completions ride the
    /// acked hop protocol) even without a fault plan.
    ///
    /// # Panics
    ///
    /// `run` panics if the plan is combined with continuous rotation, if
    /// the ring has more than 64 hosts, or if a scheduled join host
    /// contributes fragments.
    pub fn with_rescale_plan(mut self, plan: RescalePlan) -> Self {
        self.rescale_plan = Some(plan);
        self
    }

    /// Makes hosts heterogeneous: host `h`'s join durations are divided by
    /// `speed[h]` (1.0 = nominal, 0.5 = half speed). The paper's §V-D
    /// observes that "the ring buffer mechanism of Data Roundabout
    /// balances differences in the execution speeds of the participating
    /// hosts" — this knob lets benchmarks inject exactly such differences.
    ///
    /// # Panics
    ///
    /// `run` panics if the vector length differs from the host count or
    /// any factor is not finite and positive.
    pub fn with_host_speeds(mut self, speed: Vec<f64>) -> Self {
        self.host_speed = Some(speed);
        self
    }

    /// Enables event tracing for this run.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Switches to *continuous* rotation — the Data Cyclotron mode:
    /// envelopes never retire (they keep circulating after a full
    /// revolution) and the run ends when the application's
    /// [`RingApp::finished`] hook returns `true`.
    ///
    /// # Panics
    ///
    /// `run` panics if the app never finishes within the event budget —
    /// a safety valve against rotations that spin forever.
    pub fn continuous(mut self) -> Self {
        self.continuous = true;
        self
    }

    /// Runs the ring to quiescence and returns metrics, app and trace.
    ///
    /// # Panics
    ///
    /// Panics if the run ends with unfinished fragments (which would mean
    /// a flow-control deadlock — a bug, not a configuration problem).
    pub fn run(self) -> SimOutcome<A> {
        Runner::new(self).run()
    }
}

/// The effective hop link: RDMA runs at the RNIC-saturated goodput curve;
/// software TCP is capped by its transmitter thread's per-core rate.
fn effective_link(config: &RingConfig) -> Link {
    let peak = match config.transport {
        TransportModel::Rdma(_) => config.link_bandwidth,
        TransportModel::KernelTcp(m) | TransportModel::Toe(m) => {
            let cpu_cap = m.per_core_rate(config.cpu);
            if cpu_cap.bytes_per_sec() < config.link_bandwidth.bytes_per_sec() {
                cpu_cap
            } else {
                config.link_bandwidth
            }
        }
    };
    Link::new(
        ChunkThroughput::new(peak, config.per_message_overhead),
        config.link_latency,
    )
}

struct Runner<P, A> {
    config: RingConfig,
    app: A,
    continuous: bool,
    stopped: bool,
    network: RingNetwork,
    /// The shared sans-IO protocol core — every queue, credit and ledger
    /// decision is its.
    proto: RingProtocol<P>,
    hosts: Vec<DriverHost>,
    /// Per-host RNIC state (RDMA transport only): the NIC, its send queue
    /// pair, and the registered region backing the ring-buffer pool.
    /// Transfers are posted as work requests against the registered
    /// region, exactly as on real hardware; the registration *cost* is
    /// charged by the application layer during setup (it owns the
    /// setup-phase accounting).
    rnics: Vec<Option<(Rnic, QueuePair, MemoryRegion)>>,
    host_speed: Option<Vec<f64>>,
    next_wr_id: u64,
    wall_clock: SimTime,
    tracer: Tracer,
    spans: SpanTracer,
    /// Per-host end of the last busy interval (join or absorb), used only
    /// for emitting `Sync` spans: the gap from here to the next join start
    /// is exactly the idle time `RingMetrics` reports as `sync`.
    busy_until: Vec<SimTime>,
    /// The medium's dice (loss, corruption, spikes, crash schedule). The
    /// protocol core never sees these; it learns each attempt's fate via
    /// [`RingProtocol::attempt_fate`]. A rescale plan without a fault plan
    /// synthesizes a quiet plan here, because rescale rides the reliable
    /// transport.
    fault_plan: Option<FaultPlan>,
    /// The planned membership schedule (joins and drains pinned to
    /// virtual instants).
    rescale_plan: Option<RescalePlan>,
    detection_latency: SimDuration,
    /// Last instant of real progress (setup, join, retirement, absorb) —
    /// the fault-mode wall clock, so trailing ack chatter does not pad the
    /// reported runtime.
    last_progress: SimTime,
}

impl<P: PayloadBytes + Clone, A: RingApp<P>> Runner<P, A> {
    fn new(ring: SimRing<P, A>) -> Self {
        let n = ring.config.hosts;
        if let Some(speed) = &ring.host_speed {
            assert_eq!(speed.len(), n, "need one speed factor per host");
            assert!(
                speed.iter().all(|s| s.is_finite() && *s > 0.0),
                "host speed factors must be finite and positive"
            );
        }
        if let Some(plan) = &ring.fault_plan {
            assert!(
                !ring.continuous,
                "fault injection requires run-to-retirement mode, not continuous rotation"
            );
            assert!(
                n <= 64,
                "the exactly-once role bitmask supports at most 64 hosts"
            );
            assert!(
                n > 1 || plan.crashes().is_empty(),
                "cannot heal a single-host ring around a crash"
            );
        }
        let standby = match &ring.rescale_plan {
            Some(plan) => {
                assert!(
                    !ring.continuous,
                    "rescale requires run-to-retirement mode, not continuous rotation"
                );
                assert!(
                    n <= 64,
                    "the exactly-once role bitmask supports at most 64 hosts"
                );
                for j in plan.joins() {
                    assert!(j.host.0 < n, "join host {} outside the ring", j.host.0);
                    assert!(
                        ring.fragments.get(j.host.0).is_none_or(Vec::is_empty),
                        "standby host {} must not contribute fragments before joining",
                        j.host.0
                    );
                }
                for d in plan.drains() {
                    assert!(d.host.0 < n, "drain host {} outside the ring", d.host.0);
                }
                plan.standby_mask()
            }
            None => 0,
        };
        // Rescale rides the reliable transport: without explicit adversity
        // the medium still needs (quiet) dice and the acked hop protocol.
        let fault_plan = ring
            .fault_plan
            .or_else(|| {
                ring.rescale_plan
                    .as_ref()
                    .map(|p| FaultPlan::seeded(p.seed()))
            })
            // Multi-tenant rotation rides the reliable transport even
            // without scheduled adversity: the per-query exactly-once
            // ledger needs the acked hop protocol.
            .or_else(|| ring.queries.as_ref().map(|_| FaultPlan::seeded(0)));
        let network = RingNetwork::new(n, effective_link(&ring.config));
        let max_fragment_bytes = ring
            .fragments
            .iter()
            .chain(
                ring.queries
                    .iter()
                    .flat_map(|(qs, _)| qs.iter().flat_map(|(_, fragments)| fragments.iter())),
            )
            .flat_map(|f| f.iter())
            .map(PayloadBytes::payload_bytes)
            .max()
            .unwrap_or(0)
            .max(1);
        let rnics: Vec<Option<(Rnic, QueuePair, MemoryRegion)>> = (0..n)
            .map(|_| match ring.config.transport {
                TransportModel::Rdma(cfg) => {
                    let mut rnic = Rnic::new(cfg);
                    let (region, _cost) = rnic.register(
                        SimTime::ZERO,
                        max_fragment_bytes * ring.config.buffers_per_host as u64,
                    );
                    Some((rnic, QueuePair::new(), region))
                }
                _ => None,
            })
            .collect();
        let proto_cfg = ProtocolConfig {
            hosts: n,
            buffers_per_host: ring.config.buffers_per_host,
            max_retransmits: ring.config.max_retransmits,
            continuous: ring.continuous,
            reliable: fault_plan.is_some(),
            standby,
        };
        let proto = match ring.queries {
            Some((queries, max_active)) => {
                RingProtocol::new_multi(proto_cfg, query_batches(queries, n), max_active)
            }
            None => RingProtocol::new(proto_cfg, envelope_batches(ring.fragments, n)),
        };
        Runner {
            config: ring.config,
            app: ring.app,
            continuous: ring.continuous,
            stopped: false,
            network,
            proto,
            hosts: (0..n).map(|_| DriverHost::new()).collect(),
            rnics,
            host_speed: ring.host_speed,
            next_wr_id: 0,
            wall_clock: SimTime::ZERO,
            tracer: if ring.trace {
                Tracer::enabled()
            } else {
                Tracer::disabled()
            },
            spans: if ring.trace {
                SpanTracer::enabled()
            } else {
                SpanTracer::disabled()
            },
            busy_until: vec![SimTime::ZERO; n],
            fault_plan,
            rescale_plan: ring.rescale_plan,
            detection_latency: SimDuration::ZERO,
            last_progress: SimTime::ZERO,
        }
    }

    fn run(mut self) -> SimOutcome<A> {
        let mut budget = if self.continuous {
            // Continuous rotations are open-ended; give them a generous
            // but finite budget so a never-finishing app fails loudly.
            CONTINUOUS_EVENT_BUDGET
        } else {
            EVENT_BUDGET_PER_UNIT
                * (self.proto.fragments_total() as u64 + 1)
                * (self.config.hosts as u64 + 1)
        };
        if self.fault_plan.is_some() {
            budget = budget * FAULT_BUDGET_FACTOR + FAULT_BUDGET_SLACK;
        }
        let mut sim: Simulation<RingEvent<P>> = Simulation::new().with_event_limit(budget);
        for h in 0..self.config.hosts {
            let d = self.app.setup(HostId(h));
            sim.schedule_in(d, RingEvent::SetupDone { host: HostId(h) });
        }
        if let Some(plan) = &self.fault_plan {
            for c in plan.crashes() {
                sim.schedule_at(c.at, RingEvent::Crash { host: c.host });
            }
            for p in plan.pauses() {
                sim.schedule_at(p.at, RingEvent::Pause { host: p.host });
                sim.schedule_at(p.at + p.duration, RingEvent::Resume { host: p.host });
            }
        }
        if let Some(plan) = &self.rescale_plan {
            for j in plan.joins() {
                sim.schedule_at(j.at, RingEvent::JoinRequest { host: j.host });
            }
            for d in plan.drains() {
                sim.schedule_at(d.at, RingEvent::DrainRequest { host: d.host });
            }
        }
        while let Some(ev) = sim.step() {
            self.handle(&mut sim, ev);
            if self.stopped {
                break;
            }
        }
        self.wall_clock = if self.fault_plan.is_some() {
            // Trailing ack/timeout chatter after the last retirement must
            // not pad the reported runtime.
            self.last_progress
        } else {
            sim.now()
        };
        if self.continuous {
            assert!(
                self.stopped || self.proto.fragments_total() == 0,
                "continuous rotation drained its event queue without the app                  declaring itself finished — the ring stalled"
            );
        } else {
            assert_eq!(
                self.proto.fragments_completed(),
                self.proto.fragments_total(),
                "ring run quiesced with unfinished fragments — flow-control deadlock"
            );
        }
        self.finish()
    }

    /// Translates one simulation event into a protocol [`Input`], doing
    /// the driver-side bookkeeping (timing, traces) the protocol cannot.
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn handle(&mut self, sim: &mut Simulation<RingEvent<P>>, ev: RingEvent<P>) {
        match ev {
            RingEvent::SetupDone { host } => {
                if self.proto.is_crashed(host) {
                    return;
                }
                self.hosts[host.0].setup_done = Some(sim.now());
                self.hosts[host.0].last_join_done = sim.now();
                self.busy_until[host.0] = sim.now();
                self.last_progress = self.last_progress.max(sim.now());
                self.tracer.record(sim.now(), host, "setup done");
                self.spans.span(
                    host.0,
                    SpanKind::Setup,
                    "setup",
                    SimTime::ZERO,
                    sim.now().saturating_duration_since(SimTime::ZERO),
                );
                let out = self.proto.input(Input::SetupDone { host });
                self.apply(sim, out);
            }
            RingEvent::JoinDone { host } => {
                if self.proto.is_crashed(host) {
                    // The join died with the host; healing salvages its
                    // envelope.
                    return;
                }
                self.hosts[host.0].last_join_done = sim.now();
                self.last_progress = self.last_progress.max(sim.now());
                // The protocol cannot call the application: sample the
                // continuous-mode finish flag here and pass it in.
                let app_finished = self.continuous && self.app.finished();
                let out = self.proto.input(Input::JoinDone { host, app_finished });
                self.apply(sim, out);
            }
            RingEvent::Arrived { to, env, tid } => {
                let out = self.proto.input(Input::Delivered { to, env, tid });
                self.apply(sim, out);
            }
            RingEvent::SendDone { from, completion } => {
                if let (Some(c), Some((_, qp, _))) = (completion, self.rnics[from.0].as_mut()) {
                    // Reap the send completion from the CQ — the signal
                    // that the buffer element may be reused.
                    qp.complete(c);
                    let reaped = qp.poll_cq();
                    if self.fault_plan.is_none() {
                        // Classic path: completions pair strictly with
                        // posts. Retransmissions can leave several queued,
                        // so the reliable path reaps leniently instead.
                        debug_assert_eq!(reaped.map(|r| r.wr_id), Some(c.wr_id));
                    }
                }
                let out = self.proto.input(Input::SendDone { from });
                self.apply(sim, out);
            }
            RingEvent::AckArrived { tid } => {
                let out = self.proto.input(Input::Ack { tid });
                self.apply(sim, out);
            }
            RingEvent::AckTimeout { tid, attempt } => {
                let out = self.proto.input(Input::Tick {
                    timer: Timer::Retransmit { tid, attempt },
                });
                self.apply(sim, out);
            }
            RingEvent::ProbeTimeout { from, to, attempt } => {
                let out = self.proto.input(Input::Tick {
                    timer: Timer::Probe { from, to, attempt },
                });
                self.apply(sim, out);
            }
            RingEvent::Crash { host } => {
                if self.proto.is_crashed(host) {
                    return;
                }
                let out = self.proto.input(Input::PeerDead { host });
                self.tracer.record(sim.now(), host, "crashed");
                self.spans
                    .event(Some(host.0), Track::Control, "crashed", sim.now());
                self.apply(sim, out);
            }
            RingEvent::Pause { host } => {
                if self.proto.is_crashed(host) {
                    return;
                }
                let out = self.proto.input(Input::Paused { host });
                self.tracer.record(sim.now(), host, "paused");
                self.spans
                    .event(Some(host.0), Track::Control, "paused", sim.now());
                self.apply(sim, out);
            }
            RingEvent::Resume { host } => {
                if self.proto.is_crashed(host) {
                    return;
                }
                self.tracer.record(sim.now(), host, "resumed");
                self.spans
                    .event(Some(host.0), Track::Control, "resumed", sim.now());
                let out = self.proto.input(Input::Resumed { host });
                self.apply(sim, out);
            }
            RingEvent::AbsorbDone { host } => {
                if self.proto.is_crashed(host) {
                    return;
                }
                self.last_progress = self.last_progress.max(sim.now());
                self.tracer.record(sim.now(), host, "absorb complete");
                let out = self.proto.input(Input::AbsorbDone { host });
                self.apply(sim, out);
            }
            RingEvent::JoinRequest { host } => {
                if self.proto.is_crashed(host) {
                    return;
                }
                self.tracer.record(sim.now(), host, "join requested");
                self.spans
                    .event(Some(host.0), Track::Control, "join requested", sim.now());
                let out = self.proto.input(Input::JoinRequest { host });
                self.apply(sim, out);
            }
            RingEvent::DrainRequest { host } => {
                if self.proto.is_crashed(host) {
                    return;
                }
                self.tracer.record(sim.now(), host, "drain requested");
                self.spans
                    .event(Some(host.0), Track::Control, "drain requested", sim.now());
                let out = self.proto.input(Input::DrainRequest { host });
                self.apply(sim, out);
            }
            RingEvent::DrainTimeout { host, attempt } => {
                let out = self.proto.input(Input::Tick {
                    timer: Timer::DrainDeadline { host, attempt },
                });
                self.apply(sim, out);
            }
        }
    }

    /// Applies protocol outputs strictly in emission order. Each output
    /// maps onto simulation events, link/RNIC reservations, cost charges
    /// and traces — all the IO the protocol core abstained from.
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it; Teardown reasons surface as panics by the driver contract")
    fn apply(&mut self, sim: &mut Simulation<RingEvent<P>>, outputs: Vec<Output<P>>) {
        for output in outputs {
            match output {
                Output::StartJoin {
                    host,
                    id,
                    hop,
                    roles,
                    bytes,
                } => {
                    let d_base = {
                        let query = self.proto.processing_query(host);
                        let multi = self.proto.query_ledger().is_some();
                        let payload = self
                            .proto
                            .processing_payload(host)
                            .expect("StartJoin with an empty processing slot");
                        match &roles {
                            Some(rs) if multi => {
                                self.app.process_query(host, query, rs, sim.now(), payload)
                            }
                            Some(rs) => self.app.process_roles(host, rs, sim.now(), payload),
                            None => self.app.process(host, sim.now(), payload),
                        }
                    };
                    let d_base = match &self.host_speed {
                        Some(speed) => d_base * (1.0 / speed[host.0]),
                        None => d_base,
                    };
                    let d_base = match &self.fault_plan {
                        Some(plan) => {
                            let slowdown = plan.slowdown(host);
                            if slowdown == 1.0 {
                                d_base
                            } else {
                                d_base * (1.0 / slowdown)
                            }
                        }
                        None => d_base,
                    };
                    let d_eff = self.effective_join_duration(d_base, bytes);
                    let state = &mut self.hosts[host.0];
                    state.join_cpu.charge(
                        CostCategory::Compute,
                        d_base * self.config.join_threads as u64,
                    );
                    state.join_busy += d_eff;
                    self.tracer
                        .record(sim.now(), host, format!("join start {id} for {d_eff}"));
                    if self.spans.is_enabled() {
                        self.record_sync_gap(host, sim.now());
                        self.spans.span_with_hop(
                            host.0,
                            SpanKind::Join,
                            format!("join {id}"),
                            sim.now(),
                            d_eff,
                            Some(hop),
                        );
                        self.busy_until[host.0] = sim.now() + d_eff;
                    }
                    sim.schedule_in(d_eff, RingEvent::JoinDone { host });
                }
                Output::PassThrough { host, id } => {
                    self.tracer
                        .record(sim.now(), host, format!("pass-through {id}"));
                    if self.spans.is_enabled() {
                        self.spans.event(
                            Some(host.0),
                            Track::Join,
                            format!("pass-through {id}"),
                            sim.now(),
                        );
                    }
                }
                Output::Processed { host, id } => {
                    let msg = if self.fault_plan.is_some() {
                        format!("processed {id}, routing onward")
                    } else {
                        format!("processed {id}, queueing forward")
                    };
                    self.tracer.record(sim.now(), host, msg);
                }
                Output::Send {
                    from,
                    to,
                    tid,
                    attempt,
                    env,
                } => self.apply_send(sim, from, to, tid, attempt, env),
                Output::Ack { to, tid } => {
                    // Ack at NIC level on the backward channel of the
                    // sender's link, so acks never contend with payload.
                    let ack = self.network.reserve_hop_back(sim.now(), to, ACK_BYTES);
                    sim.schedule_at(ack.arrival, RingEvent::AckArrived { tid });
                }
                Output::ArmTimer { timer, backoff_exp } => {
                    let delay = self.config.ack_timeout * (1u64 << backoff_exp);
                    let ev = match timer {
                        Timer::Retransmit { tid, attempt } => {
                            RingEvent::AckTimeout { tid, attempt }
                        }
                        Timer::Probe { from, to, attempt } => {
                            RingEvent::ProbeTimeout { from, to, attempt }
                        }
                        Timer::DrainDeadline { host, attempt } => {
                            RingEvent::DrainTimeout { host, attempt }
                        }
                    };
                    sim.schedule_in(delay, ev);
                }
                Output::Delivered { host, id, bytes } => {
                    // Receiver-side CPU cost of the transfer. For RDMA this
                    // is only reaping the completion of the pre-posted
                    // receive; for TCP it is the full copy/stack/interrupt
                    // bill.
                    let cost = match self.config.transport {
                        TransportModel::Rdma(cfg) => {
                            let mut acc = CpuAccount::new();
                            acc.charge(CostCategory::Driver, cfg.completion_overhead);
                            acc
                        }
                        _ => self.config.transport.comm_cpu(self.config.cpu, bytes, 1),
                    };
                    self.hosts[host.0].join_cpu.merge(&cost);
                    self.tracer
                        .record(sim.now(), host, format!("received {id} ({bytes} B)"));
                    if self.spans.is_enabled() {
                        self.spans.event(
                            Some(host.0),
                            Track::Receiver,
                            format!("recv {id}"),
                            sim.now(),
                        );
                        self.spans.count(counter::ENVELOPES_RECEIVED, 1);
                    }
                }
                Output::DuplicateDropped { host, id } => {
                    self.tracer
                        .record(sim.now(), host, format!("duplicate {id} dropped"));
                }
                Output::ChecksumMismatch { host, id } => {
                    self.tracer
                        .record(sim.now(), host, format!("checksum mismatch on {id}"));
                    if self.spans.is_enabled() {
                        self.spans.event(
                            Some(host.0),
                            Track::Receiver,
                            format!("checksum mismatch {id}"),
                            sim.now(),
                        );
                        self.spans.count(counter::CHECKSUM_MISMATCHES, 1);
                    }
                }
                Output::Retire { host, id, salvaged } => {
                    let msg = if salvaged {
                        format!("retired {id} (salvaged)")
                    } else {
                        format!("retired {id}")
                    };
                    self.tracer.record(sim.now(), host, msg.clone());
                    if self.spans.is_enabled() {
                        self.spans.event(Some(host.0), Track::Join, msg, sim.now());
                        self.spans.count(counter::FRAGMENTS_RETIRED, 1);
                    }
                    self.last_progress = self.last_progress.max(sim.now());
                }
                Output::Heal { dead } => {
                    // An escalated drain heals a host with no scheduled
                    // crash: the drain deadline, not a detection timeout,
                    // triggered this heal, so no latency is attributable.
                    let latency = match self.fault_plan.as_ref().and_then(|p| p.crash_time(dead)) {
                        Some(crash_at) => sim.now().saturating_duration_since(crash_at),
                        None => SimDuration::ZERO,
                    };
                    self.detection_latency = self.detection_latency.max(latency);
                    self.tracer.record(
                        sim.now(),
                        dead,
                        format!("confirmed dead ({latency} after crash); healing ring"),
                    );
                    if self.spans.is_enabled() {
                        self.spans.event(
                            None,
                            Track::Control,
                            format!("heal: host {} confirmed dead", dead.0),
                            sim.now(),
                        );
                        self.spans.count(counter::HEAL_EVENTS, 1);
                    }
                }
                Output::Absorb {
                    survivor,
                    dead,
                    roles,
                } => {
                    let mut absorb_cost = SimDuration::ZERO;
                    for &r in &roles {
                        absorb_cost += self.app.absorb(survivor, HostId(r));
                        self.tracer
                            .record(sim.now(), survivor, format!("absorbed role S{r}"));
                    }
                    let state = &mut self.hosts[survivor.0];
                    state.join_cpu.charge(CostCategory::Compute, absorb_cost);
                    state.join_busy += absorb_cost;
                    if self.spans.is_enabled() {
                        self.record_sync_gap(survivor, sim.now());
                        self.spans.span(
                            survivor.0,
                            SpanKind::Absorb,
                            format!("absorb {} role(s) of host {}", roles.len(), dead.0),
                            sim.now(),
                            absorb_cost,
                        );
                        self.busy_until[survivor.0] = sim.now() + absorb_cost;
                    }
                    sim.schedule_in(absorb_cost, RingEvent::AbsorbDone { host: survivor });
                }
                Output::Activate { host, epoch } => {
                    self.last_progress = self.last_progress.max(sim.now());
                    self.tracer
                        .record(sim.now(), host, format!("activated (epoch {epoch})"));
                    if self.spans.is_enabled() {
                        self.spans.event(
                            Some(host.0),
                            Track::Control,
                            format!("activated (epoch {epoch})"),
                            sim.now(),
                        );
                        self.spans.count(counter::RESCALE_JOINS, 1);
                    }
                }
                Output::Handoff { from, to, roles } => {
                    let cost = self.app.handoff(to, from, &roles);
                    for &r in &roles {
                        self.tracer.record(
                            sim.now(),
                            to,
                            format!("handoff: took over role S{r} from host {}", from.0),
                        );
                    }
                    let state = &mut self.hosts[to.0];
                    state.join_cpu.charge(CostCategory::Compute, cost);
                    state.join_busy += cost;
                    if self.spans.is_enabled() {
                        self.record_sync_gap(to, sim.now());
                        self.spans.span(
                            to.0,
                            SpanKind::Absorb,
                            format!("handoff {} role(s) from host {}", roles.len(), from.0),
                            sim.now(),
                            cost,
                        );
                        self.busy_until[to.0] = sim.now() + cost;
                        self.spans
                            .count(counter::RESCALE_HANDOFFS, roles.len() as u64);
                    }
                    sim.schedule_in(cost, RingEvent::AbsorbDone { host: to });
                }
                Output::Departed { host, epoch } => {
                    self.last_progress = self.last_progress.max(sim.now());
                    self.tracer
                        .record(sim.now(), host, format!("departed (epoch {epoch})"));
                    if self.spans.is_enabled() {
                        self.spans.event(
                            Some(host.0),
                            Track::Control,
                            format!("departed (epoch {epoch})"),
                            sim.now(),
                        );
                        self.spans.count(counter::RESCALE_DRAINS, 1);
                    }
                }
                Output::Resent { target, id } => {
                    self.tracer
                        .record(sim.now(), target, format!("re-sent {id} from origin"));
                    if self.spans.is_enabled() {
                        self.spans.event(
                            Some(target.0),
                            Track::Control,
                            format!("re-sent {id} from origin"),
                            sim.now(),
                        );
                        self.spans.count(counter::FRAGMENTS_RESENT, 1);
                    }
                }
                Output::Finished { host } => {
                    self.tracer
                        .record(sim.now(), host, "application finished — stopping rotation");
                    self.stopped = true;
                }
                Output::QueryAdmitted { query, tenant } => {
                    self.last_progress = self.last_progress.max(sim.now());
                    self.tracer.record(
                        sim.now(),
                        HostId(0),
                        format!("query {query} (tenant {tenant}) admitted"),
                    );
                    if self.spans.is_enabled() {
                        self.spans.event(
                            None,
                            Track::Control,
                            format!("query {query} (tenant {tenant}) admitted"),
                            sim.now(),
                        );
                        self.spans.count(counter::QUERIES_ADMITTED, 1);
                    }
                }
                Output::QueryDone { query, tenant } => {
                    self.last_progress = self.last_progress.max(sim.now());
                    self.tracer.record(
                        sim.now(),
                        HostId(0),
                        format!("query {query} (tenant {tenant}) complete"),
                    );
                    if self.spans.is_enabled() {
                        self.spans.event(
                            None,
                            Track::Control,
                            format!("query {query} (tenant {tenant}) complete"),
                            sim.now(),
                        );
                        self.spans.count(counter::QUERIES_COMPLETED, 1);
                    }
                }
                Output::Teardown { reason } => panic!("{reason}"),
            }
        }
    }

    /// Puts one attempt of a transfer on the wire: rolls the fault dice
    /// (the medium's business, not the protocol's), reports the attempt's
    /// fate back, charges the transport cost model, and schedules the
    /// wire-free/arrival events.
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn apply_send(
        &mut self,
        sim: &mut Simulation<RingEvent<P>>,
        from: HostId,
        to: HostId,
        tid: u64,
        attempt: u32,
        env: Envelope<P>,
    ) {
        let bytes = env.bytes();
        let mut sent = env;
        let mut dropped = false;
        let mut spike = SimDuration::ZERO;
        if let Some(plan) = &self.fault_plan {
            // Dice keyed on the per-sender wire sequence (`env.seq`), the
            // same numbering the live backend's LinkSender stamps — the
            // cross-backend parity test depends on this.
            let seq = sent.seq;
            dropped = plan.should_drop(from, seq, attempt);
            let corrupt = !dropped && plan.should_corrupt(from, seq, attempt);
            spike = plan.delay_spike(from, seq, attempt);
            self.proto.attempt_fate(tid, dropped, corrupt);
            if corrupt {
                // In-flight bit flips: the receiver's checksum verification
                // rejects the copy and withholds the ack.
                sent.checksum = !sent.checksum;
            }
            if attempt == 1 {
                // Counted once per transfer; each wire attempt (including
                // retransmissions) gets its own `Send` span below.
                self.spans.count(counter::ENVELOPES_SENT, 1);
            } else {
                self.tracer.record(
                    sim.now(),
                    from,
                    format!("retransmit {} (attempt {attempt})", sent.id),
                );
                if self.spans.is_enabled() {
                    self.spans.event(
                        Some(from.0),
                        Track::Transmitter,
                        format!("retransmit {} attempt {attempt}", sent.id),
                        sim.now(),
                    );
                    self.spans.count(counter::RETRANSMITS, 1);
                }
            }
        }
        let mut pending_completion = None;
        let reservation = if let Some((rnic, qp, region)) = self.rnics[from.0].as_mut() {
            // RDMA: post a work request against the registered region; the
            // RNIC moves the data autonomously. Host CPU pays only the
            // posting cost.
            let wr = WorkRequest {
                wr_id: self.next_wr_id,
                region: region.id,
                bytes,
            };
            self.next_wr_id += 1;
            let link = self
                .network
                .outgoing_link_mut(from)
                .expect("multi-host ring has links");
            let outcome = qp.post_send(rnic, link, sim.now(), simnet::link::Direction::Forward, wr);
            self.hosts[from.0]
                .join_cpu
                .charge(CostCategory::Driver, outcome.post_cpu);
            pending_completion = Some(outcome.completion);
            outcome.reservation
        } else {
            // Software TCP: the kernel does the moving; charge the full
            // per-byte CPU bill to the sender.
            let cost = self.config.transport.comm_cpu(self.config.cpu, bytes, 1);
            self.hosts[from.0].join_cpu.merge(&cost);
            self.network.reserve_hop(sim.now(), from, bytes)
        };
        self.hosts[from.0].bytes_forwarded += bytes;
        self.tracer.record(
            sim.now(),
            from,
            format!("send {} ({} B) → {}", sent.id, bytes, to),
        );
        if self.spans.is_enabled() {
            self.spans.span(
                from.0,
                SpanKind::Send,
                format!("send {}", sent.id),
                sim.now(),
                reservation.wire_free.saturating_duration_since(sim.now()),
            );
            if self.fault_plan.is_none() {
                self.spans.count(counter::ENVELOPES_SENT, 1);
            }
        }
        sim.schedule_at(
            reservation.wire_free,
            RingEvent::SendDone {
                from,
                completion: pending_completion,
            },
        );
        if !dropped {
            sim.schedule_at(
                reservation.arrival + spike,
                RingEvent::Arrived { to, env: sent, tid },
            );
        }
    }

    /// Emits a `Sync` span covering the idle gap (if any) between the end
    /// of this host's previous busy interval and `now`. The gaps between
    /// consecutive joins partition the join window's non-busy time, so
    /// their sum reconciles with the `sync` phase of `RingMetrics`.
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn record_sync_gap(&mut self, host: HostId, now: SimTime) {
        let gap = now.saturating_duration_since(self.busy_until[host.0]);
        if gap > SimDuration::ZERO {
            self.spans
                .span(host.0, SpanKind::Sync, "sync", self.busy_until[host.0], gap);
        }
    }

    /// Applies the transport's interference model to a base join duration.
    fn effective_join_duration(&self, d_base: SimDuration, bytes: u64) -> SimDuration {
        let pollution = self.config.transport.pollution_factor();
        if self.config.transport.is_rdma() || self.config.hosts == 1 {
            return d_base;
        }
        // Per processed envelope the host both receives and sends one
        // envelope of comparable size.
        let comm_cpu = self
            .config
            .transport
            .comm_cpu(self.config.cpu, bytes, 1)
            .total_busy()
            * 2;
        let threads = self.config.join_threads as u64;
        let cores = self.config.cpu.cores as u64;
        let contended = (d_base * threads + comm_cpu) / cores;
        d_base.max(contended) * pollution
    }

    fn finish(mut self) -> SimOutcome<A> {
        // Materialise the well-known counters so "observed zero" shows up
        // in exports even on runs that never exercised a protocol path.
        for name in [
            counter::ENVELOPES_SENT,
            counter::ENVELOPES_RECEIVED,
            counter::FRAGMENTS_RETIRED,
            counter::RETRANSMITS,
            counter::CHECKSUM_MISMATCHES,
            counter::HEAL_EVENTS,
            counter::FRAGMENTS_RESENT,
            counter::RESCALE_JOINS,
            counter::RESCALE_DRAINS,
            counter::RESCALE_HANDOFFS,
        ] {
            self.spans.count(name, 0);
        }
        let hosts: Vec<HostMetrics> = self
            .hosts
            .iter()
            .enumerate()
            .map(|(i, h)| {
                let setup_done = h.setup_done.unwrap_or(SimTime::ZERO);
                let window = h.last_join_done.saturating_duration_since(setup_done);
                HostMetrics {
                    setup: setup_done.saturating_duration_since(SimTime::ZERO),
                    join_busy: h.join_busy,
                    sync: window.saturating_sub(h.join_busy),
                    join_window: window,
                    cpu: h.join_cpu,
                    fragments_processed: self.proto.host(HostId(i)).fragments_processed(),
                    bytes_forwarded: h.bytes_forwarded,
                    retransmits: self.proto.retransmits(HostId(i)),
                    checksum_mismatches: self.proto.checksum_mismatches(HostId(i)),
                }
            })
            .collect();
        let metrics = RingMetrics {
            hosts,
            wall_clock: self.wall_clock.saturating_duration_since(SimTime::ZERO),
            fragments_completed: self.proto.fragments_completed(),
            heal_events: self.proto.heal_events(),
            detection_latency: self.detection_latency,
            fragments_resent: self.proto.fragments_resent(),
            membership_epoch: self.proto.membership_epoch(),
            rescale_joins: self.proto.rescale_joins(),
            rescale_drains: self.proto.rescale_drains(),
            rescale_handoffs: self.proto.rescale_handoffs(),
            rescale_escalations: self.proto.rescale_escalations(),
            queries: self.proto.query_metrics(),
        };
        SimOutcome {
            metrics,
            app: self.app,
            trace: self.tracer,
            spans: self.spans,
        }
    }
}

/// Bandwidth helper re-exported for harness code that wants to express the
/// configured TCP cap.
pub fn tcp_wire_cap(config: &RingConfig) -> Bandwidth {
    effective_link(config).throughput().peak()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::FixedCostApp;

    fn payloads(hosts: usize, per_host: usize, bytes: usize) -> Vec<Vec<Vec<u8>>> {
        (0..hosts)
            .map(|_| (0..per_host).map(|_| vec![0u8; bytes]).collect())
            .collect()
    }

    fn small_config(hosts: usize) -> RingConfig {
        RingConfig::paper(hosts)
    }

    #[test]
    fn every_host_processes_every_fragment() {
        let hosts = 4;
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
        );
        let out = SimRing::new(small_config(hosts), payloads(hosts, 3, 1 << 20), app).run();
        assert_eq!(out.metrics.fragments_completed, 12);
        for h in &out.metrics.hosts {
            assert_eq!(h.fragments_processed, 12, "each host sees all fragments");
        }
        assert_eq!(out.app.processed, vec![12; hosts]);
    }

    #[test]
    fn single_host_ring_needs_no_network() {
        let app = FixedCostApp::new(1, SimDuration::from_millis(5), SimDuration::from_millis(10));
        let out = SimRing::new(small_config(1), payloads(1, 4, 1 << 20), app).run();
        assert_eq!(out.metrics.fragments_completed, 4);
        assert_eq!(out.metrics.hosts[0].bytes_forwarded, 0);
        // 5 ms setup + 4 × 10 ms joins.
        assert_eq!(out.metrics.wall_clock, SimDuration::from_millis(45));
        assert_eq!(out.metrics.sync_time(), SimDuration::ZERO);
    }

    #[test]
    fn communication_overlaps_computation_with_rdma() {
        // Joins slow enough to hide transfers: no sync time expected.
        let hosts = 3;
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_millis(50),
        );
        let out = SimRing::new(small_config(hosts), payloads(hosts, 2, 1 << 20), app).run();
        // A 1 MB transfer takes ~0.85 ms — far below the 50 ms join.
        let sync = out.metrics.sync_time();
        assert!(
            sync < SimDuration::from_millis(5),
            "sync should be hidden, got {sync}"
        );
    }

    #[test]
    fn fast_joins_expose_sync_time() {
        // Joins much faster than transfers: the join entity must wait.
        let hosts = 3;
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_micros(100),
        );
        let out = SimRing::new(small_config(hosts), payloads(hosts, 4, 16 << 20), app).run();
        // A 16 MB transfer takes ~13 ms; joins take 0.1 ms.
        let sync = out.metrics.sync_time();
        assert!(
            sync > SimDuration::from_millis(20),
            "transfers must dominate, got sync {sync}"
        );
    }

    #[test]
    fn tcp_runs_slower_than_rdma() {
        let hosts = 4;
        let mk_app = || {
            FixedCostApp::new(
                hosts,
                SimDuration::from_millis(1),
                SimDuration::from_millis(5),
            )
        };
        let rdma = SimRing::new(small_config(hosts), payloads(hosts, 3, 4 << 20), mk_app()).run();
        let tcp = SimRing::new(
            RingConfig::paper_tcp(hosts),
            payloads(hosts, 3, 4 << 20),
            mk_app(),
        )
        .run();
        assert!(
            tcp.metrics.join_time() > rdma.metrics.join_time(),
            "TCP join phase ({}) must exceed RDMA ({})",
            tcp.metrics.join_time(),
            rdma.metrics.join_time()
        );
    }

    #[test]
    fn tcp_charges_communication_cpu() {
        let hosts = 2;
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_millis(5),
        );
        let out = SimRing::new(
            RingConfig::paper_tcp(hosts),
            payloads(hosts, 2, 4 << 20),
            app,
        )
        .run();
        let copy = out.metrics.hosts[0].cpu.busy(CostCategory::DataCopy);
        assert!(copy > SimDuration::ZERO, "TCP must charge data-copy CPU");
        let rdma_out = SimRing::new(
            small_config(hosts),
            payloads(hosts, 2, 4 << 20),
            FixedCostApp::new(
                hosts,
                SimDuration::from_millis(1),
                SimDuration::from_millis(5),
            ),
        )
        .run();
        assert_eq!(
            rdma_out.metrics.hosts[0].cpu.busy(CostCategory::DataCopy),
            SimDuration::ZERO,
            "RDMA must not copy payload on the CPU"
        );
    }

    #[test]
    fn buffer_depth_one_still_completes() {
        let hosts = 3;
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
        );
        let cfg = small_config(hosts).with_buffers(1);
        let out = SimRing::new(cfg, payloads(hosts, 4, 1 << 20), app).run();
        assert_eq!(out.metrics.fragments_completed, 12);
    }

    #[test]
    fn deeper_buffers_reduce_sync() {
        let hosts = 4;
        let run = |buffers: usize| {
            let app = FixedCostApp::new(
                hosts,
                SimDuration::from_millis(1),
                SimDuration::from_millis(8),
            );
            let cfg = small_config(hosts).with_buffers(buffers);
            SimRing::new(cfg, payloads(hosts, 4, 8 << 20), app)
                .run()
                .metrics
        };
        let shallow = run(1);
        let deep = run(3);
        assert!(
            deep.join_time() <= shallow.join_time(),
            "deep buffers {} vs shallow {}",
            deep.join_time(),
            shallow.join_time()
        );
    }

    #[test]
    fn uneven_fragment_distribution_completes() {
        let hosts = 3;
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
        );
        let mut frags = payloads(hosts, 0, 0);
        frags[0] = (0..5).map(|_| vec![0u8; 1 << 20]).collect();
        let out = SimRing::new(small_config(hosts), frags, app).run();
        assert_eq!(out.metrics.fragments_completed, 5);
        for h in &out.metrics.hosts {
            assert_eq!(h.fragments_processed, 5);
        }
    }

    #[test]
    fn empty_run_finishes_after_setup() {
        let hosts = 2;
        let app = FixedCostApp::new(hosts, SimDuration::from_millis(3), SimDuration::ZERO);
        let out = SimRing::new(small_config(hosts), payloads(hosts, 0, 0), app).run();
        assert_eq!(out.metrics.fragments_completed, 0);
        assert_eq!(out.metrics.wall_clock, SimDuration::from_millis(3));
    }

    #[test]
    fn trace_records_the_protocol() {
        let hosts = 2;
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
        );
        let out = SimRing::new(small_config(hosts), payloads(hosts, 1, 1 << 20), app)
            .with_trace(true)
            .run();
        assert!(out.trace.matching("setup done").count() == 2);
        assert!(out.trace.matching("send").count() >= 1);
        assert!(out.trace.matching("retired").count() == 2);
    }

    #[test]
    fn determinism_same_inputs_same_schedule() {
        let hosts = 3;
        let run = || {
            let app = FixedCostApp::new(
                hosts,
                SimDuration::from_millis(1),
                SimDuration::from_millis(2),
            );
            SimRing::new(small_config(hosts), payloads(hosts, 3, 2 << 20), app)
                .run()
                .metrics
        };
        assert_eq!(run(), run());
    }

    /// App for continuous-mode tests: finishes after a target number of
    /// processed buffers.
    struct CountingApp {
        processed: usize,
        target: usize,
    }

    impl RingApp<Vec<u8>> for CountingApp {
        fn setup(&mut self, _host: HostId) -> SimDuration {
            SimDuration::from_micros(10)
        }

        fn process(
            &mut self,
            _host: HostId,
            _now: simnet::time::SimTime,
            _payload: &Vec<u8>,
        ) -> SimDuration {
            self.processed += 1;
            SimDuration::from_micros(50)
        }

        fn finished(&self) -> bool {
            self.processed >= self.target
        }
    }

    #[test]
    fn continuous_mode_circulates_past_one_revolution() {
        let hosts = 3;
        let per_host = 2;
        // One revolution = hosts × total fragments = 18 processings; ask
        // for several revolutions' worth.
        let target = hosts * hosts * per_host * 4;
        let app = CountingApp {
            processed: 0,
            target,
        };
        let out = SimRing::new(small_config(hosts), payloads(hosts, per_host, 4096), app)
            .continuous()
            .run();
        assert!(out.app.processed >= target);
        // Every host kept processing well beyond a single revolution.
        for h in &out.metrics.hosts {
            assert!(h.fragments_processed > hosts * per_host);
        }
    }

    #[test]
    fn continuous_mode_stops_promptly_when_finished() {
        let hosts = 2;
        let app = CountingApp {
            processed: 0,
            target: 1,
        };
        let out = SimRing::new(small_config(hosts), payloads(hosts, 3, 1024), app)
            .continuous()
            .run();
        // Stopped at (or just past) the first processed buffer.
        assert!(out.app.processed <= 2, "got {}", out.app.processed);
    }

    #[test]
    fn continuous_single_host_requeues_locally() {
        let app = CountingApp {
            processed: 0,
            target: 10,
        };
        let out = SimRing::new(small_config(1), payloads(1, 2, 1024), app)
            .continuous()
            .run();
        assert!(out.app.processed >= 10);
        assert_eq!(out.metrics.hosts[0].bytes_forwarded, 0);
    }

    #[test]
    #[should_panic(expected = "one fragment list per host")]
    fn fragment_list_shape_is_validated() {
        let app = FixedCostApp::new(2, SimDuration::ZERO, SimDuration::ZERO);
        let _ = SimRing::new(small_config(2), payloads(3, 1, 10), app);
    }

    // ------------------------------------------------------------------
    // Fault injection
    // ------------------------------------------------------------------

    use simnet::fault::FaultPlan;
    use simnet::time::SimTime;

    fn fixed_app(hosts: usize) -> FixedCostApp {
        FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
        )
    }

    #[test]
    fn quiet_plan_reports_zero_fault_counters() {
        let hosts = 4;
        let classic = SimRing::new(
            small_config(hosts),
            payloads(hosts, 3, 1 << 20),
            fixed_app(hosts),
        )
        .run();
        let reliable = SimRing::new(
            small_config(hosts),
            payloads(hosts, 3, 1 << 20),
            fixed_app(hosts),
        )
        .with_fault_plan(FaultPlan::seeded(9))
        .run();
        assert!(reliable.metrics.fault_free(), "{:?}", reliable.metrics);
        assert_eq!(reliable.metrics.fragments_completed, 12);
        assert_eq!(reliable.app.processed, classic.app.processed);
        // The acknowledged transport is stop-and-wait per hop; acks are tiny
        // backward-direction messages, so the slowdown stays marginal.
        let base = classic.metrics.wall_clock.as_secs_f64();
        let rel = reliable.metrics.wall_clock.as_secs_f64();
        assert!(
            rel <= base * 1.10,
            "quiet reliable transport must stay within 10% of classic: {rel} vs {base}"
        );
    }

    #[test]
    fn crash_mid_revolution_heals_and_completes() {
        let hosts = 4;
        let plan = FaultPlan::seeded(5).crash_host(HostId(2), SimTime::from_nanos(5_000_000));
        let cfg = small_config(hosts)
            .with_ack_timeout(SimDuration::from_millis(5))
            .with_max_retransmits(3);
        let out = SimRing::new(cfg, payloads(hosts, 2, 1 << 20), fixed_app(hosts))
            .with_fault_plan(plan)
            .with_trace(true)
            .run();
        // Every fragment still completes a logical full revolution: the
        // successor absorbed the dead host's role, and origin re-sends
        // replaced whatever died in H2's buffers.
        assert_eq!(
            out.metrics.fragments_completed, 8,
            "trace:\n{:?}",
            out.trace
        );
        assert_eq!(out.metrics.heal_events, 1);
        assert!(out.metrics.detection_latency > SimDuration::ZERO);
        assert!(
            out.metrics.total_retransmits() > 0,
            "death is detected via timeouts"
        );
        assert!(out.trace.matching("confirmed dead").count() >= 1);
        assert!(out.trace.matching("absorbed role").count() >= 1);
        assert!(out.metrics.hosts[2].fragments_processed < 8);
    }

    #[test]
    fn crash_is_deterministic() {
        let run = || {
            let hosts = 4;
            let plan = FaultPlan::seeded(5).crash_host(HostId(1), SimTime::from_nanos(4_000_000));
            let cfg = small_config(hosts)
                .with_ack_timeout(SimDuration::from_millis(5))
                .with_max_retransmits(3);
            SimRing::new(cfg, payloads(hosts, 2, 1 << 20), fixed_app(hosts))
                .with_fault_plan(plan)
                .run()
                .metrics
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn lossy_link_retransmits_until_delivery() {
        let hosts = 3;
        let plan = FaultPlan::seeded(7).lossy_link(HostId(0), 0.3);
        let cfg = small_config(hosts).with_ack_timeout(SimDuration::from_millis(5));
        let out = SimRing::new(cfg, payloads(hosts, 4, 1 << 20), fixed_app(hosts))
            .with_fault_plan(plan)
            .run();
        assert_eq!(out.metrics.fragments_completed, 12);
        assert_eq!(out.app.processed, vec![12; hosts]);
        assert!(out.metrics.hosts[0].retransmits > 0);
        assert_eq!(
            out.metrics.heal_events, 0,
            "losses alone must not kill hosts"
        );
    }

    #[test]
    fn corrupt_link_counts_mismatches_at_the_receiver() {
        let hosts = 3;
        let plan = FaultPlan::seeded(7).corrupt_link(HostId(1), 0.5);
        let cfg = small_config(hosts).with_ack_timeout(SimDuration::from_millis(5));
        let out = SimRing::new(cfg, payloads(hosts, 4, 1 << 20), fixed_app(hosts))
            .with_fault_plan(plan)
            .run();
        assert_eq!(out.metrics.fragments_completed, 12);
        assert!(
            out.metrics.hosts[2].checksum_mismatches > 0,
            "{:?}",
            out.metrics
        );
        assert!(out.metrics.hosts[1].retransmits > 0);
    }

    #[test]
    fn paused_host_backpressures_without_dying() {
        let hosts = 3;
        let plan = FaultPlan::seeded(0).pause_host(
            HostId(1),
            SimTime::from_nanos(2_000_000),
            SimDuration::from_millis(40),
        );
        let quiet = SimRing::new(
            small_config(hosts),
            payloads(hosts, 2, 1 << 20),
            fixed_app(hosts),
        )
        .with_fault_plan(FaultPlan::seeded(0))
        .run();
        let out = SimRing::new(
            small_config(hosts),
            payloads(hosts, 2, 1 << 20),
            fixed_app(hosts),
        )
        .with_fault_plan(plan)
        .with_trace(true)
        .run();
        assert_eq!(out.metrics.fragments_completed, 6);
        assert_eq!(out.app.processed, vec![6; hosts]);
        // The NIC keeps acknowledging while the software is frozen, so the
        // failure detector must not fire.
        assert_eq!(out.metrics.heal_events, 0);
        assert!(out.trace.matching("paused").count() >= 1);
        assert!(out.trace.matching("resumed").count() >= 1);
        assert!(
            out.metrics.wall_clock > quiet.metrics.wall_clock,
            "a 40 ms freeze must stretch the run: {} vs {}",
            out.metrics.wall_clock,
            quiet.metrics.wall_clock
        );
    }

    #[test]
    fn straggler_slowdown_stretches_the_join_phase() {
        let hosts = 3;
        let run = |plan: FaultPlan| {
            SimRing::new(
                small_config(hosts),
                payloads(hosts, 3, 1 << 20),
                fixed_app(hosts),
            )
            .with_fault_plan(plan)
            .run()
            .metrics
        };
        let quiet = run(FaultPlan::seeded(0));
        let slow = run(FaultPlan::seeded(0).slow_host(HostId(1), 0.25));
        assert_eq!(slow.fragments_completed, 9);
        assert!(
            slow.hosts[1].join_busy > quiet.hosts[1].join_busy,
            "a 4× straggler must be busy longer"
        );
        assert!(slow.wall_clock > quiet.wall_clock);
    }

    #[test]
    fn delay_spikes_are_absorbed() {
        let hosts = 3;
        let plan = FaultPlan::seeded(3).delay_spikes(HostId(0), 0.5, SimDuration::from_millis(1));
        let out = SimRing::new(
            small_config(hosts),
            payloads(hosts, 3, 1 << 20),
            fixed_app(hosts),
        )
        .with_fault_plan(plan)
        .run();
        assert_eq!(out.metrics.fragments_completed, 9);
        assert_eq!(out.app.processed, vec![9; hosts]);
    }

    #[test]
    #[should_panic(expected = "run-to-retirement")]
    fn continuous_mode_rejects_fault_plans() {
        let app = CountingApp {
            processed: 0,
            target: 5,
        };
        let _ = SimRing::new(small_config(2), payloads(2, 1, 1024), app)
            .continuous()
            .with_fault_plan(FaultPlan::seeded(0))
            .run();
    }

    #[test]
    #[should_panic(expected = "single-host ring")]
    fn single_host_crash_is_rejected() {
        let plan = FaultPlan::seeded(0).crash_host(HostId(0), SimTime::from_nanos(1));
        let _ = SimRing::new(small_config(1), payloads(1, 1, 1024), fixed_app(1))
            .with_fault_plan(plan)
            .run();
    }

    // ------------------------------------------------------------------
    // Structured span tracing
    // ------------------------------------------------------------------

    use simnet::span::{counter, SpanKind};

    #[test]
    fn traced_run_reconciles_spans_with_metrics() {
        let hosts = 3;
        let per_host = 2;
        let out = SimRing::new(
            small_config(hosts),
            payloads(hosts, per_host, 1 << 20),
            fixed_app(hosts),
        )
        .with_trace(true)
        .run();
        assert!(out.spans.is_enabled());
        // Span totals must reconcile *exactly*: both sides are bookkept in
        // virtual time from the same event sites.
        for (h, m) in out.metrics.hosts.iter().enumerate() {
            assert_eq!(
                out.spans.total(h, SpanKind::Setup),
                m.setup,
                "host {h} setup"
            );
            assert_eq!(out.spans.busy_total(h), m.join_busy, "host {h} join_busy");
            assert_eq!(out.spans.total(h, SpanKind::Sync), m.sync, "host {h} sync");
        }
        let c = out.spans.counters();
        assert_eq!(
            c.get(counter::FRAGMENTS_RETIRED) as usize,
            out.metrics.fragments_completed
        );
        // Every fragment crosses hosts-1 wires, each crossing received once.
        assert_eq!(
            c.get(counter::ENVELOPES_SENT) as usize,
            out.metrics.fragments_completed * (hosts - 1)
        );
        assert_eq!(
            c.get(counter::ENVELOPES_SENT),
            c.get(counter::ENVELOPES_RECEIVED)
        );
        assert_eq!(c.get(counter::RETRANSMITS), 0);
        assert_eq!(c.get(counter::HEAL_EVENTS), 0);
        // Every join span carries a hop annotation within the ring size.
        for s in out
            .spans
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Join)
        {
            assert!(
                matches!(s.hop, Some(h) if h < hosts),
                "join span without hop: {s:?}"
            );
        }
        let json = out.spans.to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn untraced_run_keeps_spans_disabled() {
        let hosts = 2;
        let out = SimRing::new(
            small_config(hosts),
            payloads(hosts, 1, 1 << 20),
            fixed_app(hosts),
        )
        .run();
        assert!(!out.spans.is_enabled());
        assert!(out.spans.spans().is_empty());
        assert!(out.spans.events().is_empty());
    }

    #[test]
    fn traced_lossy_run_reconciles_protocol_counters() {
        let hosts = 3;
        let plan = FaultPlan::seeded(7).lossy_link(HostId(0), 0.3);
        let cfg = small_config(hosts).with_ack_timeout(SimDuration::from_millis(5));
        let out = SimRing::new(cfg, payloads(hosts, 4, 1 << 20), fixed_app(hosts))
            .with_fault_plan(plan)
            .with_trace(true)
            .run();
        let c = out.spans.counters();
        assert_eq!(c.get(counter::RETRANSMITS), out.metrics.total_retransmits());
        assert!(c.get(counter::RETRANSMITS) > 0);
        assert!(out.spans.count_events("retransmit") > 0);
        assert_eq!(
            c.get(counter::FRAGMENTS_RETIRED) as usize,
            out.metrics.fragments_completed
        );
        // join_busy is incremented at the same sites that emit Join/Absorb
        // spans, so busy totals stay exact even under faults.
        for (h, m) in out.metrics.hosts.iter().enumerate() {
            assert_eq!(out.spans.busy_total(h), m.join_busy, "host {h} join_busy");
        }
    }

    #[test]
    fn traced_heal_run_records_absorb_and_heal_events() {
        let hosts = 4;
        let plan = FaultPlan::seeded(5).crash_host(HostId(2), SimTime::from_nanos(5_000_000));
        let cfg = small_config(hosts)
            .with_ack_timeout(SimDuration::from_millis(5))
            .with_max_retransmits(3);
        let out = SimRing::new(cfg, payloads(hosts, 2, 1 << 20), fixed_app(hosts))
            .with_fault_plan(plan)
            .with_trace(true)
            .run();
        let c = out.spans.counters();
        assert_eq!(
            c.get(counter::HEAL_EVENTS) as usize,
            out.metrics.heal_events
        );
        assert_eq!(
            c.get(counter::FRAGMENTS_RESENT) as usize,
            out.metrics.fragments_resent
        );
        assert!(out.spans.count_events("heal:") >= 1);
        // The successor's absorb shows up as an Absorb span (zero-duration
        // here: FixedCostApp absorbs for free), and its join_busy — which
        // includes the absorb cost — still reconciles.
        assert!(out
            .spans
            .spans()
            .iter()
            .any(|s| s.kind == SpanKind::Absorb && s.host == 3));
        for (h, m) in out.metrics.hosts.iter().enumerate() {
            assert_eq!(out.spans.busy_total(h), m.join_busy, "host {h} join_busy");
        }
    }

    #[test]
    fn planned_drain_departs_and_completes() {
        let hosts = 3;
        let plan = RescalePlan::seeded(11).drain_host(HostId(1), SimTime::from_nanos(5_000_000));
        let cfg = small_config(hosts).with_ack_timeout(SimDuration::from_millis(5));
        let out = SimRing::new(cfg, payloads(hosts, 2, 1 << 20), fixed_app(hosts))
            .with_rescale_plan(plan)
            .with_trace(true)
            .run();
        assert_eq!(
            out.metrics.fragments_completed, 6,
            "trace:\n{:?}",
            out.trace
        );
        assert_eq!(out.metrics.membership_epoch, 1);
        assert_eq!(out.metrics.rescale_drains, 1);
        assert_eq!(out.metrics.rescale_joins, 0);
        assert_eq!(out.metrics.rescale_handoffs, 1, "host 1's one role moved");
        assert_eq!(out.metrics.rescale_escalations, 0);
        assert_eq!(out.metrics.heal_events, 0, "a drain is not a fault");
        let c = out.spans.counters();
        assert_eq!(c.get(counter::RESCALE_DRAINS), 1);
        assert_eq!(c.get(counter::RESCALE_HANDOFFS), 1);
        assert!(out.spans.count_events("drain requested") == 1);
        assert!(out.spans.count_events("departed") == 1);
        assert!(out
            .spans
            .spans()
            .iter()
            .any(|s| s.kind == SpanKind::Absorb && s.name.starts_with("handoff")));
        for (h, m) in out.metrics.hosts.iter().enumerate() {
            assert_eq!(out.spans.busy_total(h), m.join_busy, "host {h} join_busy");
        }
    }

    #[test]
    fn standby_join_rescales_the_sim_ring() {
        // A 3-host ring where host 2 starts as a standby: rendezvous
        // hashing over the grown member set moves role 0 to the newcomer
        // (a pure function of ids, independent of any seed), so the
        // joined host must both relay and process.
        let hosts = 3;
        let plan = RescalePlan::seeded(21).join_host(HostId(2), SimTime::from_nanos(2_000_000));
        let cfg = small_config(hosts).with_ack_timeout(SimDuration::from_millis(5));
        let mut frags = payloads(hosts, 2, 1 << 20);
        frags[2].clear(); // the standby provisions no fragments
        let out = SimRing::new(cfg, frags, fixed_app(hosts))
            .with_rescale_plan(plan)
            .with_trace(true)
            .run();
        assert_eq!(
            out.metrics.fragments_completed, 4,
            "trace:\n{:?}",
            out.trace
        );
        assert_eq!(out.metrics.membership_epoch, 1);
        assert_eq!(out.metrics.rescale_joins, 1);
        assert_eq!(out.metrics.rescale_drains, 0);
        // Which of the two initial roles move to the newcomer is a pure
        // function of rendezvous hashing over the grown member set.
        let grown: Vec<HostId> = (0..hosts).map(HostId).collect();
        let expected = (0..hosts - 1)
            .filter(|&r| crate::protocol::rendezvous_owner(r, &grown) == Some(HostId(2)))
            .count() as u64;
        assert!(expected > 0, "this ring shape must move at least one role");
        assert_eq!(out.metrics.rescale_handoffs, expected);
        assert_eq!(out.spans.counters().get(counter::RESCALE_JOINS), 1);
        assert!(out.spans.count_events("activated") == 1);
        // The newcomer did real work after joining.
        assert!(out.app.processed[2] > 0, "joined host must process buffers");
    }

    #[test]
    fn drain_then_join_bumps_two_epochs() {
        let hosts = 4;
        let plan = RescalePlan::seeded(31)
            .join_host(HostId(3), SimTime::from_nanos(2_000_000))
            .drain_host(HostId(0), SimTime::from_nanos(6_000_000));
        let cfg = small_config(hosts).with_ack_timeout(SimDuration::from_millis(5));
        let mut frags = payloads(hosts, 2, 1 << 20);
        frags[3].clear();
        let out = SimRing::new(cfg, frags, fixed_app(hosts))
            .with_rescale_plan(plan)
            .run();
        assert_eq!(out.metrics.fragments_completed, 6);
        assert_eq!(out.metrics.membership_epoch, 2, "one join + one drain");
        assert_eq!(out.metrics.rescale_joins, 1);
        assert_eq!(out.metrics.rescale_drains, 1);
        assert_eq!(out.metrics.rescale_escalations, 0);
        assert!(out.metrics.fault_free(), "{:?}", out.metrics);
    }

    #[test]
    #[should_panic(expected = "must not contribute fragments")]
    fn standby_with_fragments_is_rejected() {
        let hosts = 3;
        let plan = RescalePlan::seeded(1).join_host(HostId(2), SimTime::from_nanos(1_000));
        SimRing::new(
            small_config(hosts),
            payloads(hosts, 1, 1 << 10),
            fixed_app(hosts),
        )
        .with_rescale_plan(plan)
        .run();
    }

    // ------------------------------------------------------------------
    // Multi-tenant multiplexing
    // ------------------------------------------------------------------

    fn tenant_queries(
        hosts: usize,
        queries: usize,
        per_host: usize,
        bytes: usize,
    ) -> Vec<(u32, Vec<Vec<Vec<u8>>>)> {
        (0..queries)
            .map(|q| (q as u32, payloads(hosts, per_host, bytes)))
            .collect()
    }

    #[test]
    fn multiplexed_queries_all_complete() {
        let hosts = 4;
        let queries = 3;
        let cfg = small_config(hosts).with_ack_timeout(SimDuration::from_millis(5));
        let out = SimRing::new_queries(
            cfg,
            tenant_queries(hosts, queries, 2, 1 << 20),
            2,
            fixed_app(hosts),
        )
        .run();
        assert_eq!(out.metrics.fragments_completed, queries * hosts * 2);
        assert_eq!(out.metrics.queries.len(), queries);
        for (q, m) in out.metrics.queries.iter().enumerate() {
            assert_eq!(m.tenant, q as u32);
            assert!(m.completed, "query {q} must finish: {m:?}");
            assert_eq!(m.fragments_completed, hosts * 2);
        }
        // Every host processed every fragment of every query.
        assert_eq!(out.app.processed, vec![queries * hosts * 2; hosts]);
    }

    #[test]
    fn four_concurrent_queries_survive_faults() {
        // The acceptance bar: one ring sustains >= 4 concurrently active
        // queries with the fault dice hot (loss + corruption on every
        // link) and still completes every query exactly once.
        let hosts = 4;
        let queries = 4;
        let mut plan = FaultPlan::seeded(77);
        for h in 0..hosts {
            plan = plan
                .lossy_link(HostId(h), 0.08)
                .corrupt_link(HostId(h), 0.05);
        }
        let cfg = small_config(hosts)
            .with_ack_timeout(SimDuration::from_millis(5))
            .with_max_retransmits(6);
        let out = SimRing::new_queries(
            cfg,
            tenant_queries(hosts, queries, 2, 1 << 20),
            queries,
            fixed_app(hosts),
        )
        .with_fault_plan(plan)
        .run();
        assert_eq!(out.metrics.fragments_completed, queries * hosts * 2);
        assert!(out.metrics.queries.iter().all(|m| m.completed));
        assert!(
            out.metrics.total_retransmits() > 0,
            "the dice must actually bite: {:?}",
            out.metrics
        );
        assert_eq!(out.app.processed, vec![queries * hosts * 2; hosts]);
    }

    #[test]
    fn admission_bound_serializes_queries() {
        // max_active = 1: queries run strictly one at a time, yet all
        // complete — the admission queue drains on each completion.
        let hosts = 3;
        let queries = 4;
        let cfg = small_config(hosts).with_ack_timeout(SimDuration::from_millis(5));
        let out = SimRing::new_queries(
            cfg,
            tenant_queries(hosts, queries, 1, 1 << 18),
            1,
            fixed_app(hosts),
        )
        .with_trace(true)
        .run();
        assert!(out.metrics.queries.iter().all(|m| m.completed));
        let c = out.spans.counters();
        assert_eq!(c.get(counter::QUERIES_ADMITTED), queries as u64);
        assert_eq!(c.get(counter::QUERIES_COMPLETED), queries as u64);
    }

    #[test]
    fn multiplexed_crash_heals_once_and_completes_all() {
        let hosts = 4;
        let queries = 2;
        let plan = FaultPlan::seeded(11).crash_host(HostId(2), SimTime::from_nanos(5_000_000));
        let cfg = small_config(hosts)
            .with_ack_timeout(SimDuration::from_millis(5))
            .with_max_retransmits(3);
        let out = SimRing::new_queries(
            cfg,
            tenant_queries(hosts, queries, 2, 1 << 20),
            queries,
            fixed_app(hosts),
        )
        .with_fault_plan(plan)
        .run();
        assert_eq!(out.metrics.heal_events, 1);
        assert!(out.metrics.queries.iter().all(|m| m.completed));
        assert_eq!(out.metrics.fragments_completed, queries * hosts * 2);
    }
}
