//! The simulated ring backend: Data Roundabout inside a discrete-event
//! simulation.
//!
//! Every host runs the paper's three asynchronous entities (§III-D):
//!
//! * the **receiver** accepts envelopes into pre-reserved ring-buffer
//!   elements (an RDMA receive requires a pre-posted buffer, so the slot
//!   is reserved at the *sender's* send time, not at arrival);
//! * the **join entity** processes one buffer at a time, FIFO;
//! * the **transmitter** forwards processed envelopes clockwise, but only
//!   when the successor has a free buffer element (credit-based flow
//!   control) — this is the mechanism that lets a slow host "borrow" time
//!   from the ring without stalling it immediately (§V-D).
//!
//! Time and CPU model:
//!
//! * transfers occupy the hop link for their serialization time (chunk-size
//!   curve of Figure 5); software TCP is additionally capped by what one
//!   transmitter thread can push through the kernel (§V-G);
//! * per transferred envelope, the transport's CPU cost model charges both
//!   endpoints (Figure 3 categories);
//! * join durations come from the application; under TCP they are inflated
//!   by cache pollution and — when the join threads plus communication
//!   demand exceed the cores — by CPU contention:
//!   `d_eff = pollution × max(d, (threads·d + comm_cpu) / cores)`.
//!   Under RDMA, `d_eff = d`: the join "is never interrupted by the
//!   network".

use std::collections::VecDeque;

use simnet::cpu::{CostCategory, CpuAccount};
use simnet::rnic::{Completion, MemoryRegion, QueuePair, Rnic, WorkRequest};
use simnet::engine::Simulation;
use simnet::link::Link;
use simnet::throughput::{Bandwidth, ChunkThroughput};
use simnet::time::{SimDuration, SimTime};
use simnet::topology::{HostId, RingNetwork};
use simnet::trace::Tracer;
use simnet::transport::TransportModel;

use crate::app::RingApp;
use crate::config::RingConfig;
use crate::envelope::{Envelope, PayloadBytes};
use crate::metrics::{HostMetrics, RingMetrics};

/// Safety valve: no legitimate run needs more events than this per fragment
/// and host.
const EVENT_BUDGET_PER_UNIT: u64 = 64;

/// Event budget for continuous (Data Cyclotron) rotations, which end when
/// the application says so rather than when fragments retire.
const CONTINUOUS_EVENT_BUDGET: u64 = 50_000_000;

/// The outcome of a simulated ring run.
#[derive(Debug)]
pub struct SimOutcome<A> {
    /// Timing and CPU metrics.
    pub metrics: RingMetrics,
    /// The application, with whatever state it accumulated.
    pub app: A,
    /// The event trace (empty unless tracing was enabled).
    pub trace: Tracer,
}

/// An envelope at the join entity, remembering whether it occupies a slot
/// of the host's receive pool (locally injected fragments live in local
/// memory and do not). Zero-copy processing reads the buffer element in
/// place, so the slot stays held *through* the join and is released when
/// the join entity finishes with it; the transmit path then stages from
/// the processed element, so forwarding never holds receive credit. That
/// is what makes the credit scheme deadlock-free: every held slot is
/// released after a bounded amount of join work, never while waiting for
/// downstream credit.
#[derive(Debug)]
struct Held<P> {
    env: Envelope<P>,
    pooled: bool,
}

#[derive(Debug)]
struct HostState<P> {
    incoming: VecDeque<Held<P>>,
    processing: Option<Held<P>>,
    outgoing: VecDeque<Envelope<P>>,
    /// Receive-pool slots in use (reserved for in-flight transfers or
    /// occupied by received envelopes still on this host).
    pool_used: usize,
    /// Transmitter busy with an in-flight send.
    sending: bool,
    setup_done: Option<SimTime>,
    last_join_done: SimTime,
    join_busy: SimDuration,
    join_cpu: CpuAccount,
    fragments_processed: usize,
    bytes_forwarded: u64,
}

impl<P> HostState<P> {
    fn new() -> Self {
        HostState {
            incoming: VecDeque::new(),
            processing: None,
            outgoing: VecDeque::new(),
            pool_used: 0,
            sending: false,
            setup_done: None,
            last_join_done: SimTime::ZERO,
            join_busy: SimDuration::ZERO,
            join_cpu: CpuAccount::new(),
            fragments_processed: 0,
            bytes_forwarded: 0,
        }
    }
}

enum RingEvent<P> {
    SetupDone { host: HostId },
    JoinDone { host: HostId },
    Arrived { to: HostId, env: Envelope<P> },
    SendDone { from: HostId, completion: Option<Completion> },
}

/// A configured, ready-to-run simulated ring.
pub struct SimRing<P, A> {
    config: RingConfig,
    fragments: Vec<Vec<P>>,
    app: A,
    trace: bool,
    continuous: bool,
    host_speed: Option<Vec<f64>>,
}

impl<P: PayloadBytes, A: RingApp<P>> SimRing<P, A> {
    /// Prepares a run: `fragments[h]` are the local fragments host `h`
    /// contributes to the rotation.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `fragments.len()` differs
    /// from the configured host count.
    pub fn new(config: RingConfig, fragments: Vec<Vec<P>>, app: A) -> Self {
        config.validate().expect("invalid ring configuration");
        assert_eq!(
            fragments.len(),
            config.hosts,
            "need one fragment list per host ({} hosts, {} lists)",
            config.hosts,
            fragments.len()
        );
        SimRing {
            config,
            fragments,
            app,
            trace: false,
            continuous: false,
            host_speed: None,
        }
    }

    /// Makes hosts heterogeneous: host `h`'s join durations are divided by
    /// `speed[h]` (1.0 = nominal, 0.5 = half speed). The paper's §V-D
    /// observes that "the ring buffer mechanism of Data Roundabout
    /// balances differences in the execution speeds of the participating
    /// hosts" — this knob lets benchmarks inject exactly such differences.
    ///
    /// # Panics
    ///
    /// `run` panics if the vector length differs from the host count or
    /// any factor is not finite and positive.
    pub fn with_host_speeds(mut self, speed: Vec<f64>) -> Self {
        self.host_speed = Some(speed);
        self
    }

    /// Enables event tracing for this run.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Switches to *continuous* rotation — the Data Cyclotron mode:
    /// envelopes never retire (they keep circulating after a full
    /// revolution) and the run ends when the application's
    /// [`RingApp::finished`] hook returns `true`.
    ///
    /// # Panics
    ///
    /// `run` panics if the app never finishes within the event budget —
    /// a safety valve against rotations that spin forever.
    pub fn continuous(mut self) -> Self {
        self.continuous = true;
        self
    }

    /// Runs the ring to quiescence and returns metrics, app and trace.
    ///
    /// # Panics
    ///
    /// Panics if the run ends with unfinished fragments (which would mean
    /// a flow-control deadlock — a bug, not a configuration problem).
    pub fn run(self) -> SimOutcome<A> {
        Runner::new(self).run()
    }
}

/// The effective hop link: RDMA runs at the RNIC-saturated goodput curve;
/// software TCP is capped by its transmitter thread's per-core rate.
fn effective_link(config: &RingConfig) -> Link {
    let peak = match config.transport {
        TransportModel::Rdma(_) => config.link_bandwidth,
        TransportModel::KernelTcp(m) | TransportModel::Toe(m) => {
            let cpu_cap = m.per_core_rate(config.cpu);
            if cpu_cap.bytes_per_sec() < config.link_bandwidth.bytes_per_sec() {
                cpu_cap
            } else {
                config.link_bandwidth
            }
        }
    };
    Link::new(
        ChunkThroughput::new(peak, config.per_message_overhead),
        config.link_latency,
    )
}

struct Runner<P, A> {
    config: RingConfig,
    app: A,
    continuous: bool,
    stopped: bool,
    network: RingNetwork,
    hosts: Vec<HostState<P>>,
    /// Per-host RNIC state (RDMA transport only): the NIC, its send queue
    /// pair, and the registered region backing the ring-buffer pool.
    /// Transfers are posted as work requests against the registered
    /// region, exactly as on real hardware; the registration *cost* is
    /// charged by the application layer during setup (it owns the
    /// setup-phase accounting).
    rnics: Vec<Option<(Rnic, QueuePair, MemoryRegion)>>,
    host_speed: Option<Vec<f64>>,
    next_wr_id: u64,
    fragments_total: usize,
    fragments_completed: usize,
    wall_clock: SimTime,
    tracer: Tracer,
}

impl<P: PayloadBytes, A: RingApp<P>> Runner<P, A> {
    fn new(ring: SimRing<P, A>) -> Self {
        let n = ring.config.hosts;
        if let Some(speed) = &ring.host_speed {
            assert_eq!(speed.len(), n, "need one speed factor per host");
            assert!(
                speed.iter().all(|s| s.is_finite() && *s > 0.0),
                "host speed factors must be finite and positive"
            );
        }
        let network = RingNetwork::new(n, effective_link(&ring.config));
        let mut hosts: Vec<HostState<P>> = (0..n).map(|_| HostState::new()).collect();
        let mut next_id = 0usize;
        let fragments_total: usize = ring.fragments.iter().map(Vec::len).sum();
        let max_fragment_bytes = ring
            .fragments
            .iter()
            .flat_map(|f| f.iter())
            .map(PayloadBytes::payload_bytes)
            .max()
            .unwrap_or(0)
            .max(1);
        let rnics: Vec<Option<(Rnic, QueuePair, MemoryRegion)>> = (0..n)
            .map(|_| match ring.config.transport {
                TransportModel::Rdma(cfg) => {
                    let mut rnic = Rnic::new(cfg);
                    let (region, _cost) = rnic.register(
                        SimTime::ZERO,
                        max_fragment_bytes * ring.config.buffers_per_host as u64,
                    );
                    Some((rnic, QueuePair::new(), region))
                }
                _ => None,
            })
            .collect();
        for (h, frags) in ring.fragments.into_iter().enumerate() {
            for payload in frags {
                let env = Envelope::new(
                    crate::envelope::FragmentId(next_id),
                    HostId(h),
                    n,
                    payload,
                );
                next_id += 1;
                // Local fragments enter the join queue directly; they live
                // in local memory, not in the receive pool.
                hosts[h].incoming.push_back(Held { env, pooled: false });
            }
        }
        Runner {
            config: ring.config,
            app: ring.app,
            continuous: ring.continuous,
            stopped: false,
            network,
            hosts,
            rnics,
            host_speed: ring.host_speed,
            next_wr_id: 0,
            fragments_total,
            fragments_completed: 0,
            wall_clock: SimTime::ZERO,
            tracer: if ring.trace {
                Tracer::enabled()
            } else {
                Tracer::disabled()
            },
        }
    }

    fn run(mut self) -> SimOutcome<A> {
        let budget = if self.continuous {
            // Continuous rotations are open-ended; give them a generous
            // but finite budget so a never-finishing app fails loudly.
            CONTINUOUS_EVENT_BUDGET
        } else {
            EVENT_BUDGET_PER_UNIT
                * (self.fragments_total as u64 + 1)
                * (self.config.hosts as u64 + 1)
        };
        let mut sim: Simulation<RingEvent<P>> = Simulation::new().with_event_limit(budget);
        for h in 0..self.config.hosts {
            let d = self.app.setup(HostId(h));
            sim.schedule_in(d, RingEvent::SetupDone { host: HostId(h) });
        }
        while let Some(ev) = sim.step() {
            self.handle(&mut sim, ev);
            if self.stopped {
                break;
            }
        }
        self.wall_clock = sim.now();
        if self.continuous {
            assert!(
                self.stopped || self.fragments_total == 0,
                "continuous rotation drained its event queue without the app                  declaring itself finished — the ring stalled"
            );
        } else {
            assert_eq!(
                self.fragments_completed, self.fragments_total,
                "ring run quiesced with unfinished fragments — flow-control deadlock"
            );
        }
        self.finish()
    }

    fn handle(&mut self, sim: &mut Simulation<RingEvent<P>>, ev: RingEvent<P>) {
        match ev {
            RingEvent::SetupDone { host } => {
                self.hosts[host.0].setup_done = Some(sim.now());
                self.hosts[host.0].last_join_done = sim.now();
                self.tracer.record(sim.now(), host, "setup done");
                self.try_start_join(sim, host);
            }
            RingEvent::JoinDone { host } => {
                self.on_join_done(sim, host);
            }
            RingEvent::Arrived { to, env } => {
                self.on_arrived(sim, to, env);
            }
            RingEvent::SendDone { from, completion } => {
                self.on_send_done(sim, from, completion);
            }
        }
    }

    fn on_arrived(&mut self, sim: &mut Simulation<RingEvent<P>>, to: HostId, env: Envelope<P>) {
        // Receiver-side CPU cost of the transfer. For RDMA this is only
        // reaping the completion of the pre-posted receive; for TCP it is
        // the full copy/stack/interrupt bill.
        let cost = match self.config.transport {
            TransportModel::Rdma(cfg) => {
                let mut acc = CpuAccount::new();
                acc.charge(CostCategory::Driver, cfg.completion_overhead);
                acc
            }
            _ => self
                .config
                .transport
                .comm_cpu(self.config.cpu, env.bytes(), 1),
        };
        self.hosts[to.0].join_cpu.merge(&cost);
        self.tracer
            .record(sim.now(), to, format!("received {} ({} B)", env.id, env.bytes()));
        self.hosts[to.0].incoming.push_back(Held { env, pooled: true });
        self.try_start_join(sim, to);
    }

    fn on_join_done(&mut self, sim: &mut Simulation<RingEvent<P>>, host: HostId) {
        let held = self.hosts[host.0]
            .processing
            .take()
            .expect("JoinDone without an envelope in processing");
        let state = &mut self.hosts[host.0];
        state.fragments_processed += 1;
        state.last_join_done = sim.now();
        if held.pooled {
            // The join entity is done reading the buffer element in place;
            // its receive credit returns and may unblock our predecessor.
            state.pool_used -= 1;
            let prev = self.network.prev(host);
            self.try_send(sim, prev);
        }
        let mut env = held.env;
        let id = env.id;
        if self.continuous {
            if self.app.finished() {
                self.tracer
                    .record(sim.now(), host, "application finished — stopping rotation");
                self.stopped = true;
                return;
            }
            // The hot set never retires: reset the hop budget and keep it
            // circulating (single-host "rings" just requeue locally).
            env.hops_remaining = self.config.hosts.max(2);
            if self.config.hosts == 1 {
                self.hosts[host.0].incoming.push_back(Held { env, pooled: false });
            } else {
                self.hosts[host.0].outgoing.push_back(env);
                self.try_send(sim, host);
            }
        } else if env.consume_hop() {
            self.tracer
                .record(sim.now(), host, format!("processed {id}, queueing forward"));
            self.hosts[host.0].outgoing.push_back(env);
            self.try_send(sim, host);
        } else {
            self.tracer.record(sim.now(), host, format!("retired {id}"));
            self.fragments_completed += 1;
        }
        self.try_start_join(sim, host);
    }

    fn on_send_done(
        &mut self,
        sim: &mut Simulation<RingEvent<P>>,
        from: HostId,
        completion: Option<Completion>,
    ) {
        self.hosts[from.0].sending = false;
        if let (Some(completion), Some((_, qp, _))) = (completion, self.rnics[from.0].as_mut()) {
            // Reap the send completion from the CQ — the signal that the
            // buffer element may be reused.
            qp.complete(completion);
            let reaped = qp.poll_cq();
            debug_assert_eq!(reaped.map(|c| c.wr_id), Some(completion.wr_id));
        }
        self.try_send(sim, from);
    }

    /// Starts the join entity on the next queued envelope, if idle.
    fn try_start_join(&mut self, sim: &mut Simulation<RingEvent<P>>, host: HostId) {
        let state = &self.hosts[host.0];
        if state.setup_done.is_none() || state.processing.is_some() || state.incoming.is_empty() {
            return;
        }
        let held = self.hosts[host.0].incoming.pop_front().expect("checked non-empty");
        let d_base = self.app.process(host, sim.now(), &held.env.payload);
        let d_base = match &self.host_speed {
            Some(speed) => d_base * (1.0 / speed[host.0]),
            None => d_base,
        };
        let d_eff = self.effective_join_duration(d_base, held.env.bytes());
        let state = &mut self.hosts[host.0];
        state
            .join_cpu
            .charge(CostCategory::Compute, d_base * self.config.join_threads as u64);
        state.join_busy += d_eff;
        self.tracer
            .record(sim.now(), host, format!("join start {} for {}", held.env.id, d_eff));
        self.hosts[host.0].processing = Some(held);
        sim.schedule_in(d_eff, RingEvent::JoinDone { host });
    }

    /// Applies the transport's interference model to a base join duration.
    fn effective_join_duration(&self, d_base: SimDuration, bytes: u64) -> SimDuration {
        let pollution = self.config.transport.pollution_factor();
        if self.config.transport.is_rdma() || self.config.hosts == 1 {
            return d_base;
        }
        // Per processed envelope the host both receives and sends one
        // envelope of comparable size.
        let comm_cpu = self
            .config
            .transport
            .comm_cpu(self.config.cpu, bytes, 1)
            .total_busy()
            * 2;
        let threads = self.config.join_threads as u64;
        let cores = self.config.cpu.cores as u64;
        let contended = (d_base * threads + comm_cpu) / cores;
        d_base.max(contended) * pollution
    }

    /// Forwards the next outgoing envelope if the transmitter is free and
    /// the successor has a free buffer element.
    fn try_send(&mut self, sim: &mut Simulation<RingEvent<P>>, host: HostId) {
        if self.config.hosts == 1 {
            return;
        }
        let next = self.network.next(host);
        if self.hosts[host.0].sending
            || self.hosts[host.0].outgoing.is_empty()
            || self.hosts[next.0].pool_used >= self.config.buffers_per_host
        {
            return;
        }
        let env = self.hosts[host.0].outgoing.pop_front().expect("checked non-empty");
        let bytes = env.bytes();
        // Pre-post the receive buffer at the successor.
        self.hosts[next.0].pool_used += 1;
        let mut pending_completion = None;
        let reservation = if let Some((rnic, qp, region)) = self.rnics[host.0].as_mut() {
            // RDMA: post a work request against the registered region; the
            // RNIC moves the data autonomously. Host CPU pays only the
            // posting cost.
            let wr = WorkRequest {
                wr_id: self.next_wr_id,
                region: region.id,
                bytes,
            };
            self.next_wr_id += 1;
            let link = self
                .network
                .outgoing_link_mut(host)
                .expect("multi-host ring has links");
            let outcome = qp.post_send(rnic, link, sim.now(), simnet::link::Direction::Forward, wr);
            self.hosts[host.0]
                .join_cpu
                .charge(CostCategory::Driver, outcome.post_cpu);
            pending_completion = Some(outcome.completion);
            outcome.reservation
        } else {
            // Software TCP: the kernel does the moving; charge the full
            // per-byte CPU bill to the sender.
            let cost = self.config.transport.comm_cpu(self.config.cpu, bytes, 1);
            self.hosts[host.0].join_cpu.merge(&cost);
            self.network.reserve_hop(sim.now(), host, bytes)
        };
        self.hosts[host.0].sending = true;
        self.hosts[host.0].bytes_forwarded += bytes;
        self.tracer.record(
            sim.now(),
            host,
            format!("send {} ({} B) → {}", env.id, bytes, next),
        );
        sim.schedule_at(
            reservation.wire_free,
            RingEvent::SendDone {
                from: host,
                completion: pending_completion,
            },
        );
        sim.schedule_at(reservation.arrival, RingEvent::Arrived { to: next, env });
    }

    fn finish(self) -> SimOutcome<A> {
        let hosts: Vec<HostMetrics> = self
            .hosts
            .iter()
            .map(|h| {
                let setup_done = h.setup_done.unwrap_or(SimTime::ZERO);
                let window = h.last_join_done.saturating_duration_since(setup_done);
                HostMetrics {
                    setup: setup_done.saturating_duration_since(SimTime::ZERO),
                    join_busy: h.join_busy,
                    sync: window.saturating_sub(h.join_busy),
                    join_window: window,
                    cpu: h.join_cpu,
                    fragments_processed: h.fragments_processed,
                    bytes_forwarded: h.bytes_forwarded,
                }
            })
            .collect();
        let metrics = RingMetrics {
            hosts,
            wall_clock: self.wall_clock.saturating_duration_since(SimTime::ZERO),
            fragments_completed: self.fragments_completed,
        };
        SimOutcome {
            metrics,
            app: self.app,
            trace: self.tracer,
        }
    }
}

/// Bandwidth helper re-exported for harness code that wants to express the
/// configured TCP cap.
pub fn tcp_wire_cap(config: &RingConfig) -> Bandwidth {
    effective_link(config).throughput().peak()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::FixedCostApp;

    fn payloads(hosts: usize, per_host: usize, bytes: usize) -> Vec<Vec<Vec<u8>>> {
        (0..hosts)
            .map(|_| (0..per_host).map(|_| vec![0u8; bytes]).collect())
            .collect()
    }

    fn small_config(hosts: usize) -> RingConfig {
        RingConfig::paper(hosts)
    }

    #[test]
    fn every_host_processes_every_fragment() {
        let hosts = 4;
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
        );
        let out = SimRing::new(small_config(hosts), payloads(hosts, 3, 1 << 20), app).run();
        assert_eq!(out.metrics.fragments_completed, 12);
        for h in &out.metrics.hosts {
            assert_eq!(h.fragments_processed, 12, "each host sees all fragments");
        }
        assert_eq!(out.app.processed, vec![12; hosts]);
    }

    #[test]
    fn single_host_ring_needs_no_network() {
        let app = FixedCostApp::new(1, SimDuration::from_millis(5), SimDuration::from_millis(10));
        let out = SimRing::new(small_config(1), payloads(1, 4, 1 << 20), app).run();
        assert_eq!(out.metrics.fragments_completed, 4);
        assert_eq!(out.metrics.hosts[0].bytes_forwarded, 0);
        // 5 ms setup + 4 × 10 ms joins.
        assert_eq!(out.metrics.wall_clock, SimDuration::from_millis(45));
        assert_eq!(out.metrics.sync_time(), SimDuration::ZERO);
    }

    #[test]
    fn communication_overlaps_computation_with_rdma() {
        // Joins slow enough to hide transfers: no sync time expected.
        let hosts = 3;
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_millis(50),
        );
        let out = SimRing::new(small_config(hosts), payloads(hosts, 2, 1 << 20), app).run();
        // A 1 MB transfer takes ~0.85 ms — far below the 50 ms join.
        let sync = out.metrics.sync_time();
        assert!(
            sync < SimDuration::from_millis(5),
            "sync should be hidden, got {sync}"
        );
    }

    #[test]
    fn fast_joins_expose_sync_time() {
        // Joins much faster than transfers: the join entity must wait.
        let hosts = 3;
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_micros(100),
        );
        let out = SimRing::new(small_config(hosts), payloads(hosts, 4, 16 << 20), app).run();
        // A 16 MB transfer takes ~13 ms; joins take 0.1 ms.
        let sync = out.metrics.sync_time();
        assert!(
            sync > SimDuration::from_millis(20),
            "transfers must dominate, got sync {sync}"
        );
    }

    #[test]
    fn tcp_runs_slower_than_rdma() {
        let hosts = 4;
        let mk_app = || {
            FixedCostApp::new(
                hosts,
                SimDuration::from_millis(1),
                SimDuration::from_millis(5),
            )
        };
        let rdma = SimRing::new(small_config(hosts), payloads(hosts, 3, 4 << 20), mk_app()).run();
        let tcp = SimRing::new(
            RingConfig::paper_tcp(hosts),
            payloads(hosts, 3, 4 << 20),
            mk_app(),
        )
        .run();
        assert!(
            tcp.metrics.join_time() > rdma.metrics.join_time(),
            "TCP join phase ({}) must exceed RDMA ({})",
            tcp.metrics.join_time(),
            rdma.metrics.join_time()
        );
    }

    #[test]
    fn tcp_charges_communication_cpu() {
        let hosts = 2;
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_millis(5),
        );
        let out = SimRing::new(
            RingConfig::paper_tcp(hosts),
            payloads(hosts, 2, 4 << 20),
            app,
        )
        .run();
        let copy = out.metrics.hosts[0].cpu.busy(CostCategory::DataCopy);
        assert!(copy > SimDuration::ZERO, "TCP must charge data-copy CPU");
        let rdma_out = SimRing::new(
            small_config(hosts),
            payloads(hosts, 2, 4 << 20),
            FixedCostApp::new(hosts, SimDuration::from_millis(1), SimDuration::from_millis(5)),
        )
        .run();
        assert_eq!(
            rdma_out.metrics.hosts[0].cpu.busy(CostCategory::DataCopy),
            SimDuration::ZERO,
            "RDMA must not copy payload on the CPU"
        );
    }

    #[test]
    fn buffer_depth_one_still_completes() {
        let hosts = 3;
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
        );
        let cfg = small_config(hosts).with_buffers(1);
        let out = SimRing::new(cfg, payloads(hosts, 4, 1 << 20), app).run();
        assert_eq!(out.metrics.fragments_completed, 12);
    }

    #[test]
    fn deeper_buffers_reduce_sync() {
        let hosts = 4;
        let run = |buffers: usize| {
            let app = FixedCostApp::new(
                hosts,
                SimDuration::from_millis(1),
                SimDuration::from_millis(8),
            );
            let cfg = small_config(hosts).with_buffers(buffers);
            SimRing::new(cfg, payloads(hosts, 4, 8 << 20), app)
                .run()
                .metrics
        };
        let shallow = run(1);
        let deep = run(3);
        assert!(
            deep.join_time() <= shallow.join_time(),
            "deep buffers {} vs shallow {}",
            deep.join_time(),
            shallow.join_time()
        );
    }

    #[test]
    fn uneven_fragment_distribution_completes() {
        let hosts = 3;
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
        );
        let mut frags = payloads(hosts, 0, 0);
        frags[0] = (0..5).map(|_| vec![0u8; 1 << 20]).collect();
        let out = SimRing::new(small_config(hosts), frags, app).run();
        assert_eq!(out.metrics.fragments_completed, 5);
        for h in &out.metrics.hosts {
            assert_eq!(h.fragments_processed, 5);
        }
    }

    #[test]
    fn empty_run_finishes_after_setup() {
        let hosts = 2;
        let app = FixedCostApp::new(hosts, SimDuration::from_millis(3), SimDuration::ZERO);
        let out = SimRing::new(small_config(hosts), payloads(hosts, 0, 0), app).run();
        assert_eq!(out.metrics.fragments_completed, 0);
        assert_eq!(out.metrics.wall_clock, SimDuration::from_millis(3));
    }

    #[test]
    fn trace_records_the_protocol() {
        let hosts = 2;
        let app = FixedCostApp::new(
            hosts,
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
        );
        let out = SimRing::new(small_config(hosts), payloads(hosts, 1, 1 << 20), app)
            .with_trace(true)
            .run();
        assert!(out.trace.matching("setup done").count() == 2);
        assert!(out.trace.matching("send").count() >= 1);
        assert!(out.trace.matching("retired").count() == 2);
    }

    #[test]
    fn determinism_same_inputs_same_schedule() {
        let hosts = 3;
        let run = || {
            let app = FixedCostApp::new(
                hosts,
                SimDuration::from_millis(1),
                SimDuration::from_millis(2),
            );
            SimRing::new(small_config(hosts), payloads(hosts, 3, 2 << 20), app)
                .run()
                .metrics
        };
        assert_eq!(run(), run());
    }

    /// App for continuous-mode tests: finishes after a target number of
    /// processed buffers.
    struct CountingApp {
        processed: usize,
        target: usize,
    }

    impl RingApp<Vec<u8>> for CountingApp {
        fn setup(&mut self, _host: HostId) -> SimDuration {
            SimDuration::from_micros(10)
        }

        fn process(
            &mut self,
            _host: HostId,
            _now: simnet::time::SimTime,
            _payload: &Vec<u8>,
        ) -> SimDuration {
            self.processed += 1;
            SimDuration::from_micros(50)
        }

        fn finished(&self) -> bool {
            self.processed >= self.target
        }
    }

    #[test]
    fn continuous_mode_circulates_past_one_revolution() {
        let hosts = 3;
        let per_host = 2;
        // One revolution = hosts × total fragments = 18 processings; ask
        // for several revolutions' worth.
        let target = hosts * hosts * per_host * 4;
        let app = CountingApp {
            processed: 0,
            target,
        };
        let out = SimRing::new(small_config(hosts), payloads(hosts, per_host, 4096), app)
            .continuous()
            .run();
        assert!(out.app.processed >= target);
        // Every host kept processing well beyond a single revolution.
        for h in &out.metrics.hosts {
            assert!(h.fragments_processed > hosts * per_host);
        }
    }

    #[test]
    fn continuous_mode_stops_promptly_when_finished() {
        let hosts = 2;
        let app = CountingApp {
            processed: 0,
            target: 1,
        };
        let out = SimRing::new(small_config(hosts), payloads(hosts, 3, 1024), app)
            .continuous()
            .run();
        // Stopped at (or just past) the first processed buffer.
        assert!(out.app.processed <= 2, "got {}", out.app.processed);
    }

    #[test]
    fn continuous_single_host_requeues_locally() {
        let app = CountingApp {
            processed: 0,
            target: 10,
        };
        let out = SimRing::new(small_config(1), payloads(1, 2, 1024), app)
            .continuous()
            .run();
        assert!(out.app.processed >= 10);
        assert_eq!(out.metrics.hosts[0].bytes_forwarded, 0);
    }

    #[test]
    #[should_panic(expected = "one fragment list per host")]
    fn fragment_list_shape_is_validated() {
        let app = FixedCostApp::new(2, SimDuration::ZERO, SimDuration::ZERO);
        let _ = SimRing::new(small_config(2), payloads(3, 1, 10), app);
    }
}
