//! Hand-rolled hierarchical timer wheel for the reactor driver.
//!
//! The blocking TCP driver dedicates an OS thread to timers: a `Vec` of
//! `(Instant, TimerKind)` scanned under a condvar. The reactor owns every
//! socket from one event loop, so timers must become *data* the loop can
//! ask two questions of: "how long may I sleep?" and "what fired?". A
//! hierarchical timer wheel answers both in O(1) amortized per timer —
//! the classic hashed-wheel design (Varghese & Lauck) with four levels of
//! 64 slots, entries cascading toward level 0 as their deadline
//! approaches.
//!
//! The wheel is deliberately clock-agnostic: deadlines are `u64`
//! nanoseconds on an axis the *caller* defines (the reactor uses
//! nanoseconds since its own epoch `Instant`). Nothing in here reads a
//! clock, so the expiry ordering and cascade tests below run in pure
//! virtual time.
//!
//! Guarantees:
//!
//! - **Never early.** An entry's tick is `deadline.div_ceil(resolution)`,
//!   and [`TimerWheel::advance`] only fires ticks `<= now / resolution`,
//!   so a timer fires at or after its deadline — a spuriously early
//!   retransmit `Tick` would desynchronize the shared fault dice.
//! - **Deadline order.** Each `advance` emits expired entries sorted by
//!   `(deadline, insertion id)`, even when a cascade delivers several
//!   levels' worth at once.
//! - **Lazy cancellation.** [`TimerWheel::cancel`] is O(1): the entry is
//!   unlinked from the pending index and physically dropped whenever its
//!   slot is next drained.

use std::collections::HashMap;
use std::time::Duration;

/// Slots per wheel level (64 ⇒ 6 bits of the tick per level).
const SLOT_BITS: u32 = 6;
/// Number of slots in one level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Number of wheel levels; spans `64^4` ticks before overflow parking.
const LEVELS: usize = 4;

/// Handle returned by [`TimerWheel::insert`]; pass to
/// [`TimerWheel::cancel`] to disarm before expiry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(u64);

#[derive(Debug)]
struct Entry<T> {
    id: u64,
    /// Quantized deadline: the first tick at or after `deadline_ns`.
    tick: u64,
    deadline_ns: u64,
    item: T,
}

/// Hierarchical timer wheel over a caller-defined `u64` nanosecond axis.
#[derive(Debug)]
pub struct TimerWheel<T> {
    resolution_ns: u64,
    now_tick: u64,
    next_id: u64,
    /// `levels[l][s]` holds entries whose tick hashes to slot `s` of
    /// level `l`; level 0 is exact, upper levels cascade downward.
    levels: Vec<Vec<Vec<Entry<T>>>>,
    /// Entries inserted with a deadline already in the past; fired by the
    /// next [`TimerWheel::advance`] regardless of its `now`.
    due: Vec<Entry<T>>,
    /// Entries beyond the wheel horizon (`64^4` ticks); re-placed at the
    /// start of every `advance`.
    overflow: Vec<Entry<T>>,
    /// Live (armed, not yet fired or cancelled) timers: id → deadline.
    /// Doubles as the cancellation filter and the `next_deadline` index.
    pending: HashMap<u64, u64>,
}

impl<T> TimerWheel<T> {
    /// Creates an empty wheel quantizing deadlines to `resolution`
    /// (clamped to at least 1 ns).
    pub fn new(resolution: Duration) -> Self {
        let resolution_ns = u64::try_from(resolution.as_nanos())
            .unwrap_or(u64::MAX)
            .max(1);
        TimerWheel {
            resolution_ns,
            now_tick: 0,
            next_id: 0,
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            due: Vec::new(),
            overflow: Vec::new(),
            pending: HashMap::new(),
        }
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Arms a timer for `deadline_ns` and returns its handle.
    pub fn insert(&mut self, deadline_ns: u64, item: T) -> TimerId {
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        self.pending.insert(id, deadline_ns);
        let tick = deadline_ns.div_ceil(self.resolution_ns);
        self.place(Entry {
            id,
            tick,
            deadline_ns,
            item,
        });
        TimerId(id)
    }

    /// Disarms `id`. Returns `true` when the timer was still pending
    /// (not yet fired or cancelled). The slot entry is dropped lazily.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        self.pending.remove(&id.0).is_some()
    }

    /// Earliest armed deadline, in caller nanoseconds. The wheel fires
    /// it on the first `advance(now)` with `now / resolution >=
    /// deadline.div_ceil(resolution)`, so a driver sleeping until this
    /// instant (plus one resolution quantum) never oversleeps a timer.
    pub fn next_deadline(&self) -> Option<u64> {
        self.pending.values().min().copied()
    }

    /// Advances virtual time to `now_ns`, appending every expired entry
    /// to `out` in `(deadline, insertion id)` order. Cancelled entries
    /// are dropped silently.
    pub fn advance(&mut self, now_ns: u64, out: &mut Vec<(TimerId, T)>) {
        let target = (now_ns / self.resolution_ns).max(self.now_tick);
        let mut fired: Vec<Entry<T>> = Vec::new();
        // Anything parked past the horizon may have come into range.
        let overflow = std::mem::take(&mut self.overflow);
        for e in overflow {
            if self.pending.contains_key(&e.id) {
                self.place(e);
            }
        }
        for e in std::mem::take(&mut self.due) {
            if self.pending.remove(&e.id).is_some() {
                fired.push(e);
            }
        }
        while self.now_tick < target {
            if self.pending.is_empty() {
                // Nothing armed: stale cancelled entries are GC'd when
                // their slot is eventually revisited.
                self.now_tick = target;
                break;
            }
            self.now_tick += 1;
            let t = self.now_tick;
            // Cascade boundaries, highest level first so an entry can
            // fall several levels in one step and still fire at `t`.
            for level in (1..LEVELS).rev() {
                let shift = SLOT_BITS * level as u32;
                if t.trailing_zeros() >= shift {
                    let slot = ((t >> shift) as usize) & (SLOTS - 1);
                    for e in self.drain_slot(level, slot) {
                        if self.pending.contains_key(&e.id) {
                            self.place(e);
                        }
                    }
                }
            }
            let slot = (t as usize) & (SLOTS - 1);
            for e in self.drain_slot(0, slot) {
                if e.tick <= t {
                    if self.pending.remove(&e.id).is_some() {
                        fired.push(e);
                    } // else cancelled: dropped lazily
                } else if self.pending.contains_key(&e.id) {
                    // Same slot, a later lap (defensive; placement keeps
                    // level 0 within one lap).
                    self.place(e);
                }
            }
            // A cascade can route an entry whose tick *is* this tick to
            // the due list; it must fire now, not next call.
            if !self.due.is_empty() {
                for e in std::mem::take(&mut self.due) {
                    if self.pending.remove(&e.id).is_some() {
                        fired.push(e);
                    }
                }
            }
        }
        fired.sort_by_key(|e| (e.deadline_ns, e.id));
        out.extend(fired.into_iter().map(|e| (TimerId(e.id), e.item)));
    }

    /// Routes an entry to the level whose span covers its distance from
    /// `now_tick`; overdue entries go to the `due` list, far entries to
    /// `overflow`.
    fn place(&mut self, e: Entry<T>) {
        let delta = e.tick.saturating_sub(self.now_tick);
        if delta == 0 {
            self.due.push(e);
            return;
        }
        let mut routed = None;
        for level in 0..LEVELS {
            let shift = SLOT_BITS * (level as u32 + 1);
            if shift < u64::BITS && delta < 1u64 << shift {
                routed = Some(level);
                break;
            }
        }
        match routed {
            Some(level) => {
                let shift = SLOT_BITS * level as u32;
                let slot = ((e.tick >> shift) as usize) & (SLOTS - 1);
                if let Some(v) = self
                    .levels
                    .get_mut(level)
                    .and_then(|slots| slots.get_mut(slot))
                {
                    v.push(e);
                } else {
                    // Unreachable by construction (level < LEVELS,
                    // slot < SLOTS); parking in `due` keeps the timer
                    // from being lost rather than panicking.
                    self.due.push(e);
                }
            }
            None => self.overflow.push(e),
        }
    }

    fn drain_slot(&mut self, level: usize, slot: usize) -> Vec<Entry<T>> {
        self.levels
            .get_mut(level)
            .and_then(|slots| slots.get_mut(slot))
            .map(std::mem::take)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn wheel() -> TimerWheel<&'static str> {
        TimerWheel::new(Duration::from_micros(100))
    }

    fn fire(w: &mut TimerWheel<&'static str>, now_ns: u64) -> Vec<&'static str> {
        let mut out = Vec::new();
        w.advance(now_ns, &mut out);
        out.into_iter().map(|(_, item)| item).collect()
    }

    #[test]
    fn fires_in_deadline_order() {
        let mut w = wheel();
        w.insert(5 * MS, "c");
        w.insert(MS, "a");
        w.insert(3 * MS, "b");
        assert_eq!(w.next_deadline(), Some(MS));
        assert_eq!(fire(&mut w, 10 * MS), vec!["a", "b", "c"]);
        assert!(w.is_empty());
        assert_eq!(w.next_deadline(), None);
    }

    #[test]
    fn never_fires_early() {
        let mut w = wheel();
        w.insert(2 * MS, "t");
        assert_eq!(fire(&mut w, 2 * MS - 1), Vec::<&str>::new());
        assert_eq!(w.len(), 1);
        assert_eq!(fire(&mut w, 2 * MS), vec!["t"]);
    }

    #[test]
    fn simultaneous_deadlines_fire_in_insertion_order() {
        let mut w = wheel();
        w.insert(MS, "first");
        w.insert(MS, "second");
        w.insert(MS, "third");
        assert_eq!(fire(&mut w, MS), vec!["first", "second", "third"]);
    }

    #[test]
    fn cascades_across_levels() {
        let mut w = wheel();
        // 100 µs resolution ⇒ level 0 spans 6.4 ms, level 1 spans
        // 409.6 ms, level 2 spans ~26.2 s. Mix entries across all three
        // and step time in uneven jumps so every firing requires at
        // least one cascade.
        w.insert(3 * MS, "l0");
        w.insert(50 * MS, "l1");
        w.insert(7_000 * MS, "l2");
        assert_eq!(fire(&mut w, 10 * MS), vec!["l0"]);
        assert_eq!(fire(&mut w, 49 * MS), Vec::<&str>::new());
        assert_eq!(fire(&mut w, 60 * MS), vec!["l1"]);
        assert_eq!(fire(&mut w, 6_999 * MS), Vec::<&str>::new());
        assert_eq!(w.len(), 1);
        assert_eq!(fire(&mut w, 8_000 * MS), vec!["l2"]);
        assert!(w.is_empty());
    }

    #[test]
    fn past_deadline_fires_on_next_advance() {
        let mut w = wheel();
        assert_eq!(fire(&mut w, 10 * MS), Vec::<&str>::new());
        w.insert(MS, "late");
        assert_eq!(w.next_deadline(), Some(MS));
        // `now` has not moved, but the deadline is already behind us.
        assert_eq!(fire(&mut w, 10 * MS), vec!["late"]);
    }

    #[test]
    fn cancel_suppresses_expiry() {
        let mut w = wheel();
        let a = w.insert(MS, "a");
        w.insert(2 * MS, "b");
        assert!(w.cancel(a));
        assert!(!w.cancel(a), "second cancel reports not-pending");
        assert_eq!(w.len(), 1);
        assert_eq!(w.next_deadline(), Some(2 * MS));
        assert_eq!(fire(&mut w, 5 * MS), vec!["b"]);
    }

    #[test]
    fn cancelled_id_is_dead_after_firing() {
        let mut w = wheel();
        let a = w.insert(MS, "a");
        assert_eq!(fire(&mut w, MS), vec!["a"]);
        assert!(!w.cancel(a), "fired timers cannot be cancelled");
    }

    #[test]
    fn rearm_after_cancel_is_a_fresh_timer() {
        let mut w = wheel();
        let a = w.insert(MS, "old");
        w.cancel(a);
        let b = w.insert(4 * MS, "new");
        assert_ne!(a, b);
        assert_eq!(fire(&mut w, 2 * MS), Vec::<&str>::new());
        assert_eq!(fire(&mut w, 4 * MS), vec!["new"]);
    }

    #[test]
    fn overflow_entries_come_back_into_range() {
        // 1 ns resolution shrinks the horizon to 2^24 ns ≈ 16.8 ms, so a
        // 20 ms deadline parks in overflow and must still fire on time.
        let mut w: TimerWheel<&str> = TimerWheel::new(Duration::from_nanos(1));
        w.insert(20 * MS, "far");
        w.insert(MS, "near");
        let mut out = Vec::new();
        w.advance(MS, &mut out);
        assert_eq!(out.len(), 1);
        w.advance(19 * MS, &mut out);
        assert_eq!(out.len(), 1, "20 ms timer must not fire at 19 ms");
        w.advance(20 * MS, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn next_deadline_bounds_the_sleep() {
        let mut w = wheel();
        w.insert(250 * MS, "t");
        let d = w.next_deadline().unwrap();
        assert!(d <= 250 * MS, "sleep bound must never overshoot");
        let mut out = Vec::new();
        // Sleeping to the bound plus one quantum always observes the
        // expiry.
        w.advance(d + 100_000, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn zero_resolution_is_clamped() {
        let mut w: TimerWheel<&'static str> = TimerWheel::new(Duration::from_nanos(0));
        w.insert(5, "t");
        assert_eq!(fire(&mut w, 5), vec!["t"]);
    }
}
