//! The reactor backend: the loopback-TCP ring on one event-loop thread.
//!
//! This is the fourth driver of the sans-IO [`crate::protocol`] core. It
//! speaks exactly the wire protocol of [`crate::tcp_backend`] — port-0
//! listeners, seeded hello handshakes, `[kind][len][body]` frames, the
//! shared `(sender, wire-seq, attempt)` fault dice — but replaces the
//! blocking driver's thread-per-endpoint concurrency model with a single
//! reactor thread that owns every socket:
//!
//! * **Readiness, not threads** — all sockets are nonblocking and
//!   registered with an epoll instance reached through a minimal vendored
//!   syscall shim (no libc dependency; a portable readiness-sweep
//!   fallback keeps non-Linux targets building). A readable socket feeds
//!   the incremental [`FrameDecoder`]; decoded frames become protocol
//!   [`Input`]s on the spot.
//! * **Backpressure as queue depth** — [`Output::Send`] encodes into a
//!   pooled buffer and lands on the connection's pending-write queue. The
//!   reactor writes as far as the kernel accepts; `WouldBlock` parks the
//!   frame at its exact byte offset and arms write-readiness. The
//!   protocol's wire-free credit ([`Input::SendDone`]) is reported only
//!   when the kernel accepted the last byte, so a full socket buffer
//!   holds send credit exactly like the blocking driver's blocked
//!   `write_all`.
//! * **A timer wheel, not a timer thread** — [`Output::ArmTimer`]
//!   deadlines, fault-plan schedules and delayed-frame release times all
//!   land in a hand-rolled hierarchical [`TimerWheel`], polled between
//!   readiness rounds. The epoll timeout is the earlier of the next
//!   wheel deadline and the stall watchdog.
//! * **A bounded join pool** — user join callbacks still need real
//!   threads (they block), but the pool is sized to the machine, not the
//!   ring: jobs are serialized per host (matching the one-job-per-host
//!   worker threads of the blocking driver) and completions wake the
//!   reactor through a loopback wake socket.
//!
//! The thread count is therefore `1 + min(hosts, cores)` plus nothing per
//! connection — a 64-host ring that costs the blocking driver hundreds of
//! threads runs here on a handful, and a 256-host ring (ring-neighbor
//! mesh; full meshes are only built when a fault or rescale plan needs
//! healing routes) stays inside the same budget.
//!
//! Crash semantics are byte-identical to the blocking driver: a scheduled
//! crash queues a write-side FIN *behind* the host's pending frames (an
//! attempt whose fate was reported live must still arrive), the dead
//! host's read side stays open as the salvage path, and healing, rescale
//! and the retransmission protocol run unchanged. The four-way parity
//! suite pins this backend's fault counters to the sim, thread and
//! blocking-TCP backends.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use simnet::fault::{FaultPlan, RescalePlan};
use simnet::span::{counter, SpanKind, SpanTracer, Track};
use simnet::time::{SimDuration, SimTime};
use simnet::topology::HostId;

use crate::config::RingConfig;
use crate::envelope::{Envelope, FragmentId};
use crate::error::{FrameError, RingError};
use crate::metrics::{HostMetrics, RingMetrics};
use crate::protocol::{
    envelope_batches, query_batches, teardown, Input, Output, ProtocolConfig, RingProtocol, Timer,
};
use crate::tcp_backend::{
    build_mesh_pairs, encode_ack_into, encode_envelope_into, socket_err, Frame, FrameBufPool,
    FrameDecoder, MeshWorkload, WirePayload,
};
use crate::thread_backend::{finish_spans, run_single_host, ErrorCollector, SharedSpans};
use crate::wheel::{TimerId, TimerWheel};

/// Watchdog teardown reason (driver-local; not part of the shared
/// protocol cascade).
const STALLED: &str = "reactor ring stalled: no event arrived within the watchdog window";
/// Invariant: [`Output::StartJoin`] always has a payload in the slot.
const EMPTY_SLOT: &str = "StartJoin with an empty processing slot";
/// Invariant: [`Output::Ack`] is only emitted while a delivery is being
/// processed, which names the acking host.
const ACK_OUT_OF_CONTEXT: &str = "ack emitted outside a delivery context";

/// Granularity of the reactor's timer wheel. Protocol backoffs are
/// milliseconds-scale wall timeouts, so 100 µs keeps rounding error two
/// orders of magnitude below the smallest deadline while level 0 of the
/// wheel still spans 6.4 ms.
const WHEEL_RESOLUTION: Duration = Duration::from_micros(100);

/// Poll token of the worker-pool wake socket (never a connection index).
const WAKE_TOKEN: usize = usize::MAX;

/// How long one fallback readiness sweep pauses when nothing was ready,
/// bounding the sweep loop's spin without epoll's blocking wait.
const SWEEP_PAUSE: Duration = Duration::from_micros(500);

// ---------------------------------------------------------------------------
// Vendored epoll shim (Linux; raw syscalls, no libc)
// ---------------------------------------------------------------------------

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    //! The four raw syscalls the reactor needs on Linux, vendored the way
    //! `third_party/loom` vendors its shims: numbers and ABI straight
    //! from the kernel headers, no libc crate in between.

    use std::arch::asm;

    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: usize = 0o2000000;
    const EINTR: isize = -4;

    #[cfg(target_arch = "x86_64")]
    mod nr {
        pub const EPOLL_CREATE1: usize = 291;
        pub const EPOLL_CTL: usize = 233;
        pub const EPOLL_WAIT: usize = 232;
        pub const CLOSE: usize = 3;
    }
    #[cfg(target_arch = "aarch64")]
    mod nr {
        pub const EPOLL_CREATE1: usize = 20;
        pub const EPOLL_CTL: usize = 21;
        /// aarch64 has no plain `epoll_wait`; `epoll_pwait` with a null
        /// sigmask is the same call.
        pub const EPOLL_WAIT: usize = 22;
        pub const CLOSE: usize = 57;
    }

    /// `struct epoll_event`. Packed on x86_64 (the kernel ABI there has
    /// no padding between `events` and `data`), naturally aligned on
    /// aarch64.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(target_arch = "aarch64", repr(C))]
    #[derive(Clone, Copy, Default)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(target_arch = "x86_64")]
    fn syscall4(n: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
        let ret: isize;
        // SAFETY: the x86_64 Linux syscall ABI — number in rax, args in
        // rdi/rsi/rdx/r10, rcx/r11 clobbered. Every call site passes
        // pointers that live across the call and lengths that match them.
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") n as isize => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                in("r10") a4,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    fn syscall4(n: usize, a1: usize, a2: usize, a3: usize, a4: usize) -> isize {
        let ret: isize;
        // SAFETY: the aarch64 Linux syscall ABI — number in x8, args in
        // x0..x5, result in x0. x4/x5 are zeroed so `epoll_pwait` sees a
        // null sigmask. Every call site passes pointers that live across
        // the call and lengths that match them.
        unsafe {
            asm!(
                "svc 0",
                in("x8") n,
                inlateout("x0") a1 as isize => ret,
                in("x1") a2,
                in("x2") a3,
                in("x3") a4,
                in("x4") 0usize,
                in("x5") 0usize,
                options(nostack),
            );
        }
        ret
    }

    /// An owned epoll instance.
    pub struct Epoll {
        epfd: i32,
    }

    impl Epoll {
        /// A fresh epoll instance, or `None` when the kernel refuses
        /// (seccomp sandboxes, exotic kernels) — the caller falls back to
        /// readiness sweeps.
        pub fn new() -> Option<Epoll> {
            let fd = syscall4(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0);
            if fd < 0 {
                return None;
            }
            Some(Epoll { epfd: fd as i32 })
        }

        /// One `epoll_ctl` operation; `true` on success.
        pub fn ctl(&self, op: i32, fd: i32, events: u32, data: u64) -> bool {
            let ev = EpollEvent { events, data };
            let ptr = if op == EPOLL_CTL_DEL {
                0usize
            } else {
                (&ev as *const EpollEvent) as usize
            };
            syscall4(
                nr::EPOLL_CTL,
                self.epfd as usize,
                op as usize,
                fd as usize,
                ptr,
            ) == 0
        }

        /// Blocks up to `timeout_ms` (-1 blocks indefinitely) and fills
        /// `events`; returns the ready count, 0 on timeout, negative
        /// errno on failure. `EINTR` retries internally.
        pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> isize {
            loop {
                let n = syscall4(
                    nr::EPOLL_WAIT,
                    self.epfd as usize,
                    events.as_mut_ptr() as usize,
                    events.len(),
                    timeout_ms as isize as usize,
                );
                if n != EINTR {
                    return n;
                }
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            let _ = syscall4(nr::CLOSE, self.epfd as usize, 0, 0, 0);
        }
    }
}

// ---------------------------------------------------------------------------
// Poller: epoll when available, readiness sweeps otherwise
// ---------------------------------------------------------------------------

/// What one poll round produced.
enum Wait {
    /// Readiness events were collected into the caller's buffer.
    Ready,
    /// The timeout elapsed with nothing ready.
    Idle,
    /// No readiness facility: the caller should sweep every connection
    /// with nonblocking reads/writes (each bounded by `WouldBlock`).
    Sweep,
}

/// The readiness source. Epoll owns an interest list keyed by token; the
/// fallback has no kernel-side state at all — `wait` just paces the sweep.
enum Poller {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Epoll {
        ep: sys::Epoll,
        /// Interest mask currently registered per token.
        masks: HashMap<usize, u32>,
        buf: Vec<sys::EpollEvent>,
        /// A failed `epoll_ctl` degrades the whole poller to sweeps: a
        /// half-registered interest list would silently starve sockets.
        degraded: bool,
    },
    Fallback,
}

impl Poller {
    fn new() -> Poller {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if let Some(ep) = sys::Epoll::new() {
            return Poller::Epoll {
                ep,
                masks: HashMap::new(),
                buf: vec![sys::EpollEvent::default(); 128],
                degraded: false,
            };
        }
        Poller::Fallback
    }

    /// Reconciles the kernel's interest in `stream` with what the caller
    /// wants to hear about (ADD/MOD/DEL as the delta demands).
    fn update(&mut self, stream: &TcpStream, token: usize, readable: bool, writable: bool) {
        match self {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Poller::Epoll {
                ep,
                masks,
                degraded,
                ..
            } => {
                use std::os::fd::AsRawFd;
                let mask = (if readable {
                    sys::EPOLLIN | sys::EPOLLRDHUP
                } else {
                    0
                }) | (if writable { sys::EPOLLOUT } else { 0 });
                let fd = stream.as_raw_fd();
                let ok = match (masks.get(&token).copied(), mask) {
                    (None, 0) => true,
                    (None, m) => {
                        masks.insert(token, m);
                        ep.ctl(sys::EPOLL_CTL_ADD, fd, m, token as u64)
                    }
                    (Some(_), 0) => {
                        masks.remove(&token);
                        ep.ctl(sys::EPOLL_CTL_DEL, fd, 0, token as u64)
                    }
                    (Some(prev), m) if prev == m => true,
                    (Some(_), m) => {
                        masks.insert(token, m);
                        ep.ctl(sys::EPOLL_CTL_MOD, fd, m, token as u64)
                    }
                };
                if !ok {
                    *degraded = true;
                }
            }
            Poller::Fallback => {
                let _ = (stream, token, readable, writable);
            }
        }
    }

    /// One poll round. `out` receives `(token, readable, writable)`
    /// triples on [`Wait::Ready`]. Error/hangup conditions are folded
    /// into both directions so the owner discovers them with a
    /// nonblocking read/write (which classifies them properly).
    fn wait(&mut self, timeout: Duration, out: &mut Vec<(usize, bool, bool)>) -> Wait {
        out.clear();
        match self {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Poller::Epoll {
                ep,
                buf,
                degraded: false,
                ..
            } => {
                let ms = if timeout.is_zero() {
                    0
                } else {
                    timeout.as_millis().clamp(1, i32::MAX as u128) as i32
                };
                let n = ep.wait(buf, ms);
                if n <= 0 {
                    return Wait::Idle;
                }
                for ev in buf.iter().take(n as usize) {
                    // Copy out of the (possibly packed) struct by value;
                    // references into it would be unaligned.
                    let events = ev.events;
                    let data = ev.data;
                    let err = events & (sys::EPOLLERR | sys::EPOLLHUP);
                    let readable = events & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 || err != 0;
                    let writable = events & sys::EPOLLOUT != 0 || err != 0;
                    out.push((data as usize, readable, writable));
                }
                Wait::Ready
            }
            _ => {
                if !timeout.is_zero() {
                    thread::sleep(timeout.min(SWEEP_PAUSE));
                }
                Wait::Sweep
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Connection state: one nonblocking socket + its pending-write queue
// ---------------------------------------------------------------------------

/// A queued write. `Sever` orders *behind* pending frames, so a crash's
/// FIN goes out only after every already-committed byte flushed — the
/// same contract as the blocking driver's writer queue.
enum OutJob {
    Frame {
        bytes: Vec<u8>,
        /// Fault-plan delay spike: the frame may not touch the socket
        /// before this instant (and, FIFO queue, delays what's behind
        /// it), mirroring the blocking writer's sleep.
        not_before: Option<Instant>,
        /// Host whose wire-free credit ([`Input::SendDone`]) this frame
        /// releases once the kernel accepted its last byte.
        notify: Option<HostId>,
    },
    Sever,
}

/// One mesh endpoint owned by the reactor: host `host`'s nonblocking
/// socket toward one peer, with its incremental decoder and pending-write
/// queue.
///
/// Invariants of the queue: jobs complete strictly in FIFO order;
/// `head_written` counts bytes of the *head* frame already accepted by
/// the kernel (reset to 0 when it completes); once `write_open` is false
/// every queued frame completes immediately as lost-on-the-medium (its
/// `SendDone` still fires — a dead peer is the retransmission protocol's
/// business, not backpressure).
struct Conn {
    stream: TcpStream,
    host: usize,
    decoder: FrameDecoder,
    outq: VecDeque<OutJob>,
    head_written: usize,
    read_open: bool,
    write_open: bool,
    /// The head of `outq` hit `WouldBlock`: write-readiness is needed.
    want_out: bool,
    /// Interest last registered with the poller (readable, writable).
    registered: (bool, bool),
}

impl Conn {
    fn new(stream: TcpStream, host: usize) -> Conn {
        Conn {
            stream,
            host,
            decoder: FrameDecoder::new(),
            outq: VecDeque::new(),
            head_written: 0,
            read_open: true,
            write_open: true,
            want_out: false,
            registered: (false, false),
        }
    }

    /// Drains readable bytes into the decoder and appends every complete
    /// frame to `frames`. Stops at `WouldBlock`; EOF or a socket error
    /// closes the read side (the connection is gone — the reliable
    /// transport repairs whatever was in flight).
    ///
    /// # Errors
    ///
    /// Returns the first [`FrameError`] the decoder reports — undecodable
    /// bytes are fatal to the run, exactly as in the blocking driver.
    fn pump_read<P: WirePayload>(&mut self, frames: &mut Vec<Frame<P>>) -> Result<(), FrameError> {
        if !self.read_open {
            return Ok(());
        }
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.read_open = false;
                    return Ok(());
                }
                Ok(n) => {
                    self.decoder.feed(chunk.get(..n).unwrap_or_default());
                    loop {
                        match self.decoder.next_frame::<P>() {
                            Ok(Some(frame)) => frames.push(frame),
                            Ok(None) => break,
                            Err(e) => return Err(e),
                        }
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.read_open = false;
                    return Ok(());
                }
            }
        }
    }

    /// Flushes the pending-write queue as far as the kernel accepts.
    /// Completed frames land in `done` as `(buffer, notify)` so the
    /// caller can recycle the buffer and release the send credit. Returns
    /// the head frame's release instant when it is still embargoed by a
    /// delay spike (the caller arms a wheel timer for it).
    fn pump_write(&mut self, done: &mut Vec<(Vec<u8>, Option<HostId>)>) -> Option<Instant> {
        self.want_out = false;
        loop {
            let job = self.outq.pop_front()?;
            match job {
                OutJob::Frame {
                    bytes,
                    not_before,
                    notify,
                } => {
                    if self.write_open {
                        if let Some(release) = not_before {
                            if release > Instant::now() {
                                self.outq.push_front(OutJob::Frame {
                                    bytes,
                                    not_before,
                                    notify,
                                });
                                return Some(release);
                            }
                        }
                    }
                    let mut blocked = false;
                    while self.write_open && self.head_written < bytes.len() {
                        match self
                            .stream
                            .write(bytes.get(self.head_written..).unwrap_or_default())
                        {
                            Ok(0) => self.write_open = false,
                            Ok(n) => self.head_written = self.head_written.saturating_add(n),
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                blocked = true;
                                break;
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                            // The peer is gone: this frame (and everything
                            // queued behind it) is lost on the medium; the
                            // reliable transport's timeout repairs it.
                            Err(_) => self.write_open = false,
                        }
                    }
                    if blocked {
                        self.want_out = true;
                        self.outq.push_front(OutJob::Frame {
                            bytes,
                            not_before,
                            notify,
                        });
                        return None;
                    }
                    // Fully written, or lost with the write side: either
                    // way the frame left the sender's hands and its wire
                    // credit comes free.
                    self.head_written = 0;
                    done.push((bytes, notify));
                }
                OutJob::Sever => {
                    let _ = self.stream.shutdown(Shutdown::Write);
                    self.write_open = false;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Bounded join-worker pool
// ---------------------------------------------------------------------------

/// Work for the join pool, mirroring the blocking driver's per-host
/// worker jobs.
enum WorkerJob<P> {
    Join {
        payload: P,
        /// Which multiplexed query the fragment belongs to (0 on
        /// single-query runs).
        query: u32,
        roles: Option<Vec<usize>>,
        id: FragmentId,
        hop: usize,
    },
    Absorb {
        dead: HostId,
        roles: Vec<usize>,
        /// True for a planned rescale handoff (the donor is alive).
        planned: bool,
    },
}

/// A finished pool job, drained by the reactor after a wake.
enum WorkerEvent {
    JoinDone {
        host: HostId,
        id: FragmentId,
        hop: usize,
        spent: Duration,
        panicked: bool,
    },
    AbsorbDone {
        host: HostId,
        dead: HostId,
        roles: usize,
        spent: Duration,
        panicked: bool,
        planned: bool,
    },
}

struct PoolState<P> {
    /// FIFO job queue per host. Jobs of one host never run concurrently
    /// (the blocking driver's one-worker-per-host guarantee), so the
    /// visit callback sees the same serialization on every backend.
    queues: Vec<VecDeque<WorkerJob<P>>>,
    running: Vec<bool>,
    /// Host is already enqueued on `ready` (dedup flag).
    queued: Vec<bool>,
    ready: VecDeque<usize>,
    shutdown: bool,
}

/// The bounded worker pool: `min(hosts, cores)` threads execute join and
/// absorb callbacks, and a loopback wake socket tells the reactor a
/// completion is waiting — the pool never touches protocol state itself.
struct WorkerPool<P> {
    state: Mutex<PoolState<P>>,
    cv: Condvar,
    done: Mutex<VecDeque<WorkerEvent>>,
    wake_tx: Mutex<TcpStream>,
    /// A wake byte is already in flight; cleared by the reactor after it
    /// drains the wake socket. Keeps the wake channel at one pending
    /// byte no matter how many completions pile up.
    wake_armed: AtomicBool,
}

impl<P> WorkerPool<P> {
    fn new(hosts: usize, wake_tx: TcpStream) -> WorkerPool<P> {
        WorkerPool {
            state: Mutex::new(PoolState {
                queues: (0..hosts).map(|_| VecDeque::new()).collect(),
                running: vec![false; hosts],
                queued: vec![false; hosts],
                ready: VecDeque::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            done: Mutex::new(VecDeque::new()),
            wake_tx: Mutex::new(wake_tx),
            wake_armed: AtomicBool::new(false),
        }
    }

    fn submit(&self, host: usize, job: WorkerJob<P>) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.shutdown {
            return;
        }
        if let Some(q) = st.queues.get_mut(host) {
            q.push_back(job);
        }
        let idle = !st.running.get(host).copied().unwrap_or(false);
        let enqueued = st.queued.get(host).copied().unwrap_or(true);
        if idle && !enqueued {
            if let Some(flag) = st.queued.get_mut(host) {
                *flag = true;
            }
            st.ready.push_back(host);
        }
        drop(st);
        self.cv.notify_one();
    }

    /// Blocks for the next runnable job; `None` means shutdown.
    fn next_job(&self) -> Option<(usize, WorkerJob<P>)> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if st.shutdown {
                return None;
            }
            if let Some(host) = st.ready.pop_front() {
                if let Some(flag) = st.queued.get_mut(host) {
                    *flag = false;
                }
                let job = st.queues.get_mut(host).and_then(VecDeque::pop_front);
                if let Some(job) = job {
                    if let Some(flag) = st.running.get_mut(host) {
                        *flag = true;
                    }
                    return Some((host, job));
                }
                continue;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Marks `host`'s job finished and re-queues it if more work waits.
    fn finished(&self, host: usize) {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(flag) = st.running.get_mut(host) {
            *flag = false;
        }
        let more = st.queues.get(host).is_some_and(|q| !q.is_empty());
        let enqueued = st.queued.get(host).copied().unwrap_or(true);
        if more && !enqueued && !st.shutdown {
            if let Some(flag) = st.queued.get_mut(host) {
                *flag = true;
            }
            st.ready.push_back(host);
            drop(st);
            self.cv.notify_one();
        }
    }

    /// Publishes a completion and pokes the reactor's wake socket.
    fn push_done(&self, event: WorkerEvent) {
        self.done
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(event);
        if !self.wake_armed.swap(true, Ordering::AcqRel) {
            let mut tx = self.wake_tx.lock().unwrap_or_else(PoisonError::into_inner);
            let _ = tx.write_all(&[1u8]);
        }
    }

    fn pop_done(&self) -> Option<WorkerEvent> {
        self.done
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_front()
    }

    /// Re-enables wake bytes after the reactor drained the wake socket.
    fn disarm_wake(&self) {
        self.wake_armed.store(false, Ordering::Release);
    }

    fn shutdown(&self) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .shutdown = true;
        self.cv.notify_all();
    }
}

/// One pool thread: pull a job, run the guarded callback, publish the
/// completion, release the host's serialization slot. Mirrors the
/// blocking driver's `worker_loop` exactly (same timing, same
/// `catch_unwind` policy).
fn worker_thread<P, F, A>(pool: &WorkerPool<P>, visit: &F, absorb: &A)
where
    P: WirePayload,
    F: Fn(HostId, u32, &[usize], &P) + Sync,
    A: Fn(HostId, usize) + Sync,
{
    while let Some((host, job)) = pool.next_job() {
        let at = HostId(host);
        let event = match job {
            WorkerJob::Join {
                payload,
                query,
                roles,
                id,
                hop,
            } => {
                let started = Instant::now();
                let own = [host];
                // Guard the user callback: a panic inside it must become
                // a typed teardown error, not a dead pool thread.
                let outcome = catch_unwind(AssertUnwindSafe(|| match &roles {
                    Some(rs) => visit(at, query, rs, &payload),
                    None => visit(at, query, &own, &payload),
                }));
                WorkerEvent::JoinDone {
                    host: at,
                    id,
                    hop,
                    spent: started.elapsed(),
                    panicked: outcome.is_err(),
                }
            }
            WorkerJob::Absorb {
                dead,
                roles,
                planned,
            } => {
                let started = Instant::now();
                let count = roles.len();
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    for &r in &roles {
                        absorb(at, r);
                    }
                }));
                WorkerEvent::AbsorbDone {
                    host: at,
                    dead,
                    roles: count,
                    spent: started.elapsed(),
                    panicked: outcome.is_err(),
                    planned,
                }
            }
        };
        pool.push_done(event);
        pool.finished(host);
    }
}

// ---------------------------------------------------------------------------
// The reactor: one thread owning every socket, timer and protocol input
// ---------------------------------------------------------------------------

/// Timers on the wheel: protocol backoffs, the fault and rescale plans'
/// scheduled events, and a delayed frame's flush.
#[derive(Clone, Copy)]
enum TimerKind {
    Protocol(Timer),
    Crash(HostId),
    Pause(HostId),
    Resume(HostId),
    JoinRequest(HostId),
    DrainRequest(HostId),
}

enum WheelItem {
    Kind(TimerKind),
    /// Re-flush connection `token` (its head frame was embargoed by a
    /// fault-plan delay spike).
    Flush(usize),
}

struct Reactor<'a, P: WirePayload> {
    proto: RingProtocol<P>,
    plan: Option<&'a FaultPlan>,
    conns: Vec<Conn>,
    /// `lanes[from][to]` is the token of `from`'s connection toward `to`.
    lanes: Vec<Vec<Option<usize>>>,
    poller: Poller,
    wheel: TimerWheel<WheelItem>,
    /// Encode buffers recycled through the pending-write queues.
    pool: FrameBufPool,
    workers: &'a WorkerPool<P>,
    /// Send credits freed synchronously while applying outputs (a dropped
    /// attempt, a completed nonblocking write), processed before polling.
    pending: VecDeque<HostId>,
    errors: ErrorCollector,
    fatal: bool,
    tracer: SpanTracer,
    epoch: Instant,
    wall_ack_timeout: Duration,
    join_threads: usize,
    busy: Vec<Duration>,
    last_done: Vec<Instant>,
    bytes_forwarded: Vec<u64>,
    last_progress: Instant,
    crash_at: Vec<Option<Instant>>,
    detection_latency: SimDuration,
    /// Stall watchdog: the last instant any event reached the protocol.
    last_event: Instant,
}

impl<P: WirePayload + Clone> Reactor<'_, P> {
    fn now_ns(&self) -> u64 {
        SimDuration::from(self.epoch.elapsed()).as_nanos()
    }

    fn now_stamp(&self) -> SimTime {
        SimTime::from_nanos(self.now_ns())
    }

    fn stamp_before(&self, spent: Duration) -> SimTime {
        SimTime::from_nanos(
            SimDuration::from(self.epoch.elapsed().saturating_sub(spent)).as_nanos(),
        )
    }

    fn fail(&mut self, error: RingError) {
        self.errors.record(error);
        self.fatal = true;
    }

    fn arm(&mut self, delay: Duration, kind: TimerKind) {
        let deadline = self
            .now_ns()
            .saturating_add(SimDuration::from(delay).as_nanos());
        self.wheel.insert(deadline, WheelItem::Kind(kind));
    }

    /// Reconciles the poller's interest in connection `t` with its state:
    /// readable while the read side lives, writable only while a blocked
    /// frame actually waits (level-triggered `EPOLLOUT` on an idle socket
    /// would spin the loop).
    fn sync_interest(&mut self, t: usize) {
        let Some(conn) = self.conns.get_mut(t) else {
            return;
        };
        let desired = (conn.read_open, conn.want_out && conn.write_open);
        if desired == conn.registered {
            return;
        }
        conn.registered = desired;
        self.poller.update(&conn.stream, t, desired.0, desired.1);
    }

    /// Drains connection `t`'s readable bytes and feeds every decoded
    /// frame to the protocol.
    fn drain_read(&mut self, t: usize) {
        let mut frames = Vec::new();
        let (at, decode_err) = match self.conns.get_mut(t) {
            Some(conn) => (HostId(conn.host), conn.pump_read::<P>(&mut frames).err()),
            None => return,
        };
        self.sync_interest(t);
        for frame in frames {
            if self.fatal {
                return;
            }
            self.on_frame(at, frame);
        }
        if let Some(e) = decode_err {
            self.fail(RingError::Frame(e));
        }
    }

    fn on_frame(&mut self, at: HostId, frame: Frame<P>) {
        self.last_event = Instant::now();
        match frame {
            Frame::Envelope { tid, env } => {
                let out = self.proto.input(Input::Delivered { to: at, env, tid });
                self.apply(out, Some(at));
            }
            Frame::Ack { tid } => {
                let out = self.proto.input(Input::Ack { tid });
                self.apply(out, None);
            }
            Frame::Hello { .. } => self.fail(RingError::Socket("mid-run hello frame")),
        }
    }

    /// Flushes connection `t`'s pending-write queue, recycling completed
    /// buffers and queueing the freed send credits.
    fn flush_conn(&mut self, t: usize) {
        let mut done = Vec::new();
        let embargo = match self.conns.get_mut(t) {
            Some(conn) => conn.pump_write(&mut done),
            None => return,
        };
        for (bytes, notify) in done {
            self.pool.put(bytes);
            if let Some(from) = notify {
                self.pending.push_back(from);
            }
        }
        if let Some(release) = embargo {
            let delay = release.saturating_duration_since(Instant::now());
            let deadline = self
                .now_ns()
                .saturating_add(SimDuration::from(delay).as_nanos());
            self.wheel.insert(deadline, WheelItem::Flush(t));
        }
        self.sync_interest(t);
    }

    /// Queues one encoded frame on the `from → to` lane and flushes as
    /// far as the kernel allows right away.
    fn enqueue_frame(
        &mut self,
        from: HostId,
        to: HostId,
        bytes: Vec<u8>,
        not_before: Option<Instant>,
        notify: Option<HostId>,
    ) {
        let lane = self
            .lanes
            .get(from.0)
            .and_then(|row| row.get(to.0))
            .copied()
            .flatten();
        let Some(t) = lane else {
            self.fail(RingError::Teardown(teardown::TX_GONE));
            return;
        };
        if let Some(conn) = self.conns.get_mut(t) {
            conn.outq.push_back(OutJob::Frame {
                bytes,
                not_before,
                notify,
            });
        }
        self.flush_conn(t);
    }

    /// Queues a write-side FIN behind every pending frame of `host`'s
    /// outgoing connections.
    fn sever_outgoing(&mut self, host: HostId) {
        let tokens: Vec<usize> = self
            .lanes
            .get(host.0)
            .map(|row| row.iter().copied().flatten().collect())
            .unwrap_or_default();
        for t in tokens {
            if let Some(conn) = self.conns.get_mut(t) {
                conn.outq.push_back(OutJob::Sever);
            }
            self.flush_conn(t);
        }
    }

    /// Realizes a scheduled crash: sever the host's outgoing connections
    /// (write-side FIN behind already-committed frames), then report the
    /// ground truth to the protocol. The read side stays open as the
    /// salvage path, matching the simulator's medium.
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn crash(&mut self, host: HostId) {
        if self.proto.is_crashed(host) {
            return;
        }
        self.crash_at[host.0] = Some(Instant::now());
        if self.tracer.is_enabled() {
            self.tracer
                .event(Some(host.0), Track::Control, "crashed", self.now_stamp());
        }
        self.sever_outgoing(host);
        let out = self.proto.input(Input::PeerDead { host });
        self.apply(out, None);
    }

    /// A wheel timer fired: protocol ticks always reach the protocol;
    /// fault-plan and rescale events die with a crashed host, mirroring
    /// the blocking driver's crash-guard policy.
    fn fire(&mut self, item: WheelItem) {
        self.last_event = Instant::now();
        match item {
            WheelItem::Flush(t) => self.flush_conn(t),
            WheelItem::Kind(TimerKind::Protocol(timer)) => {
                let out = self.proto.input(Input::Tick { timer });
                self.apply(out, None);
            }
            WheelItem::Kind(TimerKind::Crash(host)) => self.crash(host),
            WheelItem::Kind(TimerKind::Pause(host)) => {
                if self.proto.is_crashed(host) {
                    return;
                }
                if self.tracer.is_enabled() {
                    self.tracer
                        .event(Some(host.0), Track::Control, "paused", self.now_stamp());
                }
                let out = self.proto.input(Input::Paused { host });
                self.apply(out, None);
            }
            WheelItem::Kind(TimerKind::Resume(host)) => {
                if self.proto.is_crashed(host) {
                    return;
                }
                if self.tracer.is_enabled() {
                    self.tracer
                        .event(Some(host.0), Track::Control, "resumed", self.now_stamp());
                }
                let out = self.proto.input(Input::Resumed { host });
                self.apply(out, None);
            }
            WheelItem::Kind(TimerKind::JoinRequest(host)) => {
                if self.proto.is_crashed(host) {
                    return;
                }
                if self.tracer.is_enabled() {
                    self.tracer.event(
                        Some(host.0),
                        Track::Control,
                        "join requested",
                        self.now_stamp(),
                    );
                }
                let out = self.proto.input(Input::JoinRequest { host });
                self.apply(out, None);
            }
            WheelItem::Kind(TimerKind::DrainRequest(host)) => {
                if self.proto.is_crashed(host) {
                    return;
                }
                if self.tracer.is_enabled() {
                    self.tracer.event(
                        Some(host.0),
                        Track::Control,
                        "drain requested",
                        self.now_stamp(),
                    );
                }
                let out = self.proto.input(Input::DrainRequest { host });
                self.apply(out, None);
            }
        }
    }

    /// A join-pool completion reached the reactor. Same crash-guard and
    /// tracing policy as the blocking driver's coordinator.
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn on_worker_event(&mut self, event: WorkerEvent) {
        self.last_event = Instant::now();
        match event {
            WorkerEvent::JoinDone {
                host,
                id,
                hop,
                spent,
                panicked,
            } => {
                if self.proto.is_crashed(host) {
                    // The join died with the host; healing salvages its
                    // envelope.
                    return;
                }
                if panicked {
                    self.fail(RingError::Teardown(teardown::CALLBACK_PANICKED));
                    return;
                }
                self.busy[host.0] += spent;
                let now = Instant::now();
                self.last_done[host.0] = now;
                self.last_progress = self.last_progress.max(now);
                if self.tracer.is_enabled() {
                    let start = self.stamp_before(spent);
                    self.tracer.span_with_hop(
                        host.0,
                        SpanKind::Join,
                        format!("join {id}"),
                        start,
                        spent.into(),
                        Some(hop),
                    );
                }
                let out = self.proto.input(Input::JoinDone {
                    host,
                    app_finished: false,
                });
                self.apply(out, None);
            }
            WorkerEvent::AbsorbDone {
                host,
                dead,
                roles,
                spent,
                panicked,
                planned,
            } => {
                if self.proto.is_crashed(host) {
                    return;
                }
                if panicked {
                    self.fail(RingError::Teardown(teardown::CALLBACK_PANICKED));
                    return;
                }
                self.busy[host.0] += spent;
                let now = Instant::now();
                self.last_done[host.0] = now;
                self.last_progress = self.last_progress.max(now);
                if self.tracer.is_enabled() {
                    let start = self.stamp_before(spent);
                    let name = if planned {
                        format!("handoff {roles} role(s) from host {}", dead.0)
                    } else {
                        format!("absorb {roles} role(s) of host {}", dead.0)
                    };
                    self.tracer
                        .span(host.0, SpanKind::Absorb, name, start, spent.into());
                }
                let out = self.proto.input(Input::AbsorbDone { host });
                self.apply(out, None);
            }
        }
    }

    /// Applies protocol outputs strictly in emission order, mapping each
    /// onto nonblocking writes, pool jobs, wheel timers and traces.
    /// `ctx` names the host whose delivery is being processed — the only
    /// context in which the protocol emits [`Output::Ack`].
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn apply(&mut self, outputs: Vec<Output<P>>, ctx: Option<HostId>) {
        for output in outputs {
            if self.fatal {
                return;
            }
            match output {
                Output::StartJoin {
                    host,
                    id,
                    hop,
                    roles,
                    bytes: _,
                } => {
                    let Some(payload) = self.proto.processing_payload(host).cloned() else {
                        self.fail(RingError::Teardown(EMPTY_SLOT));
                        return;
                    };
                    self.workers.submit(
                        host.0,
                        WorkerJob::Join {
                            payload,
                            query: self.proto.processing_query(host),
                            roles,
                            id,
                            hop,
                        },
                    );
                }
                Output::PassThrough { host, id } => {
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(host.0),
                            Track::Join,
                            format!("pass-through {id}"),
                            self.now_stamp(),
                        );
                    }
                }
                Output::Processed { .. } => {}
                Output::Send {
                    from,
                    to,
                    tid,
                    attempt,
                    env,
                } => self.apply_send(from, to, tid, attempt, env),
                Output::Ack { to, tid } => match ctx {
                    Some(at) => {
                        let mut bytes = self.pool.take();
                        encode_ack_into(tid, &mut bytes);
                        self.enqueue_frame(at, to, bytes, None, None);
                    }
                    None => self.fail(RingError::Teardown(ACK_OUT_OF_CONTEXT)),
                },
                Output::ArmTimer { timer, backoff_exp } => {
                    let delay = self
                        .wall_ack_timeout
                        .saturating_mul(1u32 << backoff_exp.min(31));
                    self.arm(delay, TimerKind::Protocol(timer));
                }
                Output::Delivered { host, id, bytes: _ } => {
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(host.0),
                            Track::Receiver,
                            format!("recv {id}"),
                            self.now_stamp(),
                        );
                        self.tracer.count(counter::ENVELOPES_RECEIVED, 1);
                    }
                }
                Output::DuplicateDropped { host, id } => {
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(host.0),
                            Track::Receiver,
                            format!("duplicate {id} dropped"),
                            self.now_stamp(),
                        );
                    }
                }
                Output::ChecksumMismatch { host, id } => {
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(host.0),
                            Track::Receiver,
                            format!("checksum mismatch {id}"),
                            self.now_stamp(),
                        );
                        self.tracer.count(counter::CHECKSUM_MISMATCHES, 1);
                    }
                }
                Output::Retire { host, id, salvaged } => {
                    self.last_progress = self.last_progress.max(Instant::now());
                    if self.tracer.is_enabled() {
                        let name = if salvaged {
                            format!("retired {id} (salvaged)")
                        } else {
                            format!("retired {id}")
                        };
                        self.tracer
                            .event(Some(host.0), Track::Join, name, self.now_stamp());
                        self.tracer.count(counter::FRAGMENTS_RETIRED, 1);
                    }
                }
                Output::Heal { dead } => {
                    let latency = match self.crash_at[dead.0] {
                        Some(at) => SimDuration::from(at.elapsed()),
                        None => SimDuration::ZERO,
                    };
                    self.detection_latency = self.detection_latency.max(latency);
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            None,
                            Track::Control,
                            format!("heal: host {} confirmed dead", dead.0),
                            self.now_stamp(),
                        );
                        self.tracer.count(counter::HEAL_EVENTS, 1);
                    }
                }
                Output::Absorb {
                    survivor,
                    dead,
                    roles,
                } => {
                    self.workers.submit(
                        survivor.0,
                        WorkerJob::Absorb {
                            dead,
                            roles,
                            planned: false,
                        },
                    );
                }
                Output::Activate { host, epoch } => {
                    self.last_progress = self.last_progress.max(Instant::now());
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(host.0),
                            Track::Control,
                            format!("activated (epoch {epoch})"),
                            self.now_stamp(),
                        );
                        self.tracer.count(counter::RESCALE_JOINS, 1);
                    }
                }
                Output::Handoff { from, to, roles } => {
                    if self.tracer.is_enabled() {
                        self.tracer
                            .count(counter::RESCALE_HANDOFFS, roles.len() as u64);
                    }
                    self.workers.submit(
                        to.0,
                        WorkerJob::Absorb {
                            dead: from,
                            roles,
                            planned: true,
                        },
                    );
                }
                Output::Departed { host, epoch } => {
                    self.last_progress = self.last_progress.max(Instant::now());
                    // The drainee left the ring for good: retire its
                    // outgoing connections with a real FIN (queued behind
                    // any bytes it still owed).
                    self.sever_outgoing(host);
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(host.0),
                            Track::Control,
                            format!("departed (epoch {epoch})"),
                            self.now_stamp(),
                        );
                        self.tracer.count(counter::RESCALE_DRAINS, 1);
                    }
                }
                Output::Resent { target, id } => {
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            Some(target.0),
                            Track::Control,
                            format!("re-sent {id} from origin"),
                            self.now_stamp(),
                        );
                        self.tracer.count(counter::FRAGMENTS_RESENT, 1);
                    }
                }
                Output::Finished { .. } => {}
                Output::QueryAdmitted { query, tenant } => {
                    self.last_progress = self.last_progress.max(Instant::now());
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            None,
                            Track::Control,
                            format!("query {query} admitted (tenant {tenant})"),
                            self.now_stamp(),
                        );
                        self.tracer.count(counter::QUERIES_ADMITTED, 1);
                    }
                }
                Output::QueryDone { query, tenant } => {
                    self.last_progress = self.last_progress.max(Instant::now());
                    if self.tracer.is_enabled() {
                        self.tracer.event(
                            None,
                            Track::Control,
                            format!("query {query} done (tenant {tenant})"),
                            self.now_stamp(),
                        );
                        self.tracer.count(counter::QUERIES_COMPLETED, 1);
                    }
                }
                Output::Teardown { reason } => self.fail(RingError::Teardown(reason)),
            }
        }
    }

    /// Puts one attempt of a transfer toward its socket: rolls the fault
    /// dice (the medium's business, not the protocol's), reports the fate
    /// back, and queues the frame on the hop's pending-write queue.
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn apply_send(&mut self, from: HostId, to: HostId, tid: u64, attempt: u32, env: Envelope<P>) {
        let bytes = env.bytes();
        self.bytes_forwarded[from.0] += bytes;
        let mut wire = env;
        let mut dropped = false;
        let mut delay = Duration::ZERO;
        match self.plan {
            Some(plan) => {
                // Dice keyed on the per-sender wire sequence (`env.seq`),
                // the numbering all four backends share — the parity
                // suite depends on this.
                let seq = wire.seq;
                dropped = plan.should_drop(from, seq, attempt);
                let corrupt = !dropped && plan.should_corrupt(from, seq, attempt);
                delay = Duration::from(plan.delay_spike(from, seq, attempt));
                self.proto.attempt_fate(tid, dropped, corrupt);
                if corrupt {
                    // In-flight bit flips: the receiver's checksum
                    // verification rejects the copy and withholds the ack.
                    wire.checksum = !wire.checksum;
                }
                if attempt == 1 {
                    self.tracer.count(counter::ENVELOPES_SENT, 1);
                } else if self.tracer.is_enabled() {
                    self.tracer.event(
                        Some(from.0),
                        Track::Transmitter,
                        format!("retransmit {} attempt {attempt}", wire.id),
                        self.now_stamp(),
                    );
                    self.tracer.count(counter::RETRANSMITS, 1);
                }
            }
            None => self.tracer.count(counter::ENVELOPES_SENT, 1),
        }
        if dropped {
            // The medium ate this attempt before any byte hit the socket;
            // the sender's NIC still reports its wire free.
            self.pending.push_back(from);
            return;
        }
        let not_before = (!delay.is_zero()).then(|| Instant::now() + delay);
        let mut frame = self.pool.take();
        match encode_envelope_into(tid, &wire, &mut frame) {
            Ok(()) => self.enqueue_frame(from, to, frame, not_before, Some(from)),
            Err(e) => self.fail(RingError::Frame(e)),
        }
    }

    /// Converts the finished run into the common metrics shape and closes
    /// out the tracer (materializing every well-known counter so trace
    /// consumers see zeros observed rather than missing).
    // analyze: allow(panic, reason = "protocol invariant: per-host tables are sized to the ring at construction and HostId never exceeds it")
    fn into_result(self) -> (RingMetrics, SpanTracer) {
        let n = self.proto.config().hosts;
        let mut hosts = Vec::with_capacity(n);
        for h in 0..n {
            let busy = self.busy[h];
            let window = self.last_done[h].saturating_duration_since(self.epoch);
            let mut cpu = simnet::cpu::CpuAccount::new();
            cpu.charge(
                simnet::cpu::CostCategory::Compute,
                SimDuration::from(busy) * self.join_threads as u64,
            );
            hosts.push(HostMetrics {
                setup: SimDuration::ZERO,
                join_busy: busy.into(),
                sync: window.saturating_sub(busy).into(),
                join_window: window.into(),
                cpu,
                fragments_processed: self.proto.host(HostId(h)).fragments_processed(),
                bytes_forwarded: self.bytes_forwarded[h],
                retransmits: self.proto.retransmits(HostId(h)),
                checksum_mismatches: self.proto.checksum_mismatches(HostId(h)),
            });
        }
        let metrics = RingMetrics {
            hosts,
            wall_clock: self
                .last_progress
                .saturating_duration_since(self.epoch)
                .into(),
            fragments_completed: self.proto.fragments_completed(),
            heal_events: self.proto.heal_events(),
            detection_latency: self.detection_latency,
            fragments_resent: self.proto.fragments_resent(),
            membership_epoch: self.proto.membership_epoch(),
            rescale_joins: self.proto.rescale_joins(),
            rescale_drains: self.proto.rescale_drains(),
            rescale_handoffs: self.proto.rescale_handoffs(),
            rescale_escalations: self.proto.rescale_escalations(),
            queries: self.proto.query_metrics(),
        };
        let mut tracer = self.tracer;
        if tracer.is_enabled() {
            for name in [
                counter::ENVELOPES_SENT,
                counter::ENVELOPES_RECEIVED,
                counter::FRAGMENTS_RETIRED,
                counter::RETRANSMITS,
                counter::CHECKSUM_MISMATCHES,
                counter::HEAL_EVENTS,
                counter::FRAGMENTS_RESENT,
                counter::RESCALE_JOINS,
                counter::RESCALE_DRAINS,
                counter::RESCALE_HANDOFFS,
            ] {
                tracer.count(name, 0);
            }
        }
        (metrics, tracer)
    }
}

// ---------------------------------------------------------------------------
// Ring assembly and the event loop
// ---------------------------------------------------------------------------

fn run_reactor_mesh<P, F, A>(
    config: &RingConfig,
    plan: Option<&FaultPlan>,
    rescale: Option<&RescalePlan>,
    trace: bool,
    workload: MeshWorkload<P>,
    visit: &F,
    absorb: &A,
) -> Result<(RingMetrics, SpanTracer), RingError>
where
    P: WirePayload + Send + Clone,
    F: Fn(HostId, u32, &[usize], &P) + Sync,
    A: Fn(HostId, usize) + Sync,
{
    let n = config.hosts;
    // Rescale and multiplexing ride the reliable transport: without
    // explicit adversity the medium still needs (quiet) dice and the
    // acked hop protocol.
    let quiet_dice;
    let plan = match (plan, rescale) {
        (None, Some(r)) => {
            quiet_dice = FaultPlan::seeded(r.seed());
            Some(&quiet_dice)
        }
        (None, None) if matches!(workload, MeshWorkload::Multi { .. }) => {
            quiet_dice = FaultPlan::seeded(0);
            Some(&quiet_dice)
        }
        (p, _) => p,
    };
    let seed = plan.map(|p| p.seed()).unwrap_or(0x0dd0_ba11);
    let watchdog = Duration::from(config.watchdog);
    // Healing and rescale can route any surviving pair, so plans need the
    // full mesh; classic plan-free runs only ever use ring-neighbor hops,
    // and a neighbor-only mesh keeps a 256-host ring inside the process
    // fd budget (n sockets instead of n²/2).
    let full_mesh = plan.is_some();
    let mesh = build_mesh_pairs(n, seed, Duration::from(config.handshake_timeout), |a, b| {
        full_mesh || b == a + 1 || (a == 0 && b == n - 1)
    })?;

    // The wake channel: pool threads poke the reactor out of its poll
    // wait through one more loopback socket, registered like any other.
    let wake_listener =
        TcpListener::bind(("127.0.0.1", 0)).map_err(socket_err("bind wake listener"))?;
    let wake_addr = wake_listener
        .local_addr()
        .map_err(socket_err("resolve wake address"))?;
    let wake_tx = TcpStream::connect(wake_addr).map_err(socket_err("connect wake socket"))?;
    let (wake_rx, _) = wake_listener
        .accept()
        .map_err(socket_err("accept wake socket"))?;
    wake_rx
        .set_nonblocking(true)
        .map_err(socket_err("set wake socket nonblocking"))?;

    let mut conns = Vec::new();
    let mut lanes: Vec<Vec<Option<usize>>> =
        (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
    for (h, row) in mesh.endpoints.into_iter().enumerate() {
        for (p, endpoint) in row.into_iter().enumerate() {
            if let Some(stream) = endpoint {
                stream
                    .set_nonblocking(true)
                    .map_err(socket_err("set ring socket nonblocking"))?;
                if let Some(slot) = lanes.get_mut(h).and_then(|r| r.get_mut(p)) {
                    *slot = Some(conns.len());
                }
                conns.push(Conn::new(stream, h));
            }
        }
    }

    let proto_cfg = ProtocolConfig {
        hosts: n,
        buffers_per_host: config.buffers_per_host,
        max_retransmits: config.max_retransmits,
        continuous: false,
        reliable: plan.is_some(),
        standby: rescale.map_or(0, |p| p.standby_mask()),
    };
    let proto = match workload {
        MeshWorkload::Single(envelopes) => RingProtocol::new(proto_cfg, envelopes),
        MeshWorkload::Multi {
            queries,
            max_active,
        } => RingProtocol::new_multi(proto_cfg, queries, max_active),
    };
    let total = proto.fragments_total();

    let workers = WorkerPool::<P>::new(n, wake_tx);
    let pool_threads = n
        .min(
            thread::available_parallelism()
                .map(std::num::NonZero::get)
                .unwrap_or(2),
        )
        .max(1);

    thread::scope(|s| {
        for _ in 0..pool_threads {
            let pool = &workers;
            s.spawn(move || worker_thread(pool, visit, absorb));
        }

        let mut poller = Poller::new();
        poller.update(&wake_rx, WAKE_TOKEN, true, false);

        let epoch = Instant::now();
        let mut rx = Reactor {
            proto,
            plan,
            conns,
            lanes,
            poller,
            wheel: TimerWheel::new(WHEEL_RESOLUTION),
            pool: FrameBufPool::default(),
            workers: &workers,
            pending: VecDeque::new(),
            errors: ErrorCollector::default(),
            fatal: false,
            tracer: if trace {
                SpanTracer::enabled()
            } else {
                SpanTracer::disabled()
            },
            epoch,
            wall_ack_timeout: Duration::from_secs_f64(config.ack_timeout.as_secs_f64()),
            join_threads: config.join_threads,
            busy: vec![Duration::ZERO; n],
            last_done: vec![epoch; n],
            bytes_forwarded: vec![0; n],
            last_progress: epoch,
            crash_at: vec![None; n],
            detection_latency: SimDuration::ZERO,
            last_event: epoch,
        };
        for t in 0..rx.conns.len() {
            rx.sync_interest(t);
        }
        if let Some(plan) = plan {
            for c in plan.crashes() {
                let at = Duration::from(c.at.saturating_duration_since(SimTime::ZERO));
                rx.arm(at, TimerKind::Crash(c.host));
            }
            for p in plan.pauses() {
                let at = Duration::from(p.at.saturating_duration_since(SimTime::ZERO));
                rx.arm(at, TimerKind::Pause(p.host));
                rx.arm(at + Duration::from(p.duration), TimerKind::Resume(p.host));
            }
        }
        if let Some(plan) = rescale {
            for j in plan.joins() {
                let at = Duration::from(j.at.saturating_duration_since(SimTime::ZERO));
                rx.arm(at, TimerKind::JoinRequest(j.host));
            }
            for d in plan.drains() {
                let at = Duration::from(d.at.saturating_duration_since(SimTime::ZERO));
                rx.arm(at, TimerKind::DrainRequest(d.host));
            }
        }
        for h in 0..n {
            let out = rx.proto.input(Input::SetupDone { host: HostId(h) });
            rx.apply(out, None);
        }

        let mut ready: Vec<(usize, bool, bool)> = Vec::new();
        let mut fired: Vec<(TimerId, WheelItem)> = Vec::new();
        let mut wake_buf = [0u8; 64];
        let mut wake_rx = wake_rx;
        while !rx.fatal && rx.proto.fragments_completed() < total {
            // Synchronous backlog first: freed send credits, then pool
            // completions, then due timers — only then does the loop pay
            // for a kernel wait.
            if let Some(from) = rx.pending.pop_front() {
                rx.last_event = Instant::now();
                let out = rx.proto.input(Input::SendDone { from });
                rx.apply(out, None);
                continue;
            }
            if let Some(event) = workers.pop_done() {
                rx.on_worker_event(event);
                continue;
            }
            let now_ns = rx.now_ns();
            fired.clear();
            rx.wheel.advance(now_ns, &mut fired);
            if !fired.is_empty() {
                for (_, item) in fired.drain(..) {
                    if rx.fatal {
                        break;
                    }
                    rx.fire(item);
                }
                continue;
            }
            let idle = rx.last_event.elapsed();
            if idle >= watchdog {
                rx.fail(RingError::Teardown(STALLED));
                break;
            }
            let mut timeout = watchdog - idle;
            if let Some(deadline) = rx.wheel.next_deadline() {
                let until = Duration::from_nanos(deadline.saturating_sub(now_ns));
                timeout = timeout.min(until.max(WHEEL_RESOLUTION));
            }
            match rx.poller.wait(timeout, &mut ready) {
                Wait::Ready => {
                    for &(token, readable, writable) in ready.iter() {
                        if rx.fatal {
                            break;
                        }
                        if token == WAKE_TOKEN {
                            while matches!(wake_rx.read(&mut wake_buf), Ok(1..)) {}
                            workers.disarm_wake();
                            continue;
                        }
                        if writable {
                            rx.flush_conn(token);
                        }
                        if readable {
                            rx.drain_read(token);
                        }
                    }
                }
                Wait::Sweep => {
                    while matches!(wake_rx.read(&mut wake_buf), Ok(1..)) {}
                    workers.disarm_wake();
                    for t in 0..rx.conns.len() {
                        if rx.fatal {
                            break;
                        }
                        let wants = rx
                            .conns
                            .get(t)
                            .is_some_and(|c| c.want_out && c.write_open && !c.outq.is_empty());
                        if wants {
                            rx.flush_conn(t);
                        }
                        rx.drain_read(t);
                    }
                }
                Wait::Idle => {}
            }
        }

        workers.shutdown();
        // Severing every socket lets any straggling peer bytes die on the
        // closed connections; the conns drop with the reactor.
        for conn in &rx.conns {
            let _ = conn.stream.shutdown(Shutdown::Both);
        }
        match std::mem::take(&mut rx.errors).first() {
            Some(err) => Err(err),
            None => Ok(rx.into_result()),
        }
    })
}

// ---------------------------------------------------------------------------
// The driver
// ---------------------------------------------------------------------------

/// Builder for an event-loop ring run over loopback TCP — the single
/// entry point of this backend, mirroring [`crate::tcp_backend::TcpRingDriver`]
/// but with one reactor thread owning every socket.
///
/// ```
/// use data_roundabout::{ReactorRingDriver, RingConfig};
///
/// // Three hosts, two fragments each, over one nonblocking event loop.
/// let fragments: Vec<Vec<Vec<u8>>> =
///     (0..3).map(|_| vec![vec![0u8; 64]; 2]).collect();
/// let (metrics, _spans) = ReactorRingDriver::new(&RingConfig::paper(3))
///     .run(fragments, |_, _| {})
///     .unwrap();
/// assert_eq!(metrics.fragments_completed, 6);
/// ```
#[derive(Clone, Copy)]
pub struct ReactorRingDriver<'a> {
    config: &'a RingConfig,
    fault_plan: Option<&'a FaultPlan>,
    rescale_plan: Option<&'a RescalePlan>,
    trace: bool,
}

impl<'a> ReactorRingDriver<'a> {
    /// A driver for `config` with the classic transport and no tracing.
    pub fn new(config: &'a RingConfig) -> Self {
        ReactorRingDriver {
            config,
            fault_plan: None,
            rescale_plan: None,
            trace: false,
        }
    }

    /// Runs the ring over the unreliable medium described by `plan`, with
    /// every hop protected by the protocol core's acknowledged transport.
    /// Scheduled crashes become real socket severs and mid-revolution
    /// ring healing; `config.ack_timeout` is interpreted in wall-clock
    /// time (choose it to comfortably exceed a loopback round trip plus
    /// reactor latency, or losses masquerade as timeouts).
    pub fn with_fault_plan(mut self, plan: &'a FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Attaches a planned [`RescalePlan`]: standby hosts joining and
    /// members draining out mid-workload over the live socket mesh, with
    /// the same semantics as the blocking TCP driver. Attaching a rescale
    /// plan switches the transport into its reliable mode even without a
    /// fault plan. Schedule instants are interpreted in wall-clock time.
    pub fn with_rescale_plan(mut self, plan: &'a RescalePlan) -> Self {
        self.rescale_plan = Some(plan);
        self
    }

    /// Enables structured span recording for this run.
    pub fn with_tracer(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Runs the ring to completion. `fragments[h]` are host `h`'s local
    /// fragments; `process` is invoked once per (host, envelope) visit.
    ///
    /// # Errors
    ///
    /// As [`ReactorRingDriver::run_with_roles`].
    pub fn run<P, F>(
        self,
        fragments: Vec<Vec<P>>,
        process: F,
    ) -> Result<(RingMetrics, SpanTracer), RingError>
    where
        P: WirePayload + Send + Clone,
        F: Fn(HostId, &P) + Sync,
    {
        self.run_with_roles(
            fragments,
            |host, _roles, payload| process(host, payload),
            |_, _| {},
        )
    }

    /// Like [`ReactorRingDriver::run`], but role-aware for healing runs:
    /// `visit(host, roles, payload)` applies the named logical stationary
    /// roles (the host's own, plus any absorbed from dead hosts), and
    /// `absorb(survivor, role)` performs the state takeover when the ring
    /// heals around a confirmed death.
    ///
    /// # Errors
    ///
    /// Returns [`RingError::Config`] for an invalid configuration,
    /// [`RingError::Shape`] when `fragments.len() != config.hosts`,
    /// [`RingError::UnsupportedFault`] for fault plans this backend cannot
    /// realize (more than 64 hosts with a plan, a crash on a single-host
    /// ring, or faults naming hosts outside the ring),
    /// [`RingError::Socket`] when the loopback mesh cannot be built, and
    /// [`RingError::Frame`] / [`RingError::Teardown`] when the run dies
    /// mid-revolution (undecodable bytes, a panicking callback, an
    /// exhausted retransmission budget on a live ring, or a stall).
    pub fn run_with_roles<P, F, A>(
        self,
        fragments: Vec<Vec<P>>,
        visit: F,
        absorb: A,
    ) -> Result<(RingMetrics, SpanTracer), RingError>
    where
        P: WirePayload + Send + Clone,
        F: Fn(HostId, &[usize], &P) + Sync,
        A: Fn(HostId, usize) + Sync,
    {
        self.config.validate()?;
        let n = self.config.hosts;
        if fragments.len() != n {
            return Err(RingError::Shape {
                expected: n,
                got: fragments.len(),
            });
        }
        if let Some(plan) = self.fault_plan {
            if n > 64 {
                return Err(RingError::UnsupportedFault(
                    "the exactly-once role bitmask supports at most 64 hosts",
                ));
            }
            if n == 1 && !plan.crashes().is_empty() {
                return Err(RingError::UnsupportedFault(
                    "a single-host ring cannot heal around its own crash",
                ));
            }
            let in_ring = |h: HostId| h.0 < n;
            if !plan.crashes().iter().all(|c| in_ring(c.host))
                || !plan.pauses().iter().all(|p| in_ring(p.host))
            {
                return Err(RingError::UnsupportedFault(
                    "fault plan names a host outside the ring",
                ));
            }
        }
        if let Some(plan) = self.rescale_plan {
            if n > 64 {
                return Err(RingError::UnsupportedFault(
                    "the exactly-once role bitmask supports at most 64 hosts",
                ));
            }
            if n == 1 && !plan.is_quiet() {
                return Err(RingError::UnsupportedFault(
                    "a single-host ring has no membership to rescale",
                ));
            }
            let in_ring = |h: HostId| h.0 < n;
            if !plan.joins().iter().all(|j| in_ring(j.host))
                || !plan.drains().iter().all(|d| in_ring(d.host))
            {
                return Err(RingError::UnsupportedFault(
                    "rescale plan names a host outside the ring",
                ));
            }
            if plan
                .joins()
                .iter()
                .any(|j| !fragments.get(j.host.0).is_none_or(Vec::is_empty))
            {
                return Err(RingError::UnsupportedFault(
                    "a standby host must not contribute fragments before joining",
                ));
            }
        }
        let envelopes = envelope_batches(fragments, n);
        if n == 1 {
            // A single-host "ring" has no sockets to run; share the
            // thread backend's local path.
            let spans = self.trace.then(SharedSpans::new);
            let backlog = envelopes.into_iter().next().unwrap_or_default();
            let own = [0usize];
            let metrics = run_single_host(backlog, |h, p| visit(h, &own, p), spans.as_ref())?;
            let tracer = finish_spans(spans, &metrics);
            return Ok((metrics, tracer));
        }
        run_reactor_mesh(
            self.config,
            self.fault_plan,
            self.rescale_plan,
            self.trace,
            MeshWorkload::Single(envelopes),
            &|host, _query: u32, roles: &[usize], payload: &P| visit(host, roles, payload),
            &absorb,
        )
    }

    /// Run several concurrent queries over one shared reactor ring, at
    /// most `max_active` admitted at a time. `visit(host, query, roles,
    /// payload)` joins one fragment of `query` against the named
    /// stationary roles; `absorb(survivor, role)` rebuilds a dead host's
    /// state (for every query) when the ring heals. Always rides the
    /// reliable transport — quiet dice are synthesized when no fault plan
    /// is set.
    pub fn run_queries<P, F, A>(
        self,
        queries: Vec<(u32, Vec<Vec<P>>)>,
        max_active: usize,
        visit: F,
        absorb: A,
    ) -> Result<(RingMetrics, SpanTracer), RingError>
    where
        P: WirePayload + Send + Clone,
        F: Fn(HostId, u32, &[usize], &P) + Sync,
        A: Fn(HostId, usize) + Sync,
    {
        self.config.validate()?;
        let n = self.config.hosts;
        if n < 2 {
            return Err(RingError::UnsupportedFault(
                "multiplexing needs a ring of at least two hosts",
            ));
        }
        if n > 64 {
            return Err(RingError::UnsupportedFault(
                "the exactly-once role bitmask supports at most 64 hosts",
            ));
        }
        if queries.is_empty() || max_active == 0 {
            return Err(RingError::UnsupportedFault(
                "a multi-tenant run needs at least one query and a positive admission bound",
            ));
        }
        for (_, fragments) in &queries {
            if fragments.len() != n {
                return Err(RingError::Shape {
                    expected: n,
                    got: fragments.len(),
                });
            }
        }
        let in_ring = |h: HostId| h.0 < n;
        if let Some(plan) = self.fault_plan {
            if !plan.crashes().iter().all(|c| in_ring(c.host))
                || !plan.pauses().iter().all(|p| in_ring(p.host))
            {
                return Err(RingError::UnsupportedFault(
                    "fault plan names a host outside the ring",
                ));
            }
        }
        if let Some(plan) = self.rescale_plan {
            if !plan.joins().iter().all(|j| in_ring(j.host))
                || !plan.drains().iter().all(|d| in_ring(d.host))
            {
                return Err(RingError::UnsupportedFault(
                    "rescale plan names a host outside the ring",
                ));
            }
            if plan.joins().iter().any(|j| {
                queries
                    .iter()
                    .any(|(_, f)| f.get(j.host.0).is_some_and(|b| !b.is_empty()))
            }) {
                return Err(RingError::UnsupportedFault(
                    "a standby host must not contribute fragments before joining",
                ));
            }
        }
        run_reactor_mesh(
            self.config,
            self.fault_plan,
            self.rescale_plan,
            self.trace,
            MeshWorkload::Multi {
                queries: query_batches(queries, n),
                max_active,
            },
            &visit,
            &absorb,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn payloads(hosts: usize, per_host: usize, bytes: usize) -> Vec<Vec<Vec<u8>>> {
        (0..hosts)
            .map(|h| {
                (0..per_host)
                    .map(|i| vec![(h * 31 + i) as u8; bytes])
                    .collect()
            })
            .collect()
    }

    fn loopback_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn reactor_completes_a_classic_revolution() {
        let config = RingConfig::paper(4);
        let visits = AtomicUsize::new(0);
        let (metrics, _spans) = ReactorRingDriver::new(&config)
            .run(payloads(4, 2, 512), |_, _| {
                visits.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        assert_eq!(metrics.fragments_completed, 8);
        assert_eq!(visits.load(Ordering::Relaxed), 8 * 4);
        assert!(metrics.hosts.iter().all(|h| h.fragments_processed == 8));
    }

    #[test]
    fn reactor_single_host_shares_the_local_path() {
        let config = RingConfig::paper(1);
        let (metrics, _spans) = ReactorRingDriver::new(&config)
            .run(payloads(1, 3, 64), |_, _| {})
            .unwrap();
        assert_eq!(metrics.fragments_completed, 3);
    }

    #[test]
    fn reactor_validation_mirrors_the_blocking_driver() {
        let config = RingConfig::paper(3);
        let err = ReactorRingDriver::new(&config)
            .run(payloads(2, 1, 8), |_, _| {})
            .unwrap_err();
        assert!(matches!(
            err,
            RingError::Shape {
                expected: 3,
                got: 2
            }
        ));

        let plan =
            FaultPlan::seeded(1).crash_host(HostId(9), SimTime::ZERO + SimDuration::from_millis(1));
        let err = ReactorRingDriver::new(&config)
            .with_fault_plan(&plan)
            .run(payloads(3, 1, 8), |_, _| {})
            .unwrap_err();
        assert!(matches!(err, RingError::UnsupportedFault(_)));
    }

    #[test]
    fn reactor_survives_loss_and_corruption() {
        let mut config = RingConfig::paper(3);
        config.ack_timeout = SimDuration::from_millis(120);
        let plan = FaultPlan::seeded(7)
            .lossy_link(HostId(0), 0.3)
            .corrupt_link(HostId(1), 0.3);
        let (metrics, _spans) = ReactorRingDriver::new(&config)
            .with_fault_plan(&plan)
            .run(payloads(3, 2, 256), |_, _| {})
            .unwrap();
        assert_eq!(metrics.fragments_completed, 6);
        let retransmits: u64 = metrics.hosts.iter().map(|h| h.retransmits).sum();
        assert!(retransmits > 0, "a lossy link must force retransmissions");
    }

    #[test]
    fn reactor_heals_a_mid_revolution_crash() {
        let mut config = RingConfig::paper(4);
        config.ack_timeout = SimDuration::from_millis(40);
        let plan = FaultPlan::seeded(4242)
            .crash_host(HostId(2), SimTime::ZERO + SimDuration::from_millis(5));
        let absorbed = AtomicUsize::new(0);
        let (metrics, _spans) = ReactorRingDriver::new(&config)
            .with_fault_plan(&plan)
            .run_with_roles(
                payloads(4, 2, 256),
                |_, _, _| {
                    std::thread::sleep(Duration::from_millis(2));
                },
                |_, _| {
                    absorbed.fetch_add(1, Ordering::Relaxed);
                },
            )
            .unwrap();
        assert_eq!(metrics.heal_events, 1);
        assert_eq!(metrics.fragments_completed, 8);
        assert_eq!(absorbed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reactor_runs_a_planned_join_and_drain() {
        let mut config = RingConfig::paper(3);
        config.ack_timeout = SimDuration::from_millis(20);
        let plan = RescalePlan::seeded(77)
            .join_host(HostId(2), SimTime::ZERO + SimDuration::from_millis(1))
            .drain_host(HostId(0), SimTime::ZERO + SimDuration::from_millis(8));
        let mut fragments = payloads(3, 3, 128);
        if let Some(standby) = fragments.get_mut(2) {
            standby.clear();
        }
        let (metrics, _spans) = ReactorRingDriver::new(&config)
            .with_rescale_plan(&plan)
            .run_with_roles(
                fragments,
                |_, _, _| {
                    std::thread::sleep(Duration::from_millis(2));
                },
                |_, _| {},
            )
            .unwrap();
        assert_eq!(metrics.fragments_completed, 6);
        assert_eq!(metrics.membership_epoch, 2);
        assert_eq!(metrics.rescale_joins, 1);
        assert_eq!(metrics.rescale_drains, 1);
        assert_eq!(metrics.heal_events, 0);
    }

    #[test]
    fn wide_ring_completes_on_a_neighbor_mesh() {
        // 64 hosts, one fragment each: the wide-ring shape the blocking
        // driver cannot reach without hundreds of threads. Thread-count
        // accounting lives in the wide-ring exhibit binary (a test
        // process shares /proc counters with the whole harness).
        let config = RingConfig::paper(64);
        let (metrics, _spans) = ReactorRingDriver::new(&config)
            .run(payloads(64, 1, 16), |_, _| {})
            .unwrap();
        assert_eq!(metrics.fragments_completed, 64);
        assert!(metrics.hosts.iter().all(|h| h.fragments_processed == 64));
    }

    #[test]
    fn pump_read_reassembles_one_byte_arrivals() {
        let (mut tx, rx) = loopback_pair();
        rx.set_nonblocking(true).unwrap();
        let mut conn = Conn::new(rx, 0);
        let env = Envelope::new(FragmentId(3), HostId(1), 4, vec![0xabu8; 100]);
        let mut wire = crate::tcp_backend::encode_envelope(9, &env).unwrap();
        let mut ack = Vec::new();
        encode_ack_into(17, &mut ack);
        wire.extend_from_slice(&ack);

        let mut frames: Vec<Frame<Vec<u8>>> = Vec::new();
        for byte in wire {
            tx.write_all(&[byte]).unwrap();
            tx.flush().unwrap();
            // Pump after every single byte: partial frames must buffer
            // silently, never error.
            thread::sleep(Duration::from_micros(20));
            conn.pump_read(&mut frames).unwrap();
        }
        for _ in 0..1000 {
            if frames.len() == 2 {
                break;
            }
            conn.pump_read(&mut frames).unwrap();
            thread::sleep(Duration::from_micros(50));
        }
        assert_eq!(frames.len(), 2);
        assert!(matches!(
            frames.first(),
            Some(Frame::Envelope { tid: 9, env }) if env.id == FragmentId(3)
        ));
        assert!(matches!(frames.get(1), Some(Frame::Ack { tid: 17 })));
        assert!(conn.read_open);
    }

    #[test]
    fn pump_write_survives_short_writes_and_releases_credit_in_order() {
        let (tx, mut rx) = loopback_pair();
        tx.set_nonblocking(true).unwrap();
        let mut conn = Conn::new(tx, 0);
        // Enough bytes to overrun any loopback socket buffer, so the
        // kernel forces WouldBlock mid-frame.
        let env = Envelope::new(FragmentId(1), HostId(0), 2, vec![0x5au8; 4 * 1024 * 1024]);
        let big = crate::tcp_backend::encode_envelope(1, &env).unwrap();
        let mut ack = Vec::new();
        encode_ack_into(2, &mut ack);
        let expected: Vec<u8> = big.iter().chain(ack.iter()).copied().collect();
        conn.outq.push_back(OutJob::Frame {
            bytes: big,
            not_before: None,
            notify: Some(HostId(0)),
        });
        conn.outq.push_back(OutJob::Frame {
            bytes: ack,
            not_before: None,
            notify: Some(HostId(1)),
        });

        let reader = thread::spawn(move || {
            let mut got = Vec::new();
            let mut chunk = [0u8; 64 * 1024];
            loop {
                match rx.read(&mut chunk) {
                    Ok(0) => return got,
                    Ok(n) => got.extend_from_slice(chunk.get(..n).unwrap()),
                    Err(_) => return got,
                }
            }
        });

        let mut done = Vec::new();
        let mut spins = 0usize;
        while done.len() < 2 {
            assert!(conn.pump_write(&mut done).is_none());
            if conn.want_out {
                // The kernel said WouldBlock mid-frame: the head must
                // stay parked at its exact offset.
                assert!(!conn.outq.is_empty());
                thread::sleep(Duration::from_micros(200));
            }
            spins += 1;
            assert!(spins < 1_000_000, "pump_write made no progress");
        }
        assert!(conn.outq.is_empty());
        let credits: Vec<Option<HostId>> = done.iter().map(|(_, n)| *n).collect();
        assert_eq!(credits, vec![Some(HostId(0)), Some(HostId(1))]);
        conn.stream.shutdown(Shutdown::Write).unwrap();
        let got = reader.join().unwrap();
        assert_eq!(got.len(), expected.len());
        assert_eq!(got, expected, "short writes must resume at the exact byte");
    }

    #[test]
    fn delayed_frames_hold_the_queue_and_report_the_release() {
        let (tx, _rx) = loopback_pair();
        tx.set_nonblocking(true).unwrap();
        let mut conn = Conn::new(tx, 0);
        let release = Instant::now() + Duration::from_secs(60);
        conn.outq.push_back(OutJob::Frame {
            bytes: vec![1, 2, 3],
            not_before: Some(release),
            notify: None,
        });
        conn.outq.push_back(OutJob::Frame {
            bytes: vec![4, 5, 6],
            not_before: None,
            notify: None,
        });
        let mut done = Vec::new();
        let embargo = conn.pump_write(&mut done);
        assert_eq!(embargo, Some(release));
        assert!(done.is_empty(), "a delayed head must hold FIFO order");
        assert_eq!(conn.outq.len(), 2);
    }

    #[test]
    fn severed_writes_complete_frames_as_lost() {
        let (tx, rx) = loopback_pair();
        tx.set_nonblocking(true).unwrap();
        let mut conn = Conn::new(tx, 0);
        conn.outq.push_back(OutJob::Sever);
        conn.outq.push_back(OutJob::Frame {
            bytes: vec![9u8; 32],
            not_before: None,
            notify: Some(HostId(2)),
        });
        let mut done = Vec::new();
        assert!(conn.pump_write(&mut done).is_none());
        // The frame behind the FIN is lost on the medium, but its send
        // credit still comes free — a dead peer is the retransmission
        // protocol's business, not backpressure.
        assert!(!conn.write_open);
        assert_eq!(done.len(), 1);
        assert!(matches!(done.first(), Some((_, Some(h))) if *h == HostId(2)));
        drop(rx);
    }

    #[test]
    fn multiplexed_queries_complete_on_the_reactor() {
        let hosts = 3;
        let queries = 3;
        let cfg = RingConfig::paper(hosts)
            .with_ack_timeout(SimDuration::from_millis(50))
            .with_max_retransmits(6);
        let tenants: Vec<(u32, Vec<Vec<Vec<u8>>>)> = (0..queries)
            .map(|q| (q as u32, payloads(hosts, 2, 64)))
            .collect();
        let counts: Vec<AtomicUsize> = (0..hosts).map(|_| AtomicUsize::new(0)).collect();
        let (metrics, spans) = ReactorRingDriver::new(&cfg)
            .with_tracer(true)
            .run_queries(
                tenants,
                2,
                |h, _query, _roles: &[usize], _: &Vec<u8>| {
                    counts[h.0].fetch_add(1, Ordering::SeqCst);
                },
                |_, _| {},
            )
            .unwrap();
        assert_eq!(metrics.fragments_completed, queries * hosts * 2);
        assert_eq!(metrics.queries.len(), queries);
        for (q, m) in metrics.queries.iter().enumerate() {
            assert_eq!(m.tenant, q as u32);
            assert!(m.completed, "query {q}: {m:?}");
            assert_eq!(m.fragments_completed, hosts * 2);
        }
        for c in &counts {
            assert_eq!(c.load(Ordering::SeqCst), queries * hosts * 2);
        }
        let counters = spans.counters();
        assert_eq!(counters.get(counter::QUERIES_ADMITTED), queries as u64);
        assert_eq!(counters.get(counter::QUERIES_COMPLETED), queries as u64);
    }

    #[test]
    fn multiplexed_queries_survive_reactor_faults() {
        let hosts = 3;
        let queries = 4;
        let mut plan = FaultPlan::seeded(23);
        for h in 0..hosts {
            plan = plan.lossy_link(HostId(h), 0.08);
        }
        let cfg = RingConfig::paper(hosts)
            .with_ack_timeout(SimDuration::from_millis(40))
            .with_max_retransmits(8);
        let tenants: Vec<(u32, Vec<Vec<Vec<u8>>>)> = (0..queries)
            .map(|q| (q as u32, payloads(hosts, 2, 48)))
            .collect();
        let (metrics, _) = ReactorRingDriver::new(&cfg)
            .with_fault_plan(&plan)
            .run_queries(
                tenants,
                queries,
                |_, _, _: &[usize], _: &Vec<u8>| {},
                |_, _| {},
            )
            .unwrap();
        assert_eq!(metrics.fragments_completed, queries * hosts * 2);
        assert!(metrics.queries.iter().all(|m| m.completed));
    }
}
